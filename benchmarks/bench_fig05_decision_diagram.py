"""Figure 5: SODA's bitrate decision as a function of buffer × throughput.

Regenerates the decision diagram: for a grid of (predicted throughput,
buffer level) situations, the rung SODA commits.  Expected shape: rung
increases with predicted throughput, SODA grows more aggressive as the
buffer grows, and the high-buffer/high-throughput corner is blank (no
download, to avoid overflow).
"""

from conftest import banner, run_once

from repro.core.controller import SodaController
from repro.sim.video import youtube_hd_ladder

MAX_BUFFER = 20.0


def test_fig05_decision_diagram(benchmark):
    ladder = youtube_hd_ladder()
    controller = SodaController()
    buffers = [1.0 + 18.5 * i / 23 for i in range(24)]
    throughputs = [0.5 * 1.27**i for i in range(22)]  # 0.5 .. ~45 Mb/s

    def experiment():
        grid = {}
        for omega in throughputs:
            for buf in buffers:
                grid[(omega, buf)] = controller.decide(
                    omega, buf, prev_quality=None, ladder=ladder,
                    max_buffer=MAX_BUFFER,
                )
        return grid

    grid = run_once(benchmark, experiment)

    print(banner("Figure 5 — SODA decision diagram (rows: ω̂, cols: buffer 1..19.5 s)"))
    print("legend: digits = rung index, '.' = no download (overflow region)")
    for omega in reversed(throughputs):
        row = "".join(
            "." if grid[(omega, buf)] is None else str(grid[(omega, buf)])
            for buf in buffers
        )
        print(f"ω̂={omega:6.2f} Mb/s | {row}")

    # Shape checks.
    # 1) For a fixed mid buffer, the rung is non-decreasing in throughput.
    mid_buf = buffers[len(buffers) // 2]
    rungs = [
        grid[(omega, mid_buf)]
        for omega in throughputs
        if grid[(omega, mid_buf)] is not None
    ]
    assert rungs == sorted(rungs)
    # 2) The no-download region exists and sits at high buffer levels.
    blanks = [(o, b) for (o, b), q in grid.items() if q is None]
    assert blanks
    target = controller.config.resolve_target(MAX_BUFFER)
    assert all(b > target for _, b in blanks)
    # 3) Aggressiveness grows with the buffer: the average rung at high
    #    buffer is at least the average rung at low buffer.
    low = [q for (o, b), q in grid.items() if b < 5 and q is not None]
    high = [q for (o, b), q in grid.items() if b > 15 and q is not None]
    assert sum(high) / len(high) >= sum(low) / len(low) - 1e-9
