"""Extension: controllers competing on a shared bottleneck link.

A dimension the paper does not evaluate: several players sharing one link.
This bench runs homogeneous groups of four clients per controller on the
same fluctuating bottleneck and reports per-client QoE, Jain fairness over
mean bitrates, and the switching rate under competition — where buffer
feedback loops are known to amplify oscillation.
"""

import numpy as np
from conftest import BENCH_SEED, banner, run_once

from repro.abr import BolaController, DynamicController, HybController
from repro.analysis import format_table
from repro.core.controller import SodaController
from repro.qoe import qoe_from_session
from repro.sim.multiclient import simulate_shared_link
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.video import youtube_hd_ladder
from repro.traces.synthetic import MarkovLognormalGenerator, Regime

N_CLIENTS = 4
SESSION_SECONDS = 240.0


def bottleneck_trace(seed: int) -> ThroughputTrace:
    """A fluctuating shared link around N × mid-ladder demand."""
    gen = MarkovLognormalGenerator(
        target_mean=26.0,
        target_rsd=0.4,
        regimes=[Regime(1.0, 1e9)],
        ar_coefficient=0.95,
        name="bottleneck",
    )
    return gen.generate(SESSION_SECONDS * 3, seed=seed)


def test_ext_shared_bottleneck(benchmark):
    ladder = youtube_hd_ladder()
    cfg = PlayerConfig(
        max_buffer=20.0,
        num_segments=int(SESSION_SECONDS / ladder.segment_duration),
        live_delay=20.0,
    )
    factories = {
        "soda": SodaController,
        "hyb": HybController,
        "bola": BolaController,
        "dynamic": DynamicController,
    }

    def experiment():
        rows = {}
        link = bottleneck_trace(BENCH_SEED + 61)
        for name, cls in factories.items():
            outcome = simulate_shared_link(
                [cls() for _ in range(N_CLIENTS)], link, ladder, cfg
            )
            metrics = [qoe_from_session(r) for r in outcome.results]
            rows[name] = (outcome, metrics)
        return rows

    rows = run_once(benchmark, experiment)

    print(banner(f"Extension — {N_CLIENTS} clients sharing one bottleneck"))
    table = []
    for name, (outcome, metrics) in rows.items():
        table.append(
            [
                name,
                f"{np.mean([m.qoe for m in metrics]):.4f}",
                f"{np.mean([m.utility for m in metrics]):.4f}",
                f"{np.mean([m.rebuffer_ratio for m in metrics]):.4f}",
                f"{np.mean([m.switching_rate for m in metrics]):.4f}",
                f"{outcome.fairness_index():.4f}",
                f"{outcome.link_utilisation():.2f}",
            ]
        )
    print(
        format_table(
            ["controller ×4", "qoe", "utility", "rebuf", "switch",
             "fairness", "link util"],
            table,
        )
    )

    soda_switch = np.mean([m.switching_rate for m in rows["soda"][1]])
    for name, (_, metrics) in rows.items():
        if name == "soda":
            continue
        assert soda_switch <= np.mean(
            [m.switching_rate for m in metrics]
        ) + 1e-9, f"{name} switches less than SODA under competition"
    # Homogeneous clients end up near-fair for every controller.
    for name, (outcome, _) in rows.items():
        assert outcome.fairness_index() > 0.8, f"{name} is unfair"
