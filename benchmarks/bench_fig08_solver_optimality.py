"""Figure 8: P[approximate solver ≠ brute force] vs switching weight.

The paper samples a million (throughput, buffer, previous bitrate)
situations per configuration and reports the probability that Algorithm 1's
monotonic search commits a different rung than the brute-force solver —
below 5% for K = 4 at a relative switching weight of 2, converging to 0 as
the weight grows (Theorem 4.3).

We regenerate the curve with a smaller sample (scale with
REPRO_BENCH_SESSIONS).  The x-axis is the relative switching weight: γ
scaled so that 1.0 corresponds to the package's default tuning.
"""

import numpy as np
from conftest import BENCH_SESSIONS, banner, run_once

from repro.analysis import format_series
from repro.core.objective import SodaConfig
from repro.core.solver import solve_brute_force, solve_monotonic
from repro.sim.video import youtube_hd_ladder

RELATIVE_WEIGHTS = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0]
BASE_GAMMA = 150.0
HORIZONS = [2, 3, 4]
MAX_BUFFER = 20.0


def disagreement_probability(horizon, gamma, samples, rng, ladder):
    cfg = SodaConfig(
        horizon=horizon, gamma=gamma, target_buffer=14.0,
        switch_event_cost=0.0,
    )
    disagreements = 0
    decided = 0
    for _ in range(samples):
        omega = float(rng.uniform(0.5, 30.0))
        buffer_level = float(rng.uniform(0.0, MAX_BUFFER))
        prev = int(rng.integers(0, ladder.levels))
        mono = solve_monotonic(
            omega, buffer_level, prev, ladder, cfg, MAX_BUFFER
        )
        brute = solve_brute_force(
            omega, buffer_level, prev, ladder, cfg, MAX_BUFFER
        )
        if mono.quality is None and brute.quality is None:
            continue
        decided += 1
        if mono.quality != brute.quality:
            disagreements += 1
    return disagreements / max(decided, 1)


def test_fig08_disagreement_vs_switching_weight(benchmark):
    ladder = youtube_hd_ladder()
    samples = 150 * max(BENCH_SESSIONS, 1)

    def experiment():
        results = {}
        for horizon in HORIZONS:
            rng = np.random.default_rng(1234)
            results[f"K={horizon}"] = [
                disagreement_probability(
                    horizon, w * BASE_GAMMA, samples, rng, ladder
                )
                for w in RELATIVE_WEIGHTS
            ]
        return results

    results = run_once(benchmark, experiment)

    print(banner("Figure 8 — P[approx != brute force] vs switching weight"))
    print(f"(samples per point: {samples})")
    print(
        format_series("relative switching weight", RELATIVE_WEIGHTS, results)
    )

    for name, probs in results.items():
        # Disagreement collapses as the switching weight grows.
        assert probs[-1] <= probs[0] + 1e-9
        assert probs[-1] < 0.05, f"{name}: residual disagreement {probs[-1]}"


def test_fig08_evaluation_count(benchmark):
    """§5.3's complexity claim: ~200 sequences max in practice."""
    ladder = youtube_hd_ladder()
    cfg = SodaConfig(horizon=5, target_buffer=14.0)
    rng = np.random.default_rng(5)

    def experiment():
        counts = []
        for _ in range(300):
            omega = float(rng.uniform(0.5, 30.0))
            buf = float(rng.uniform(0.0, MAX_BUFFER))
            prev = int(rng.integers(0, ladder.levels))
            plan = solve_monotonic(omega, buf, prev, ladder, cfg, MAX_BUFFER)
            counts.append(plan.evaluations)
        return counts

    counts = run_once(benchmark, experiment)
    print(banner("§5.3 — approximate-solver candidate evaluations (K=5)"))
    print(
        f"mean={np.mean(counts):.0f} p95={np.percentile(counts, 95):.0f} "
        f"max={max(counts)}"
    )
    brute_force_cost = ladder.levels ** cfg.horizon
    print(f"brute-force sequence count would be {brute_force_cost}")
    assert max(counts) < brute_force_cost
