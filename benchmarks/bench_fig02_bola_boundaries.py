"""Figure 2: BOLA's decision boundaries, on-demand vs live.

The paper's Figure 2 shows BOLA's bitrate-vs-buffer step function: with an
on-demand 120 s buffer the decision thresholds are spaced up to ~20 s
apart, while with a live 20 s buffer the same ladder's thresholds compress
into a 1–3 s band, so tiny buffer fluctuations flip the chosen rung.
"""

from conftest import banner, run_once

from repro.abr import BolaController
from repro.analysis import format_table
from repro.sim.video import youtube_4k_ladder


def boundaries(max_buffer: float, steps: int = 4000):
    """Buffer levels at which BOLA's decision changes rung."""
    ladder = youtube_4k_ladder()
    bola = BolaController()
    edges = []
    prev = None
    for i in range(steps):
        buf = max_buffer * i / steps
        decision = bola.decision_at_buffer(buf, ladder, max_buffer)
        if decision is None:
            break
        if prev is not None and decision != prev:
            edges.append((buf, prev, decision))
        prev = decision
    return edges


def test_fig02_decision_boundaries(benchmark):
    def experiment():
        return boundaries(120.0), boundaries(20.0)

    vod, live = run_once(benchmark, experiment)

    print(banner("Figure 2 — BOLA decision boundaries"))
    for label, edges, cap in (("on-demand", vod, 120.0), ("live", live, 20.0)):
        rows = [
            [f"{buf:.2f}s", f"{a}->{b}"]
            for buf, a, b in edges
        ]
        print(f"\n[{label}, {cap:.0f}s buffer]")
        print(format_table(["buffer level", "rung change"], rows))
        gaps = [b[0] - a[0] for a, b in zip(edges, edges[1:])]
        if gaps:
            print(f"mean gap between boundaries: {sum(gaps)/len(gaps):.2f}s")

    vod_gaps = [b[0] - a[0] for a, b in zip(vod, vod[1:])]
    live_gaps = [b[0] - a[0] for a, b in zip(live, live[1:])]
    # Live boundaries compress into a few seconds; on-demand ones spread out.
    assert max(live_gaps) < 5.0
    assert max(vod_gaps) > 10.0
