"""Figure 11: intrinsic sensitivity to throughput-prediction accuracy.

The paper replaces the real predictor with a perfect short-term oracle and
injects increasing white noise (§6.1.4), revealing each controller's
intrinsic robustness.  BOLA is unaffected (purely buffer-based); SODA
degrades gracefully and stays on top up to ~50% noise; MPC-style
controllers degrade faster.
"""

import numpy as np
from conftest import banner, run_once

from repro.abr import BolaController, HybController, RobustMpcController
from repro.analysis import format_series
from repro.core.controller import SodaController
from repro.prediction import NoisyOraclePredictor
from repro.qoe import summarize
from repro.sim.session import run_dataset

NOISE_LEVELS = [0.0, 0.1, 0.3, 0.5, 0.75, 1.0]


def controller_factories(noise):
    """Fresh controllers wired to a noisy oracle (BOLA needs no predictor)."""
    return {
        "soda": lambda: SodaController(
            predictor=NoisyOraclePredictor(noise, seed=31)
        ),
        "hyb": lambda: HybController(
            predictor=NoisyOraclePredictor(noise, seed=37)
        ),
        "mpc": lambda: RobustMpcController(
            predictor=NoisyOraclePredictor(noise, seed=41)
        ),
        "bola": lambda: BolaController(),
    }


def test_fig11_qoe_vs_noise(benchmark, datasets, profiles):
    # Mixed subset across the three datasets, as in the paper's random
    # 10,000-session sample.
    subset = [
        (traces[i], profiles[name])
        for name, traces in datasets.items()
        for i in range(0, len(traces), 2)
    ]

    def experiment():
        series = {name: [] for name in controller_factories(0.0)}
        for noise in NOISE_LEVELS:
            factories = controller_factories(noise)
            for name, factory in factories.items():
                metrics = []
                for trace, profile in subset:
                    metrics.extend(
                        run_dataset(
                            factory, [trace], profile.ladder, profile.player
                        )
                    )
                series[name].append(summarize(metrics).qoe.mean)
        return series

    series = run_once(benchmark, experiment)

    print(banner("Figure 11 — mean QoE vs prediction white-noise level"))
    print(format_series("noise level", NOISE_LEVELS, series))

    soda = np.array(series["soda"])
    bola = np.array(series["bola"])
    # BOLA ignores predictions: its curve is flat.
    assert np.ptp(bola) < 1e-9
    # SODA degrades gracefully: moderate noise costs little QoE.
    assert soda[NOISE_LEVELS.index(0.3)] >= soda[0] - 0.15
    # SODA stays above the prediction-driven baselines at the EMA-like
    # reference noise level (~30%).
    idx = NOISE_LEVELS.index(0.3)
    assert series["soda"][idx] >= series["mpc"][idx] - 0.05
    assert series["soda"][idx] >= series["hyb"][idx] - 0.05
