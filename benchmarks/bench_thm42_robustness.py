"""Theorem 4.2: robustness to inexact predictions.

With bounded prediction errors, SODA's buffer never hits the constraint
boundary and its regret grows with the aggregate error term
E = ρ^{2K} N + Σ_κ ρ^κ E_κ.  This bench rolls SODA out in the time-based
model under increasing multiplicative prediction noise and reports buffer
excursions and regret per noise level.
"""

import numpy as np
from conftest import BENCH_SEED, banner, run_once

from repro.analysis import format_series
from repro.core.objective import SodaConfig
from repro.core.offline import offline_optimal, rollout_time_based
from repro.sim.video import BitrateLadder

NOISE_LEVELS = [0.0, 0.1, 0.2, 0.4]
N_STEPS = 100
N_TRIALS = 3
MAX_BUFFER = 20.0


def test_thm42_regret_vs_prediction_error(benchmark):
    ladder = BitrateLadder([1.0, 2.0, 3.0, 4.5, 6.0], segment_duration=2.0)
    cfg = SodaConfig(
        horizon=5, beta=0.2, gamma=2.0, target_buffer=10.0,
        switch_event_cost=0.0, use_brute_force=True,
    )
    rng = np.random.default_rng(BENCH_SEED + 1)

    def experiment():
        regrets = {lvl: [] for lvl in NOISE_LEVELS}
        min_buffers = {lvl: [] for lvl in NOISE_LEVELS}
        violations = {lvl: 0 for lvl in NOISE_LEVELS}
        for _ in range(N_TRIALS):
            omega = rng.uniform(2.0, 8.0, N_STEPS)
            opt = offline_optimal(
                omega, ladder, cfg, MAX_BUFFER, x0=10.0, buffer_grid=301
            )
            for lvl in NOISE_LEVELS:
                noise_rng = np.random.default_rng(BENCH_SEED + int(lvl * 100))

                def noisy(n, k, lvl=lvl, noise_rng=noise_rng):
                    idx = np.minimum(np.arange(n, n + k), N_STEPS - 1)
                    eps = noise_rng.normal(0.0, lvl, size=k)
                    return np.maximum(omega[idx] * (1.0 + eps), 0.05)

                roll = rollout_time_based(
                    omega, ladder, cfg, MAX_BUFFER, x0=10.0,
                    predictions=noisy, terminal_weight=1.0,
                )
                regrets[lvl].append(roll.cost - opt.cost)
                min_buffers[lvl].append(min(roll.buffers))
                violations[lvl] += roll.violations
        return (
            [float(np.mean(regrets[lvl])) for lvl in NOISE_LEVELS],
            [float(np.mean(min_buffers[lvl])) for lvl in NOISE_LEVELS],
            [violations[lvl] for lvl in NOISE_LEVELS],
        )

    regret, min_buffer, violations = run_once(benchmark, experiment)

    print(banner("Theorem 4.2 — regret and buffer safety vs prediction noise"))
    print(
        format_series(
            "noise level",
            NOISE_LEVELS,
            {
                "mean dynamic regret": regret,
                "mean min buffer (s)": min_buffer,
                "constraint violations": [float(v) for v in violations],
            },
        )
    )

    # Regret grows with the error magnitude...
    assert regret[-1] >= regret[0] - 1e-6
    # ...but moderate errors never push the buffer to the boundary.
    moderate = NOISE_LEVELS.index(0.2)
    assert min_buffer[moderate] > 0.0
    assert violations[moderate] == 0
