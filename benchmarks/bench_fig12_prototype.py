"""Figure 12: prototype evaluation (Puffer platform substitute).

The paper's prototype experiment streams a 5-rung news clip (top rung
~2 Mb/s) with a 15 s buffer over a low-bandwidth subset of the Puffer
dataset (session mean below 2 Mb/s), reporting normalised-SSIM utility.
Baselines add the learning-based controllers: Fugu and CausalSimRL (our
substitutes: stochastic-MPC and tabular Q-learning — DESIGN.md #4, #5).

Expected shape: SODA has the best QoE and is the only controller with both
low rebuffering and low switching; MPC/Fugu get slightly higher utility at
the price of rebuffering; the RL agent switches far more than SODA.
"""

from conftest import BENCH_SEED, BENCH_SESSIONS, banner, run_once

from repro.abr import (
    BolaController,
    DynamicController,
    FuguController,
    HybController,
    RobustMpcController,
    train_q_controller,
)
from repro.analysis import qoe_table, run_suite
from repro.core.controller import SodaController
from repro.sim.profiles import prototype_profile
from repro.traces import puffer_like

#: scale factor taking the Puffer generator's 57.1 Mb/s mean to ~1.6 Mb/s
LOW_BW_SCALE = 1.6 / 57.1


def test_fig12_prototype(benchmark):
    profile = prototype_profile(session_seconds=480.0)
    gen = puffer_like()
    traces = [
        t.scaled(LOW_BW_SCALE)
        for t in gen.dataset(BENCH_SESSIONS, 480.0, seed=BENCH_SEED + 55)
    ]
    train_traces = [
        t.scaled(LOW_BW_SCALE)
        for t in gen.dataset(12, 480.0, seed=BENCH_SEED + 999)
    ]

    def experiment():
        rl_agent = train_q_controller(
            profile.ladder, train_traces, profile.player,
            episodes=60, seed=BENCH_SEED,
        )
        factories = {
            "soda": lambda: SodaController(),
            "hyb": lambda: HybController(),
            "bola": lambda: BolaController(),
            "dynamic": lambda: DynamicController(),
            "mpc": lambda: RobustMpcController(),
            "fugu": lambda: FuguController(),
            "causalsim-rl": lambda: rl_agent,
        }
        return run_suite(factories, traces, profile, "prototype")

    suite = run_once(benchmark, experiment)
    summaries = suite.summaries()

    print(banner("Figure 12 — prototype evaluation (normalised SSIM utility)"))
    print(qoe_table(summaries))
    print(
        "SODA QoE vs best baseline: "
        f"{suite.improvement_over_best_baseline():+.2%}"
    )

    soda = summaries["soda"]
    # SODA has the best QoE score.
    for name, s in summaries.items():
        if name != "soda":
            assert soda.qoe.mean >= s.qoe.mean - 1e-9, f"{name} beats SODA"
    # The RL substitute switches far more than SODA (paper: +86.3%).
    assert summaries["causalsim-rl"].switching_rate.mean > (
        1.5 * soda.switching_rate.mean
    )
    # SODA keeps both smoothness components low simultaneously.
    assert soda.rebuffer_ratio.mean < 0.01
