"""Figure 3: RobustMPC rebuffering instead of lowering the bitrate.

The paper's Figure 3 shows a RobustMPC session that, once the network drops
below the sustained rate of a high rung, keeps downloading the high rung
and repeatedly rebuffers — the optimal behaviour under an objective that
trades rebuffering seconds against switching penalties.  We reproduce the
setup: a session whose throughput sags below the current rung, comparing
RobustMPC (high switch penalty, as tuned in [17]-style deployments) with
SODA on the same trace.
"""

from conftest import banner, run_once

from repro.abr import RobustMpcController
from repro.analysis import format_table
from repro.core.controller import SodaController
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.session import run_session
from repro.sim.video import youtube_hd_ladder


def sagging_trace():
    """Healthy start, then bandwidth pinned just below a high rung."""
    durations = [60.0] + [200.0]
    bandwidths = [20.0, 5.5]  # 5.5 Mb/s vs the 7.5 Mb/s rung
    return ThroughputTrace(durations, bandwidths, name="sagging")


def test_fig03_rebuffer_instead_of_switch(benchmark):
    ladder = youtube_hd_ladder()
    cfg = PlayerConfig(
        max_buffer=20.0, num_segments=120, live_delay=20.0,
        abandonment=False,
    )
    trace = sagging_trace()

    def experiment():
        mpc = RobustMpcController(switch_penalty=2.0, rebuffer_penalty=0.2)
        soda = SodaController()
        return (
            run_session(mpc, trace, ladder, cfg),
            run_session(soda, trace, ladder, cfg),
        )

    mpc_result, soda_result = run_once(benchmark, experiment)

    print(banner("Figure 3 — RobustMPC pathology session (240 s)"))
    rows = []
    for name, r in (("robustmpc", mpc_result), ("soda", soda_result)):
        rows.append(
            [
                name,
                r.rebuffer_events,
                f"{r.rebuffer_time:.1f}s",
                r.switch_count,
                f"{sum(r.bitrates)/len(r.bitrates):.2f}",
            ]
        )
    print(
        format_table(
            ["controller", "rebuffer events", "rebuffer time",
             "switches", "mean bitrate"],
            rows,
        )
    )

    # The pathology: a switch-averse MPC objective tolerates repeated
    # rebuffering; SODA's buffer-stability objective does not.
    assert mpc_result.rebuffer_events >= 3
    assert soda_result.rebuffer_time < mpc_result.rebuffer_time
