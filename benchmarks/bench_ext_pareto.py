"""Extension: the utility/smoothness trade-off frontier (§1's claim).

Sweeps each controller's smoothness knob — SODA's γ (and κ), MPC's switch
penalty, BOLA's threshold spread — on a fixed workload and compares the
resulting (switching rate, utility) operating points.  "Pushing the
trade-off boundary" (§1) means SODA's points sit above-left of the
baselines': more utility at the same switching rate, or less switching at
the same utility.
"""

from conftest import BENCH_SEED, BENCH_SESSIONS, banner, run_once

from repro.abr import BolaController, RobustMpcController
from repro.analysis import format_table
from repro.analysis.pareto import (
    dominates,
    pareto_front,
    sweep_operating_points,
)
from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.sim.profiles import live_profile
from repro.traces import puffer_like

SESSION_SECONDS = 300.0


def test_ext_tradeoff_frontier(benchmark):
    profile = live_profile(session_seconds=SESSION_SECONDS)
    traces = puffer_like().dataset(
        max(BENCH_SESSIONS // 2, 3), SESSION_SECONDS, seed=BENCH_SEED + 31
    )

    def experiment():
        factories = {}
        for gamma, kappa in ((0.0, 0.0), (30.0, 0.01), (150.0, 0.08),
                             (400.0, 0.2)):
            cfg = SodaConfig(gamma=gamma, switch_event_cost=kappa)
            factories[f"soda γ={gamma:g}"] = (
                lambda cfg=cfg: SodaController(config=cfg)
            )
        for penalty in (0.2, 1.0, 4.0):
            factories[f"mpc λ={penalty:g}"] = (
                lambda p=penalty: RobustMpcController(switch_penalty=p)
            )
        for low, target in ((4.0, 8.0), (9.0, 15.0), (12.0, 18.0)):
            factories[f"bola {low:g}/{target:g}"] = (
                lambda lo=low, tg=target: BolaController(
                    buffer_low=lo, buffer_target=tg
                )
            )
        return sweep_operating_points(factories, traces, profile)

    points = run_once(benchmark, experiment)
    front = pareto_front(points)
    front_labels = {p.label for p in front}

    print(banner("§1 extension — utility vs switching trade-off frontier"))
    print(
        format_table(
            ["operating point", "utility", "switch rate", "rebuf", "qoe",
             "on front"],
            [
                [
                    p.label,
                    f"{p.utility:.4f}",
                    f"{p.switching_rate:.4f}",
                    f"{p.rebuffer_ratio:.4f}",
                    f"{p.qoe:.4f}",
                    "*" if p.label in front_labels else "",
                ]
                for p in sorted(points, key=lambda p: p.switching_rate)
            ],
        )
    )

    # SODA pushes the boundary: at least one SODA tuning is on the front,
    # and no baseline point dominates every SODA point.
    soda_points = [p for p in points if p.label.startswith("soda")]
    assert any(p.label in front_labels for p in soda_points)
    baselines = [p for p in points if not p.label.startswith("soda")]
    for baseline in baselines:
        assert not all(dominates(baseline, s) for s in soda_points)
    # The smoothest SODA tuning switches less than every baseline tuning.
    min_soda_switch = min(p.switching_rate for p in soda_points)
    assert min_soda_switch <= min(p.switching_rate for p in baselines) + 1e-9
