"""Figure 9: throughput statistics of the three datasets.

The paper reports mean throughputs of 57.1 / 31.3 / 13.0 Mb/s and mean
relative standard deviations of 47.2% / 133% / 80.6% for the Puffer, 5G,
and 4G datasets.  This bench regenerates the table from the synthetic
generators and verifies the calibration.
"""

import numpy as np
from conftest import banner, run_once

from repro.analysis import format_table
from repro.traces import DATASET_FACTORIES

PAPER_STATS = {
    "puffer": (57.1, 0.472),
    "5g": (31.3, 1.33),
    "4g": (13.0, 0.806),
}


def test_fig09_dataset_statistics(benchmark, datasets):
    def experiment():
        rows = {}
        for name, traces in datasets.items():
            stats = [t.stats() for t in traces]
            rows[name] = (
                float(np.mean([s.mean for s in stats])),
                float(np.mean([s.rsd for s in stats])),
            )
        return rows

    measured = run_once(benchmark, experiment)

    print(banner("Figure 9 — dataset throughput statistics"))
    rows = []
    for name, (mean, rsd) in measured.items():
        paper_mean, paper_rsd = PAPER_STATS[name]
        rows.append(
            [name, f"{paper_mean:.1f}", f"{mean:.1f}",
             f"{paper_rsd:.1%}", f"{rsd:.1%}"]
        )
    print(
        format_table(
            ["dataset", "paper mean Mb/s", "measured", "paper RSD", "measured "],
            rows,
        )
    )

    # Ordering of means and volatility matches the paper.
    assert measured["puffer"][0] > measured["5g"][0] > measured["4g"][0]
    assert measured["5g"][1] > measured["4g"][1] > measured["puffer"][1]
    # Long-run calibration (per-session stats are noisier than this).
    for name, traces in datasets.items():
        gen = DATASET_FACTORIES[name]()
        long_trace = gen.generate(20000.0, seed=123)
        stats = long_trace.stats()
        paper_mean, paper_rsd = PAPER_STATS[name]
        np.testing.assert_allclose(stats.mean, paper_mean, rtol=0.12)
        np.testing.assert_allclose(stats.rsd, paper_rsd, rtol=0.25)
