"""Shared infrastructure for the per-figure benchmark harness.

Every bench regenerates the content of one table or figure from the paper
and prints it as an ASCII table (the terminal equivalent of the plot).
Session counts scale with the ``REPRO_BENCH_SESSIONS`` environment variable
(default 8; the paper used up to 230k sessions — raise it for tighter CIs).
"""

import os

import pytest

from repro.sim.profiles import live_profile
from repro.traces import build_synthetic_datasets

#: number of sessions per dataset in the evaluation benches
BENCH_SESSIONS = int(os.environ.get("REPRO_BENCH_SESSIONS", "8"))
#: base seed shared by all benches
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
#: session length in seconds (the paper uses 10-minute sessions)
SESSION_SECONDS = float(os.environ.get("REPRO_BENCH_SESSION_SECONDS", "480"))


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"


@pytest.fixture(scope="session")
def datasets():
    """The three synthetic stand-ins for the paper's datasets."""
    return build_synthetic_datasets(
        BENCH_SESSIONS, session_seconds=SESSION_SECONDS, seed=BENCH_SEED
    )


@pytest.fixture(scope="session")
def profiles():
    """Per-dataset live evaluation profiles (§6.1 setup)."""
    return {
        "puffer": live_profile(session_seconds=SESSION_SECONDS),
        "5g": live_profile(session_seconds=SESSION_SECONDS, cellular=True),
        "4g": live_profile(session_seconds=SESSION_SECONDS, cellular=True),
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
