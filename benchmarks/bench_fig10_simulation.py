"""Figure 10: the headline numerical simulation (QoE across datasets).

Regenerates the paper's main result table: mean QoE score, utility,
rebuffering ratio, and switching rate (± 95% CI) for SODA and the four
baseline controllers on all three datasets, plus the Puffer dataset split
into variance quartiles Q1–Q4.

Expected shape (paper §6.1.3): SODA has the highest mean QoE and the lowest
switching rate on every dataset; MPC competitive only on stable networks;
HYB/BOLA switching far above SODA.
"""

from conftest import banner, run_once

from repro.analysis import qoe_table, run_suite, standard_controllers
from repro.qoe import split_by_rsd_quartile, summarize


def test_fig10_all_datasets(benchmark, datasets, profiles):
    def experiment():
        return {
            name: run_suite(
                standard_controllers(), traces, profiles[name], name
            )
            for name, traces in datasets.items()
        }

    suites = run_once(benchmark, experiment)

    print(banner("Figure 10 — mean QoE per dataset (±95% CI)"))
    for name, suite in suites.items():
        print(f"\n[{name}]")
        print(qoe_table(suite.summaries()))
        improvement = suite.improvement_over_best_baseline()
        print(f"SODA QoE vs best baseline: {improvement:+.2%}")

    for name, suite in suites.items():
        summaries = suite.summaries()
        soda = summaries["soda"]
        for other, s in summaries.items():
            if other == "soda":
                continue
            assert soda.switching_rate.mean <= s.switching_rate.mean + 1e-9, (
                f"SODA should have the lowest switching rate on {name}, "
                f"but {other} is lower"
            )


def test_fig10_puffer_variance_quartiles(benchmark, datasets, profiles):
    traces = datasets["puffer"]
    quartiles = split_by_rsd_quartile(traces)

    def experiment():
        results = {}
        for qname, indices in quartiles.items():
            subset = [traces[i] for i in indices]
            if not subset:
                continue
            results[qname] = run_suite(
                standard_controllers(), subset, profiles["puffer"],
                f"puffer-{qname}",
            )
        return results

    suites = run_once(benchmark, experiment)

    print(banner("Figure 10 — Puffer variance quartiles (Q1 stable .. Q4 volatile)"))
    for qname, suite in suites.items():
        print(f"\n[puffer {qname}]")
        print(qoe_table(suite.summaries()))

    # QoE should generally degrade from Q1 to Q4 for SODA.
    soda_qoe = [
        suites[q].summaries()["soda"].qoe.mean
        for q in ("Q1", "Q4")
        if q in suites
    ]
    if len(soda_qoe) == 2:
        assert soda_qoe[0] >= soda_qoe[1] - 0.1
