"""Extension: QoE degradation under operational download faults.

The paper's robustness analysis stops at prediction error (Thm 4.2,
§6.1.4); its production deployment (§6.3) also faced failed fetches,
stalls, timeouts, and corrupted measurements.  This bench sweeps a seeded
:class:`repro.faults.FaultPlan` intensity over the §6.1.2 controller suite
and reports the QoE-degradation curves, with and without the
:class:`repro.abr.ResilientController` wrapper around SODA.
"""

from conftest import BENCH_SEED, BENCH_SESSIONS, banner, run_once

from repro.abr import ResilientController
from repro.analysis import format_series, sweep_fault_intensity
from repro.analysis.harness import standard_controllers
from repro.sim.profiles import live_profile
from repro.traces import puffer_like

INTENSITIES = [0.0, 0.1, 0.2, 0.4]
SESSION_SECONDS = 240.0


def test_fault_robustness_curves(benchmark):
    traces = puffer_like().dataset(
        max(BENCH_SESSIONS // 2, 2), SESSION_SECONDS, seed=BENCH_SEED
    )
    profile = live_profile(session_seconds=SESSION_SECONDS)
    factories = standard_controllers()
    factories["soda+resilient"] = (
        lambda base=factories["soda"]: ResilientController(base())
    )

    def experiment():
        return sweep_fault_intensity(
            traces,
            profile,
            factories=factories,
            intensities=INTENSITIES,
            seed=BENCH_SEED,
            dataset_name="puffer",
        )

    report = run_once(benchmark, experiment)

    print(banner("QoE degradation vs operational fault intensity"))
    print(report.render())
    print(
        format_series(
            "fault intensity",
            INTENSITIES,
            {
                name: curve.qoe_means
                for name, curve in report.curves.items()
            },
        )
    )

    # Faults must hurt: QoE degrades (within noise) as intensity rises,
    # for SODA and every baseline.
    for name, curve in report.curves.items():
        assert curve.is_monotone(tolerance=0.15), (
            f"{name} QoE did not degrade monotonically: {curve.qoe_means}"
        )
        assert curve.points[-1].qoe_mean < curve.points[0].qoe_mean
    # The fault layer actually injected work.
    assert report.curves["soda"].points[-1].faults_injected > 0
    assert report.curves["soda"].points[-1].retries > 0
