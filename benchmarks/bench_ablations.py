"""Ablations of SODA's design choices (DESIGN.md §4).

Sweeps the knobs DESIGN.md calls out — buffer-cost asymmetry ε, target
level x̄, horizon K, the §5.1 schema caps, and the solver choice — on a
fixed mixed workload, reporting the QoE components per variant.
"""

from conftest import banner, run_once

from repro.analysis import format_table
from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.qoe import summarize
from repro.sim.session import run_dataset

BASE = SodaConfig()


def variants():
    return {
        "default": BASE,
        "symmetric buffer cost (ε=1)": BASE.with_(epsilon=1.0),
        "low target (x̄=0.4·max)": BASE.with_(target_buffer=8.0),
        "horizon K=1": BASE.with_(horizon=1),
        "horizon K=8": BASE.with_(horizon=8),
        "one-rung cap ON (§5.1)": BASE.with_(cap_one_rung_above=True),
        "no download-safety guard": BASE.with_(download_safety=0.0),
        "no per-event switch cost": BASE.with_(switch_event_cost=0.0),
        "pure squared cost, γ=0": BASE.with_(gamma=0.0, switch_event_cost=0.0),
        "brute-force solver": BASE.with_(use_brute_force=True, horizon=4),
    }


def test_ablations(benchmark, datasets, profiles):
    workload = [
        (trace, profiles[name])
        for name, traces in datasets.items()
        for trace in traces[: max(len(traces) // 2, 1)]
    ]

    def experiment():
        rows = {}
        for label, cfg in variants().items():
            metrics = []
            for trace, profile in workload:
                metrics.extend(
                    run_dataset(
                        lambda cfg=cfg: SodaController(config=cfg),
                        [trace], profile.ladder, profile.player,
                    )
                )
            rows[label] = summarize(metrics)
        return rows

    rows = run_once(benchmark, experiment)

    print(banner("Ablations — SODA design choices (pooled mixed workload)"))
    print(
        format_table(
            ["variant", "qoe", "utility", "rebuf", "switch"],
            [
                [
                    label,
                    f"{s.qoe.mean:.4f}",
                    f"{s.utility.mean:.4f}",
                    f"{s.rebuffer_ratio.mean:.4f}",
                    f"{s.switching_rate.mean:.4f}",
                ]
                for label, s in rows.items()
            ],
        )
    )

    default = rows["default"]
    # Removing the switching machinery must increase the switching rate.
    assert (
        rows["pure squared cost, γ=0"].switching_rate.mean
        > default.switching_rate.mean
    )
    # A one-step horizon should not beat the default planner on QoE by much.
    assert rows["horizon K=1"].qoe.mean <= default.qoe.mean + 0.05
