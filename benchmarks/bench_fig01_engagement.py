"""Figure 1: viewing percentage vs bitrate switching rate.

The paper's Figure 1 plots, for short-lived HD sessions of a live sports
event, the fraction of the stream watched against the bitrate switching
rate, and reports that the line of best fit drops below 10% watched once
switching exceeds 20%.  Without production telemetry (DESIGN.md
substitution #6) we regenerate the plot from the calibrated engagement
model over a simulated session population.
"""

import numpy as np
from conftest import banner, run_once

from repro.analysis import EngagementModel, fit_line, format_series


def test_fig01_watch_fraction_vs_switching(benchmark):
    model = EngagementModel()
    rng = np.random.default_rng(11)

    def experiment():
        # Session population: switching rates as observed in the field for
        # short-lived sessions (long-tailed, most below 30%).
        rates = np.clip(rng.exponential(0.08, size=4000), 0.0, 0.35)
        watch = model.sample_watch_fractions(rates, seed=13)
        slope, intercept = fit_line(rates, watch)
        return rates, watch, slope, intercept

    rates, watch, slope, intercept = run_once(benchmark, experiment)

    bins = np.linspace(0.0, 0.32, 9)
    centers, means = [], []
    for lo, hi in zip(bins, bins[1:]):
        mask = (rates >= lo) & (rates < hi)
        if mask.sum() >= 5:
            centers.append((lo + hi) / 2.0)
            means.append(float(watch[mask].mean()))

    print(banner("Figure 1 — watch fraction vs switching rate"))
    print(
        format_series(
            "switch rate",
            [f"{c:.3f}" for c in centers],
            {"mean watch fraction": means},
        )
    )
    print(f"line of best fit: watch = {slope:.3f} * switch + {intercept:.3f}")
    at_20 = slope * 0.20 + intercept
    print(f"predicted watch fraction at 20% switching: {at_20:.1%}")

    # Paper's headline: < 10% of the stream watched at > 20% switching.
    assert slope < 0
    assert at_20 < 0.12
