"""Figure 13: production A/B deltas per device family (simulated fleet).

The paper's production experiment A/B-tests SODA against a fine-tuned
baseline on HTML5 browsers, smart TVs, and set-top boxes, reporting
*relative* changes in viewing duration, bitrate, rebuffering ratio, and
switching rate.  We simulate each family's network environment (DESIGN.md
substitution #6) and compare SODA (with its production sliding-window
predictor, §6.3) against a tuned Dynamic baseline.

Expected shape: switching drops massively on every family (paper: up to
−88.8%), rebuffering improves most on the volatile HTML5 family (−53%),
and viewing duration rises a few percent (paper: up to +5.91%).
"""

from conftest import BENCH_SEED, BENCH_SESSIONS, banner, run_once

from repro.abr import DynamicController
from repro.analysis import DEVICE_FAMILIES, format_table, relative_deltas
from repro.core.controller import SodaController
from repro.prediction import SlidingWindowPredictor
from repro.sim.player import PlayerConfig
from repro.sim.profiles import production_profile
from repro.sim.session import run_session


def test_fig13_production_ab(benchmark):
    profile = production_profile(session_seconds=480.0)

    def experiment():
        deltas = []
        for i, family in enumerate(DEVICE_FAMILIES):
            traces = family.traces(
                BENCH_SESSIONS, duration=480.0, seed=BENCH_SEED + 7 * i
            )
            soda_results, base_results = [], []
            for trace in traces:
                soda = SodaController(
                    predictor=SlidingWindowPredictor(window_seconds=10.0)
                )
                soda_results.append(
                    run_session(soda, trace, profile.ladder, profile.player)
                )
                base_results.append(
                    run_session(
                        DynamicController(), trace, profile.ladder,
                        profile.player,
                    )
                )
            deltas.append(relative_deltas(family, soda_results, base_results))
        return deltas

    deltas = run_once(benchmark, experiment)

    print(banner("Figure 13 — SODA vs production baseline (relative change)"))
    rows = [
        [
            d.family,
            f"{d.viewing_duration:+.2%}",
            f"{d.bitrate:+.2%}",
            f"{d.rebuffer_ratio:+.2%}",
            f"{d.switching_rate:+.2%}",
        ]
        for d in deltas
    ]
    print(
        format_table(
            ["device family", "viewing duration", "bitrate",
             "rebuffer ratio", "switching rate"],
            rows,
        )
    )

    for d in deltas:
        # The headline production result: large switching reductions and
        # longer sessions on every device family.
        assert d.switching_rate < -0.2, f"{d.family}: switching not reduced"
        assert d.viewing_duration > 0.0, f"{d.family}: no duration gain"
