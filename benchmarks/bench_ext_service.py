"""Extension: decision-service throughput and tail latency.

The serving layer (:mod:`repro.service`) promises every session an answer
within a hard per-decision deadline while many sessions share one
instance.  This bench drives the service — no chaos, the clean steady
workload — from concurrent client threads on the 6-rung ladder and gates

* aggregate throughput of at least ``REQUIRED_DECISIONS_PER_SEC``
  decisions/sec, and
* p99 decision latency under the configured deadline,

then writes a JSON artifact (``service_perf.json``) with the rates, the
latency percentiles, and the tier mix for CI trend tracking.
"""

import json
import os
import threading
import time

from conftest import banner, run_once

from repro.service import DecisionService
from repro.sim.player import PlayerObservation
from repro.sim.video import youtube_4k_ladder

#: decisions per worker thread in the timed section
DECISIONS_PER_THREAD = int(
    os.environ.get("REPRO_BENCH_SERVICE_DECISIONS", "2000")
)
THREADS = int(os.environ.get("REPRO_BENCH_SERVICE_THREADS", "4"))
DEADLINE = 0.05
MAX_BUFFER = 20.0
ARTIFACT = os.environ.get("REPRO_BENCH_SERVICE_ARTIFACT", "service_perf.json")
#: acceptance floor for aggregate decision throughput
REQUIRED_DECISIONS_PER_SEC = 1000.0


def _drive(service, ladder, thread_index, decisions):
    """One synthetic client: a fixed session asking back-to-back."""
    session_id = f"bench-{thread_index}"
    prev = None
    buffer_level = 8.0
    for segment in range(decisions):
        obs = PlayerObservation(
            wall_time=2.0 * segment,
            segment_index=segment,
            buffer_level=buffer_level,
            max_buffer=MAX_BUFFER,
            previous_quality=prev,
            ladder=ladder,
            history=(),
        )
        decision = service.decide(session_id, obs)
        prev = decision.quality
        # A gentle buffer walk keeps the solver off trivial fixed points.
        buffer_level = 4.0 + (buffer_level + 1.7) % 12.0


def test_service_throughput_and_tail_latency(benchmark):
    ladder = youtube_4k_ladder()
    assert ladder.levels >= 6
    service = DecisionService(
        ladder,
        MAX_BUFFER,
        deadline=DEADLINE,
        max_in_flight=max(THREADS * 2, 8),
        max_sessions=max(THREADS * 2, 8),
        table_points=16,
    )

    def experiment():
        # Warm each session's solver and plan cache off the clock.
        for i in range(THREADS):
            _drive(service, ladder, i, 50)
        started = time.perf_counter()
        workers = [
            threading.Thread(
                target=_drive,
                args=(service, ladder, i, DECISIONS_PER_THREAD),
            )
            for i in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        return elapsed

    elapsed = run_once(benchmark, experiment)
    timed = THREADS * DECISIONS_PER_THREAD
    rate = timed / elapsed
    snapshot = service.health()
    stats = snapshot.stats
    latency = snapshot.latency

    print(banner("Decision-service throughput and tail latency"))
    print(f"{'threads':>8} {'decisions':>10} {'rate/s':>10} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}")
    print(f"{THREADS:>8} {timed:>10} {rate:>10.0f} "
          f"{latency['p50'] * 1e3:>8.3f} {latency['p95'] * 1e3:>8.3f} "
          f"{latency['p99'] * 1e3:>8.3f}")
    print(f"tier mix: solver={stats.tier0_decisions} "
          f"table={stats.tier1_decisions} rule={stats.tier2_decisions} "
          f"shed={stats.shed}")

    artifact = {
        "ladder": ladder.name,
        "levels": ladder.levels,
        "threads": THREADS,
        "decisions_timed": timed,
        "decisions_per_sec": round(rate, 1),
        "deadline_seconds": DEADLINE,
        "latency_seconds": {k: round(v, 6) for k, v in latency.items()},
        "latency_max_seconds": round(snapshot.latency_max, 6),
        "tier0_decisions": stats.tier0_decisions,
        "tier1_decisions": stats.tier1_decisions,
        "tier2_decisions": stats.tier2_decisions,
        "shed": stats.shed,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {ARTIFACT}")

    assert rate >= REQUIRED_DECISIONS_PER_SEC, (
        f"service below {REQUIRED_DECISIONS_PER_SEC:.0f} decisions/sec: "
        f"{rate:.0f}/s"
    )
    assert latency["p99"] < DEADLINE, (
        f"p99 latency {latency['p99'] * 1e3:.1f} ms at or above the "
        f"{DEADLINE * 1e3:.0f} ms deadline"
    )
    # The clean workload must be answered by the solver, not by shedding.
    assert stats.tier0_decisions > 0.9 * stats.decisions