"""Extension: decision-service throughput and tail latency.

The serving layer (:mod:`repro.service`) promises every session an answer
within a hard per-decision deadline while many sessions share one
instance.  Two benches live here:

* the single-process bench drives one :class:`DecisionService` from
  concurrent client threads on the 6-rung ladder and gates aggregate
  throughput of at least ``REQUIRED_DECISIONS_PER_SEC`` decisions/sec
  with p99 decision latency under the configured deadline, and
* the sharded bench drives a :class:`ShardedDecisionService` fleet over
  the columnar ``decide_many`` batch path and gates
  ``REQUIRED_SHARD_DECISIONS_PER_SEC`` aggregate decisions/sec with p99
  batch latency under the shard deadline.

Both write JSON artifacts for CI trend tracking: the single-process
bench a snapshot (``service_perf.json``), the sharded bench a run entry
appended to the root-level ``BENCH_service.json`` perf journal.  Run
``python benchmarks/bench_ext_service.py --shards N --out
BENCH_service.json`` to invoke the sharded bench standalone.
"""

import json
import os
import sys
import threading
import time

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
        ),
    )

from repro.service import DecisionService, ShardedDecisionService
from repro.sim.player import PlayerObservation
from repro.prediction.base import ThroughputSample
from repro.sim.video import youtube_4k_ladder

#: decisions per worker thread in the timed section
DECISIONS_PER_THREAD = int(
    os.environ.get("REPRO_BENCH_SERVICE_DECISIONS", "2000")
)
THREADS = int(os.environ.get("REPRO_BENCH_SERVICE_THREADS", "4"))
DEADLINE = 0.05
MAX_BUFFER = 20.0
ARTIFACT = os.environ.get("REPRO_BENCH_SERVICE_ARTIFACT", "service_perf.json")
#: acceptance floor for aggregate decision throughput
REQUIRED_DECISIONS_PER_SEC = 1000.0

#: sharded bench knobs — the batch path must clear 100k decisions/sec
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "2"))
SHARD_BATCH = int(os.environ.get("REPRO_BENCH_SHARD_BATCH", "4096"))
SHARD_DEADLINE = float(os.environ.get("REPRO_BENCH_SHARD_DEADLINE", "0.05"))
SHARD_SECONDS = float(os.environ.get("REPRO_BENCH_SHARD_SECONDS", "3.0"))
REQUIRED_SHARD_DECISIONS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_SHARD_REQUIRED", "100000")
)
JOURNAL = os.environ.get("REPRO_BENCH_SERVICE_JOURNAL", "BENCH_service.json")


def _drive(service, ladder, thread_index, decisions):
    """One synthetic client: a fixed session asking back-to-back."""
    session_id = f"bench-{thread_index}"
    prev = None
    buffer_level = 8.0
    for segment in range(decisions):
        obs = PlayerObservation(
            wall_time=2.0 * segment,
            segment_index=segment,
            buffer_level=buffer_level,
            max_buffer=MAX_BUFFER,
            previous_quality=prev,
            ladder=ladder,
            history=(),
        )
        decision = service.decide(session_id, obs)
        prev = decision.quality
        # A gentle buffer walk keeps the solver off trivial fixed points.
        buffer_level = 4.0 + (buffer_level + 1.7) % 12.0


def _shard_requests(ladder, count):
    """A batch of single-sample observations spread over throughputs."""
    requests = []
    for i in range(count):
        tput = 1.0e6 + 3.3e4 * (i % 29)
        requests.append((
            f"bench-shard-{i}",
            PlayerObservation(
                wall_time=float(i),
                segment_index=i,
                buffer_level=4.0 + (i * 1.7) % 12.0,
                max_buffer=MAX_BUFFER,
                previous_quality=i % ladder.levels,
                ladder=ladder,
                history=(
                    ThroughputSample(
                        start=0.0, duration=1.0, size=tput, throughput=tput
                    ),
                ),
            ),
        ))
    return requests


def run_shard_bench(shards=SHARDS, seconds=SHARD_SECONDS, batch=SHARD_BATCH):
    """Drive the columnar batch path across a shard fleet; return metrics."""
    ladder = youtube_4k_ladder()
    service = ShardedDecisionService(
        ladder=ladder,
        max_buffer=MAX_BUFFER,
        shards=shards,
        deadline=SHARD_DEADLINE,
        tier0_budget=0.9 * SHARD_DEADLINE,
        max_in_flight=64,
    )
    try:
        requests = _shard_requests(ladder, batch)
        service.decide_many(requests)  # warm worker caches off the clock
        total = 0
        failovers = 0
        latencies = []
        started = time.perf_counter()
        while time.perf_counter() - started < seconds:
            t0 = time.perf_counter()
            decisions = service.decide_many(requests)
            latencies.append(time.perf_counter() - t0)
            total += len(decisions)
            failovers += sum(1 for d in decisions if d.failover)
        elapsed = time.perf_counter() - started
    finally:
        fleet = service.close()
    latencies.sort()
    rate = total / elapsed

    def _pct(q):
        return latencies[min(len(latencies) - 1, int(q * (len(latencies) - 1)))]

    return {
        "mode": "sharded-batch",
        "shards": shards,
        "ladder": ladder.name,
        "batch": batch,
        "decisions_timed": total,
        "decisions_per_second": round(rate, 1),
        "deadline_seconds": SHARD_DEADLINE,
        "failovers": failovers,
        "worker_restarts": fleet.worker_restarts,
        "latency": {
            "p50_seconds": round(_pct(0.50), 6),
            "p95_seconds": round(_pct(0.95), 6),
            "p99_seconds": round(_pct(0.99), 6),
            "max_seconds": round(latencies[-1], 6),
        },
    }


def _print_shard_entry(entry):
    from conftest import banner

    latency = entry["latency"]
    print(banner("Sharded decision-service batch throughput"))
    print(f"{'shards':>8} {'batch':>8} {'decisions':>10} {'rate/s':>10} "
          f"{'p50 ms':>8} {'p99 ms':>8}")
    print(f"{entry['shards']:>8} {entry['batch']:>8} "
          f"{entry['decisions_timed']:>10} "
          f"{entry['decisions_per_second']:>10.0f} "
          f"{latency['p50_seconds'] * 1e3:>8.2f} "
          f"{latency['p99_seconds'] * 1e3:>8.2f}")
    print(f"failovers={entry['failovers']} "
          f"worker_restarts={entry['worker_restarts']}")


def _assert_shard_gates(entry):
    rate = entry["decisions_per_second"]
    p99 = entry["latency"]["p99_seconds"]
    assert rate >= REQUIRED_SHARD_DECISIONS_PER_SEC, (
        f"sharded batch path below "
        f"{REQUIRED_SHARD_DECISIONS_PER_SEC:,.0f} decisions/sec: {rate:,.0f}/s"
    )
    assert p99 < SHARD_DEADLINE, (
        f"sharded batch p99 {p99 * 1e3:.1f} ms at or above the "
        f"{SHARD_DEADLINE * 1e3:.0f} ms deadline"
    )
    assert entry["failovers"] == 0, "clean workload hit the failover floor"


def test_service_throughput_and_tail_latency(benchmark):
    from conftest import banner, run_once

    ladder = youtube_4k_ladder()
    assert ladder.levels >= 6
    service = DecisionService(
        ladder,
        MAX_BUFFER,
        deadline=DEADLINE,
        max_in_flight=max(THREADS * 2, 8),
        max_sessions=max(THREADS * 2, 8),
        table_points=16,
    )

    def experiment():
        # Warm each session's solver and plan cache off the clock.
        for i in range(THREADS):
            _drive(service, ladder, i, 50)
        started = time.perf_counter()
        workers = [
            threading.Thread(
                target=_drive,
                args=(service, ladder, i, DECISIONS_PER_THREAD),
            )
            for i in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        return elapsed

    elapsed = run_once(benchmark, experiment)
    timed = THREADS * DECISIONS_PER_THREAD
    rate = timed / elapsed
    snapshot = service.health()
    stats = snapshot.stats
    latency = snapshot.latency

    print(banner("Decision-service throughput and tail latency"))
    print(f"{'threads':>8} {'decisions':>10} {'rate/s':>10} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}")
    print(f"{THREADS:>8} {timed:>10} {rate:>10.0f} "
          f"{latency['p50'] * 1e3:>8.3f} {latency['p95'] * 1e3:>8.3f} "
          f"{latency['p99'] * 1e3:>8.3f}")
    print(f"tier mix: solver={stats.tier0_decisions} "
          f"table={stats.tier1_decisions} rule={stats.tier2_decisions} "
          f"shed={stats.shed}")

    artifact = {
        "ladder": ladder.name,
        "levels": ladder.levels,
        "threads": THREADS,
        "decisions_timed": timed,
        "decisions_per_sec": round(rate, 1),
        "deadline_seconds": DEADLINE,
        "latency_seconds": {k: round(v, 6) for k, v in latency.items()},
        "latency_max_seconds": round(snapshot.latency_max, 6),
        "tier0_decisions": stats.tier0_decisions,
        "tier1_decisions": stats.tier1_decisions,
        "tier2_decisions": stats.tier2_decisions,
        "shed": stats.shed,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {ARTIFACT}")

    assert rate >= REQUIRED_DECISIONS_PER_SEC, (
        f"service below {REQUIRED_DECISIONS_PER_SEC:.0f} decisions/sec: "
        f"{rate:.0f}/s"
    )
    assert latency["p99"] < DEADLINE, (
        f"p99 latency {latency['p99'] * 1e3:.1f} ms at or above the "
        f"{DEADLINE * 1e3:.0f} ms deadline"
    )
    # The clean workload must be answered by the solver, not by shedding.
    assert stats.tier0_decisions > 0.9 * stats.decisions


def test_sharded_batch_throughput(benchmark):
    from conftest import run_once
    from repro.cli import _append_perf_entry

    entry = run_once(benchmark, run_shard_bench)
    _print_shard_entry(entry)
    _append_perf_entry(JOURNAL, entry)
    print(f"appended run to {JOURNAL}")
    _assert_shard_gates(entry)


def main(argv=None):
    import argparse

    from repro.cli import _append_perf_entry

    parser = argparse.ArgumentParser(
        description="Sharded decision-service batch throughput bench"
    )
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument("--batch", type=int, default=SHARD_BATCH)
    parser.add_argument(
        "--seconds", type=float, default=SHARD_SECONDS,
        help="length of the timed section",
    )
    parser.add_argument(
        "--out", default=None,
        help="perf journal to append this run to (e.g. BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    entry = run_shard_bench(
        shards=args.shards, seconds=args.seconds, batch=args.batch
    )
    _print_shard_entry(entry)
    if args.out:
        _append_perf_entry(args.out, entry)
        print(f"appended run to {args.out}")
    _assert_shard_gates(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
