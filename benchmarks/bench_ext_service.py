"""Extension: decision-service throughput and tail latency.

The serving layer (:mod:`repro.service`) promises every session an answer
within a hard per-decision deadline while many sessions share one
instance.  Two benches live here:

* the single-process bench drives one :class:`DecisionService` from
  concurrent client threads on the 6-rung ladder and gates aggregate
  throughput of at least ``REQUIRED_DECISIONS_PER_SEC`` decisions/sec
  with p99 decision latency under the configured deadline, and
* the sharded bench drives a :class:`ShardedDecisionService` fleet over
  the columnar ``decide_many`` batch path and gates
  ``REQUIRED_SHARD_DECISIONS_PER_SEC`` aggregate decisions/sec with p99
  batch latency under the shard deadline, and
* the overload bench pins a deliberately slow solver behind the
  adaptive admission gate, measures sustained capacity closed-loop,
  then offers at least twice that load and gates p99 latency still
  under the deadline — overload is absorbed by shedding to the floor
  rule (recorded as a shed rate), never by queueing past the budget.

All write JSON artifacts for CI trend tracking: the single-process
bench a snapshot (``service_perf.json``); the sharded and overload
benches append run entries (modes ``sharded-batch`` and ``overload``)
to the root-level ``BENCH_service.json`` perf journal.  Run
``python benchmarks/bench_ext_service.py --shards N --out
BENCH_service.json`` for the sharded bench standalone, or add
``--overload`` for the overload bench.
"""

import json
import os
import sys
import threading
import time

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
        ),
    )

from repro.service import DecisionService, ShardedDecisionService
from repro.sim.player import PlayerObservation
from repro.prediction.base import ThroughputSample
from repro.sim.video import youtube_4k_ladder

#: decisions per worker thread in the timed section
DECISIONS_PER_THREAD = int(
    os.environ.get("REPRO_BENCH_SERVICE_DECISIONS", "2000")
)
THREADS = int(os.environ.get("REPRO_BENCH_SERVICE_THREADS", "4"))
DEADLINE = 0.05
MAX_BUFFER = 20.0
ARTIFACT = os.environ.get("REPRO_BENCH_SERVICE_ARTIFACT", "service_perf.json")
#: acceptance floor for aggregate decision throughput
REQUIRED_DECISIONS_PER_SEC = 1000.0

#: sharded bench knobs — the batch path must clear 100k decisions/sec
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "2"))
SHARD_BATCH = int(os.environ.get("REPRO_BENCH_SHARD_BATCH", "4096"))
SHARD_DEADLINE = float(os.environ.get("REPRO_BENCH_SHARD_DEADLINE", "0.05"))
SHARD_SECONDS = float(os.environ.get("REPRO_BENCH_SHARD_SECONDS", "3.0"))
REQUIRED_SHARD_DECISIONS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_SHARD_REQUIRED", "100000")
)
JOURNAL = os.environ.get("REPRO_BENCH_SERVICE_JOURNAL", "BENCH_service.json")

#: overload bench knobs — a slow solver bounds capacity so 2x load is cheap
OVERLOAD_DEADLINE = 0.05
OVERLOAD_SOLVE_SECONDS = 0.002
OVERLOAD_BASE_THREADS = int(
    os.environ.get("REPRO_BENCH_OVERLOAD_THREADS", "4")
)
OVERLOAD_FACTOR = int(os.environ.get("REPRO_BENCH_OVERLOAD_FACTOR", "4"))
OVERLOAD_DECISIONS = int(
    os.environ.get("REPRO_BENCH_OVERLOAD_DECISIONS", "300")
)


def _drive(service, ladder, thread_index, decisions):
    """One synthetic client: a fixed session asking back-to-back."""
    session_id = f"bench-{thread_index}"
    prev = None
    buffer_level = 8.0
    for segment in range(decisions):
        obs = PlayerObservation(
            wall_time=2.0 * segment,
            segment_index=segment,
            buffer_level=buffer_level,
            max_buffer=MAX_BUFFER,
            previous_quality=prev,
            ladder=ladder,
            history=(),
        )
        decision = service.decide(session_id, obs)
        prev = decision.quality
        # A gentle buffer walk keeps the solver off trivial fixed points.
        buffer_level = 4.0 + (buffer_level + 1.7) % 12.0


def _shard_requests(ladder, count):
    """A batch of single-sample observations spread over throughputs."""
    requests = []
    for i in range(count):
        tput = 1.0e6 + 3.3e4 * (i % 29)
        requests.append((
            f"bench-shard-{i}",
            PlayerObservation(
                wall_time=float(i),
                segment_index=i,
                buffer_level=4.0 + (i * 1.7) % 12.0,
                max_buffer=MAX_BUFFER,
                previous_quality=i % ladder.levels,
                ladder=ladder,
                history=(
                    ThroughputSample(
                        start=0.0, duration=1.0, size=tput, throughput=tput
                    ),
                ),
            ),
        ))
    return requests


def run_shard_bench(shards=SHARDS, seconds=SHARD_SECONDS, batch=SHARD_BATCH):
    """Drive the columnar batch path across a shard fleet; return metrics."""
    ladder = youtube_4k_ladder()
    service = ShardedDecisionService(
        ladder=ladder,
        max_buffer=MAX_BUFFER,
        shards=shards,
        deadline=SHARD_DEADLINE,
        tier0_budget=0.9 * SHARD_DEADLINE,
        max_in_flight=64,
    )
    try:
        requests = _shard_requests(ladder, batch)
        service.decide_many(requests)  # warm worker caches off the clock
        total = 0
        failovers = 0
        latencies = []
        started = time.perf_counter()
        while time.perf_counter() - started < seconds:
            t0 = time.perf_counter()
            decisions = service.decide_many(requests)
            latencies.append(time.perf_counter() - t0)
            total += len(decisions)
            failovers += sum(1 for d in decisions if d.failover)
        elapsed = time.perf_counter() - started
    finally:
        fleet = service.close()
    latencies.sort()
    rate = total / elapsed

    def _pct(q):
        return latencies[min(len(latencies) - 1, int(q * (len(latencies) - 1)))]

    return {
        "mode": "sharded-batch",
        "shards": shards,
        "ladder": ladder.name,
        "batch": batch,
        "decisions_timed": total,
        "decisions_per_second": round(rate, 1),
        "deadline_seconds": SHARD_DEADLINE,
        "failovers": failovers,
        "worker_restarts": fleet.worker_restarts,
        "latency": {
            "p50_seconds": round(_pct(0.50), 6),
            "p95_seconds": round(_pct(0.95), 6),
            "p99_seconds": round(_pct(0.99), 6),
            "max_seconds": round(latencies[-1], 6),
        },
    }


def _print_shard_entry(entry):
    from conftest import banner

    latency = entry["latency"]
    print(banner("Sharded decision-service batch throughput"))
    print(f"{'shards':>8} {'batch':>8} {'decisions':>10} {'rate/s':>10} "
          f"{'p50 ms':>8} {'p99 ms':>8}")
    print(f"{entry['shards']:>8} {entry['batch']:>8} "
          f"{entry['decisions_timed']:>10} "
          f"{entry['decisions_per_second']:>10.0f} "
          f"{latency['p50_seconds'] * 1e3:>8.2f} "
          f"{latency['p99_seconds'] * 1e3:>8.2f}")
    print(f"failovers={entry['failovers']} "
          f"worker_restarts={entry['worker_restarts']}")


def _assert_shard_gates(entry):
    rate = entry["decisions_per_second"]
    p99 = entry["latency"]["p99_seconds"]
    assert rate >= REQUIRED_SHARD_DECISIONS_PER_SEC, (
        f"sharded batch path below "
        f"{REQUIRED_SHARD_DECISIONS_PER_SEC:,.0f} decisions/sec: {rate:,.0f}/s"
    )
    assert p99 < SHARD_DEADLINE, (
        f"sharded batch p99 {p99 * 1e3:.1f} ms at or above the "
        f"{SHARD_DEADLINE * 1e3:.0f} ms deadline"
    )
    assert entry["failovers"] == 0, "clean workload hit the failover floor"


def _slow_tier0_factory(session_id, controller):
    """A solver that takes ~OVERLOAD_SOLVE_SECONDS: caps capacity low."""
    inner = controller.select_quality

    def solve(*args, **kwargs):
        time.sleep(OVERLOAD_SOLVE_SECONDS)
        return inner(*args, **kwargs)

    return solve


def _overload_drive(service, ladder, session_id, decisions, out):
    """Closed-loop client timing every call; appends latencies to out."""
    prev = None
    buffer_level = 8.0
    latencies = []
    for segment in range(decisions):
        obs = PlayerObservation(
            wall_time=2.0 * segment,
            segment_index=segment,
            buffer_level=buffer_level,
            max_buffer=MAX_BUFFER,
            previous_quality=prev,
            ladder=ladder,
            history=(),
        )
        t0 = time.perf_counter()
        decision = service.decide(session_id, obs)
        latencies.append(time.perf_counter() - t0)
        prev = decision.quality
        buffer_level = 4.0 + (buffer_level + 1.7) % 12.0
    out.append(latencies)


def _overload_phase(service, ladder, session_ids, decisions):
    """Run one closed-loop phase; return (rate, p99, all_latencies)."""
    buckets = []
    started = time.perf_counter()
    workers = [
        threading.Thread(
            target=_overload_drive,
            args=(service, ladder, sid, decisions, buckets),
        )
        for sid in session_ids
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    latencies = sorted(lat for bucket in buckets for lat in bucket)
    rate = len(latencies) / elapsed
    p99 = latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))]
    return rate, p99, latencies


def run_overload_bench(
    base_threads=OVERLOAD_BASE_THREADS,
    factor=OVERLOAD_FACTOR,
    decisions=OVERLOAD_DECISIONS,
):
    """Measure capacity, then offer >= 2x and verify shed-not-queue."""
    ladder = youtube_4k_ladder()
    service = DecisionService(
        ladder,
        MAX_BUFFER,
        deadline=OVERLOAD_DEADLINE,
        max_in_flight=base_threads,
        max_sessions=base_threads * factor * 2,
        table_points=16,
        tier0_factory=_slow_tier0_factory,
    )
    established = [f"ovl-{i}" for i in range(base_threads)]
    # Establish the baseline sessions (and warm their solvers) off the
    # clock so phase 1 measures steady-state capacity, not cold starts.
    for sid in established:
        _overload_drive(service, ladder, sid, 20, [])
    shed_before = service.health().stats.shed

    capacity, p99_base, _ = _overload_phase(
        service, ladder, established, decisions
    )
    shed_base = service.health().stats.shed - shed_before

    # Phase 2: the established sessions keep asking while factor-1 times
    # as many brand-new arrivals pile on — offered load is a closed loop
    # over factor * base_threads clients against a base_threads-wide gate.
    arrivals = [f"ovl-new-{i}" for i in range((factor - 1) * base_threads)]
    offered, p99_over, latencies = _overload_phase(
        service, ladder, established + arrivals, decisions
    )
    snapshot = service.health()
    shed_over = snapshot.stats.shed - shed_base - shed_before
    answered = (factor * base_threads) * decisions

    return {
        "mode": "overload",
        "threads_base": base_threads,
        "threads_overload": factor * base_threads,
        "decisions_per_thread": decisions,
        "deadline_seconds": OVERLOAD_DEADLINE,
        "solver_seconds": OVERLOAD_SOLVE_SECONDS,
        "capacity_per_second": round(capacity, 1),
        "offered_per_second": round(offered, 1),
        "overload_ratio": round(offered / capacity, 2) if capacity else 0.0,
        "answered": answered,
        "shed_baseline": shed_base,
        "shed_overload": shed_over,
        "shed_rate_overload": round(shed_over / answered, 4),
        "latency": {
            "p99_baseline_seconds": round(p99_base, 6),
            "p99_overload_seconds": round(p99_over, 6),
            "max_overload_seconds": round(latencies[-1], 6),
        },
        "admission": snapshot.admission,
    }


def _print_overload_entry(entry):
    from conftest import banner

    latency = entry["latency"]
    print(banner("Decision-service overload shedding"))
    print(f"capacity {entry['capacity_per_second']:,.0f}/s "
          f"({entry['threads_base']} threads) -> offered "
          f"{entry['offered_per_second']:,.0f}/s "
          f"({entry['threads_overload']} threads, "
          f"{entry['overload_ratio']:.1f}x)")
    print(f"p99 baseline {latency['p99_baseline_seconds'] * 1e3:.2f} ms, "
          f"overload {latency['p99_overload_seconds'] * 1e3:.2f} ms "
          f"(deadline {entry['deadline_seconds'] * 1e3:.0f} ms)")
    print(f"shed: baseline={entry['shed_baseline']} "
          f"overload={entry['shed_overload']} "
          f"({entry['shed_rate_overload']:.1%} of overload requests)")


def _assert_overload_gates(entry):
    latency = entry["latency"]
    assert entry["overload_ratio"] >= 2.0, (
        f"overload phase offered only {entry['overload_ratio']:.1f}x "
        f"sustained capacity; the bench needs >= 2x to say anything"
    )
    assert latency["p99_overload_seconds"] < entry["deadline_seconds"], (
        f"p99 {latency['p99_overload_seconds'] * 1e3:.1f} ms at or above "
        f"the {entry['deadline_seconds'] * 1e3:.0f} ms deadline under "
        f"{entry['overload_ratio']:.1f}x load"
    )
    assert entry["shed_overload"] > 0, (
        "overload phase shed nothing — the gate never engaged, so the "
        "load was not actually past capacity"
    )


def test_service_throughput_and_tail_latency(benchmark):
    from conftest import banner, run_once

    ladder = youtube_4k_ladder()
    assert ladder.levels >= 6
    service = DecisionService(
        ladder,
        MAX_BUFFER,
        deadline=DEADLINE,
        max_in_flight=max(THREADS * 2, 8),
        max_sessions=max(THREADS * 2, 8),
        table_points=16,
    )

    def experiment():
        # Warm each session's solver and plan cache off the clock.
        for i in range(THREADS):
            _drive(service, ladder, i, 50)
        started = time.perf_counter()
        workers = [
            threading.Thread(
                target=_drive,
                args=(service, ladder, i, DECISIONS_PER_THREAD),
            )
            for i in range(THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        return elapsed

    elapsed = run_once(benchmark, experiment)
    timed = THREADS * DECISIONS_PER_THREAD
    rate = timed / elapsed
    snapshot = service.health()
    stats = snapshot.stats
    latency = snapshot.latency

    print(banner("Decision-service throughput and tail latency"))
    print(f"{'threads':>8} {'decisions':>10} {'rate/s':>10} "
          f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}")
    print(f"{THREADS:>8} {timed:>10} {rate:>10.0f} "
          f"{latency['p50'] * 1e3:>8.3f} {latency['p95'] * 1e3:>8.3f} "
          f"{latency['p99'] * 1e3:>8.3f}")
    print(f"tier mix: solver={stats.tier0_decisions} "
          f"table={stats.tier1_decisions} rule={stats.tier2_decisions} "
          f"shed={stats.shed}")

    artifact = {
        "ladder": ladder.name,
        "levels": ladder.levels,
        "threads": THREADS,
        "decisions_timed": timed,
        "decisions_per_sec": round(rate, 1),
        "deadline_seconds": DEADLINE,
        "latency_seconds": {k: round(v, 6) for k, v in latency.items()},
        "latency_max_seconds": round(snapshot.latency_max, 6),
        "tier0_decisions": stats.tier0_decisions,
        "tier1_decisions": stats.tier1_decisions,
        "tier2_decisions": stats.tier2_decisions,
        "shed": stats.shed,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {ARTIFACT}")

    assert rate >= REQUIRED_DECISIONS_PER_SEC, (
        f"service below {REQUIRED_DECISIONS_PER_SEC:.0f} decisions/sec: "
        f"{rate:.0f}/s"
    )
    assert latency["p99"] < DEADLINE, (
        f"p99 latency {latency['p99'] * 1e3:.1f} ms at or above the "
        f"{DEADLINE * 1e3:.0f} ms deadline"
    )
    # The clean workload must be answered by the solver, not by shedding.
    assert stats.tier0_decisions > 0.9 * stats.decisions


def test_sharded_batch_throughput(benchmark):
    from conftest import run_once
    from repro.cli import _append_perf_entry

    entry = run_once(benchmark, run_shard_bench)
    _print_shard_entry(entry)
    _append_perf_entry(JOURNAL, entry)
    print(f"appended run to {JOURNAL}")
    _assert_shard_gates(entry)


def test_overload_shedding(benchmark):
    from conftest import run_once
    from repro.cli import _append_perf_entry

    entry = run_once(benchmark, run_overload_bench)
    _print_overload_entry(entry)
    _append_perf_entry(JOURNAL, entry)
    print(f"appended run to {JOURNAL}")
    _assert_overload_gates(entry)


def main(argv=None):
    import argparse

    from repro.cli import _append_perf_entry

    parser = argparse.ArgumentParser(
        description="Sharded decision-service batch throughput bench"
    )
    parser.add_argument("--shards", type=int, default=SHARDS)
    parser.add_argument("--batch", type=int, default=SHARD_BATCH)
    parser.add_argument(
        "--seconds", type=float, default=SHARD_SECONDS,
        help="length of the timed section",
    )
    parser.add_argument(
        "--out", default=None,
        help="perf journal to append this run to (e.g. BENCH_service.json)",
    )
    parser.add_argument(
        "--overload", action="store_true",
        help="run the overload-shedding bench instead of the sharded one",
    )
    args = parser.parse_args(argv)
    if args.overload:
        entry = run_overload_bench()
        _print_overload_entry(entry)
        if args.out:
            _append_perf_entry(args.out, entry)
            print(f"appended run to {args.out}")
        _assert_overload_gates(entry)
        return 0
    entry = run_shard_bench(
        shards=args.shards, seconds=args.seconds, batch=args.batch
    )
    _print_shard_entry(entry)
    if args.out:
        _append_perf_entry(args.out, entry)
        print(f"appended run to {args.out}")
    _assert_shard_gates(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
