"""Theorem 4.1: dynamic regret and competitive ratio vs horizon K.

With exact predictions, SODA's cost approaches the offline optimal
exponentially fast in the prediction horizon.  This bench rolls SODA out in
the time-based model with oracle predictions, computes cost(OPT) by dynamic
programming, and reports regret and competitive ratio per K, plus the
closed-form Theorem A.3 bound for an Assumption-A.1-compliant instance.

The exact (brute-force) solver is used, matching the theory; Theorem 4.3's
monotone approximation is benchmarked separately (Figure 8).
"""

import numpy as np
from conftest import BENCH_SEED, banner, run_once

from repro.analysis import format_series
from repro.core.objective import SodaConfig
from repro.core.offline import offline_optimal, rollout_time_based
from repro.core.theory import (
    StreamingModel,
    check_assumption_a1,
    competitive_ratio_bound,
    decay_constants,
)
from repro.sim.video import BitrateLadder

HORIZONS = [1, 2, 3, 5, 8]
N_STEPS = 100
N_TRIALS = 4
MAX_BUFFER = 20.0


def test_thm41_regret_vs_horizon(benchmark):
    ladder = BitrateLadder([1.0, 2.0, 3.0, 4.5, 6.0], segment_duration=2.0)
    cfg = SodaConfig(
        horizon=5, beta=0.1, gamma=2.0, target_buffer=10.0,
        switch_event_cost=0.0, use_brute_force=True,
    )
    rng = np.random.default_rng(BENCH_SEED)

    def experiment():
        regrets = {k: [] for k in HORIZONS}
        ratios = {k: [] for k in HORIZONS}
        for _ in range(N_TRIALS):
            omega = rng.uniform(2.0, 8.0, N_STEPS)
            opt = offline_optimal(
                omega, ladder, cfg, MAX_BUFFER, x0=10.0, buffer_grid=301
            )
            for k in HORIZONS:
                roll = rollout_time_based(
                    omega, ladder, cfg.with_(horizon=k), MAX_BUFFER, x0=10.0,
                    terminal_weight=1.0,
                )
                regrets[k].append(roll.cost - opt.cost)
                ratios[k].append(roll.cost / opt.cost)
        return (
            [float(np.mean(regrets[k])) for k in HORIZONS],
            [float(np.mean(ratios[k])) for k in HORIZONS],
        )

    regret, ratio = run_once(benchmark, experiment)

    print(banner("Theorem 4.1 — regret / competitive ratio vs horizon K"))
    print(
        format_series(
            "K",
            HORIZONS,
            {"mean dynamic regret": regret, "mean competitive ratio": ratio},
        )
    )

    # Regret shrinks (substantially) as the horizon grows.
    assert regret[-1] < regret[0] * 0.5
    assert ratio[-1] < ratio[0]
    # With a healthy horizon the rollout is near-optimal.
    assert ratio[-1] < 1.35


def test_thm41_closed_form_bound(benchmark):
    """The Theorem A.3 bound itself: finite, decaying, above 1."""
    model = StreamingModel(
        omega_min=6.0, omega_max=10.0, r_min=1.5, r_max=12.0,
        x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
    )
    ok, reason = check_assumption_a1(model)
    assert ok, reason

    def experiment():
        constants = decay_constants(model)
        return constants, [
            competitive_ratio_bound(model, constants, k)
            for k in (1, 10, 100, 1000, 10000)
        ]

    constants, bounds = run_once(benchmark, experiment)

    print(banner("Theorem A.3 — closed-form competitive-ratio bound"))
    print(f"rho = {constants.rho:.6f}  C = {constants.c_state:.3g}  "
          f"C' = {constants.c_action:.3g}")
    print(
        format_series(
            "K", [1, 10, 100, 1000, 10000], {"CR bound": bounds}
        )
    )
    assert all(b >= 1.0 for b in bounds)
    assert bounds == sorted(bounds, reverse=True)
    # The bound converges to 1 as K grows.
    assert bounds[-1] < bounds[0]
