"""Figure 7: throughput-predictor accuracy vs prediction horizon.

The paper profiles the two predictors shipped with dash.js (moving average
and EMA) and finds correlation with the true future throughput around 50%
for the immediate future, dropping to ~15% far ahead — the reason SODA
caps its horizon at ~10 s (§5.2).

We regenerate the curve: for each look-ahead distance, the correlation
between predicted and realised mean throughput over synthetic sessions.
"""

import numpy as np
from conftest import BENCH_SEED, banner, run_once

from repro.analysis import format_series
from repro.prediction import EmaPredictor, MovingAveragePredictor, ThroughputSample
from repro.traces import puffer_like

LOOKAHEADS = [1, 2, 3, 5, 8, 12, 16]
DT = 2.0


def profile_predictor(make_predictor, traces):
    """Correlation between prediction and realised bin mean per look-ahead."""
    per_lookahead = {k: ([], []) for k in LOOKAHEADS}
    for trace in traces:
        predictor = make_predictor()
        predictor.reset()
        n_bins = int(trace.duration / DT)
        for i in range(n_bins - max(LOOKAHEADS) - 1):
            t = i * DT
            measured = trace.average_throughput(t, t + DT)
            predictor.update(
                ThroughputSample(t, DT, measured * DT, measured)
            )
            prediction = predictor.predict_scalar(t + DT)
            if prediction <= 0:
                continue
            for k in LOOKAHEADS:
                future = trace.average_throughput(
                    t + k * DT, t + (k + 1) * DT
                )
                preds, trues = per_lookahead[k]
                preds.append(prediction)
                trues.append(future)
    return {
        k: float(np.corrcoef(preds, trues)[0, 1])
        for k, (preds, trues) in per_lookahead.items()
    }


def test_fig07_predictor_correlation(benchmark):
    traces = puffer_like().dataset(6, duration=420.0, seed=BENCH_SEED + 100)

    def experiment():
        return {
            "moving-average": profile_predictor(
                lambda: MovingAveragePredictor(window=5), traces
            ),
            "ema": profile_predictor(lambda: EmaPredictor(), traces),
        }

    results = run_once(benchmark, experiment)

    print(banner("Figure 7 — prediction correlation vs look-ahead (Δt = 2 s)"))
    print(
        format_series(
            "look-ahead (intervals)",
            LOOKAHEADS,
            {
                name: [corr[k] for k in LOOKAHEADS]
                for name, corr in results.items()
            },
        )
    )

    for name, corr in results.items():
        near = corr[LOOKAHEADS[0]]
        far = corr[LOOKAHEADS[-1]]
        print(f"{name}: near={near:.2f} far={far:.2f}")
        # Correlation decays with the horizon (the paper's 50% -> 15%).
        assert near > far
        assert near > 0.3
