"""Extension: ultra-low-latency live streams (the paper's §8 future work).

The paper's closing section asks whether the SOCO-based strategy survives
ultra-low-latency live streaming, where the buffer is a few seconds instead
of 10–20.  This bench sweeps the live latency from 20 s down to 3 s and
reports how SODA's and Dynamic's QoE components degrade — quantifying §8's
"harder to prevent rebuffering and bitrate switching in this regime".
"""

from conftest import BENCH_SEED, BENCH_SESSIONS, banner, run_once

from repro.abr import DynamicController
from repro.analysis import format_table
from repro.core.controller import SodaController
from repro.qoe import summarize
from repro.sim.profiles import live_profile, low_latency_profile
from repro.sim.session import run_dataset
from repro.traces import puffer_like

LATENCIES = [20.0, 10.0, 6.0, 3.0]
SESSION_SECONDS = 300.0


def test_ext_low_latency_sweep(benchmark):
    traces = puffer_like().dataset(
        max(BENCH_SESSIONS // 2, 3), SESSION_SECONDS, seed=BENCH_SEED + 71
    )

    def experiment():
        rows = {}
        for latency in LATENCIES:
            if latency >= 20.0:
                profile = live_profile(session_seconds=SESSION_SECONDS)
            else:
                profile = low_latency_profile(
                    session_seconds=SESSION_SECONDS, latency=latency
                )
            for name, factory in (
                ("soda", lambda: SodaController()),
                ("dynamic", lambda: DynamicController()),
            ):
                metrics = run_dataset(
                    factory, traces, profile.ladder, profile.player
                )
                rows[(latency, name)] = summarize(metrics)
        return rows

    rows = run_once(benchmark, experiment)

    print(banner("§8 extension — QoE vs live latency (buffer cap)"))
    table = []
    for latency in LATENCIES:
        for name in ("soda", "dynamic"):
            s = rows[(latency, name)]
            table.append(
                [
                    f"{latency:.0f}s",
                    name,
                    f"{s.qoe.mean:.4f}",
                    f"{s.utility.mean:.4f}",
                    f"{s.rebuffer_ratio.mean:.4f}",
                    f"{s.switching_rate.mean:.4f}",
                ]
            )
    print(
        format_table(
            ["latency", "controller", "qoe", "utility", "rebuf", "switch"],
            table,
        )
    )

    # §8's hypothesis: smoothness degrades as the buffer shrinks...
    soda_20 = rows[(20.0, "soda")]
    soda_3 = rows[(3.0, "soda")]
    assert (
        soda_3.switching_rate.mean + soda_3.rebuffer_ratio.mean
        >= soda_20.switching_rate.mean + soda_20.rebuffer_ratio.mean - 1e-9
    )
    # ...SODA keeps its switching lead down to ~6 s of latency.  Below that
    # the regime genuinely changes (a couple of segments of buffer leave no
    # room for horizon planning) and the lead is no longer guaranteed —
    # which is precisely why §8 leaves ultra-low latency as future work.
    for latency in (l for l in LATENCIES if l >= 6.0):
        assert (
            rows[(latency, "soda")].switching_rate.mean
            <= rows[(latency, "dynamic")].switching_rate.mean + 1e-9
        )
    print(
        "\nNote: below ~6 s the horizon-planning advantage collapses — the "
        "§8 open problem. SODA's tuning here is unchanged from the 20 s "
        "regime; adapting x̄/β/K for tiny buffers is the future work the "
        "paper describes."
    )
