"""Extension: distilled learned policies served at tier-1 cost.

The learning pipeline (:mod:`repro.learn`) promises that a behavior-cloned
SODA policy, rendered onto the dense tier-1 grid, is operationally
indistinguishable from a solver-built table: the same mmap wire format,
the same nearest-neighbour lookup, and QoE that tracks the teacher.  This
bench gates both halves of that promise:

* **lookup parity** — ``lookup_observation`` on the distilled table must
  run within ``REQUIRED_PARITY`` of the solver table's per-lookup latency
  over the same observation stream (they share the code path, so anything
  beyond noise means the distilled grid broke the tier-1 cost model), and
* **QoE fidelity** — on the canonical step-down scenario the distilled
  policy's QoE must land within ``QOE_TOLERANCE`` (5%) of SODA's.

Demonstrations are drawn in-process from SODA sessions over the
deterministic scenario set (steps, ramps, oscillations, sawtooth), so the
bench is self-contained and seed-stable.  Each run appends a
``learn-distilled`` entry to the root-level ``BENCH_service.json`` perf
journal for CI trend tracking.  Run ``python benchmarks/bench_ext_learn.py
--out BENCH_service.json`` for script mode.
"""

import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
        ),
    )

from repro.core.controller import SodaController
from repro.core.lookup import DecisionTable
from repro.learn import DemoDataset, TableController, distill_policy, fit_bc
from repro.prediction.base import ThroughputSample
from repro.qoe.metrics import qoe_from_session
from repro.sim.player import PlayerObservation, simulate_session
from repro.sim.profiles import live_profile
from repro.traces.scenarios import (
    oscillation,
    ramp,
    sawtooth,
    step_down,
    step_up,
)

#: distilled per-lookup latency may be at most this multiple of the
#: solver table's (identical code path; headroom absorbs timer noise)
REQUIRED_PARITY = float(os.environ.get("REPRO_BENCH_LEARN_PARITY", "1.5"))
#: QoE shortfall tolerance vs SODA on the step-down scenario
QOE_TOLERANCE = float(os.environ.get("REPRO_BENCH_LEARN_QOE_TOL", "0.05"))
#: lookups per table in the timed parity section
LOOKUPS = int(os.environ.get("REPRO_BENCH_LEARN_LOOKUPS", "20000"))
#: grid points per axis for both tables (identical shapes by design)
TABLE_POINTS = int(os.environ.get("REPRO_BENCH_LEARN_TABLE_POINTS", "48"))
#: state-space resolution of the cloned policy
BUCKETS = int(os.environ.get("REPRO_BENCH_LEARN_BUCKETS", "16"))
JOURNAL = os.environ.get("REPRO_BENCH_SERVICE_JOURNAL", "BENCH_service.json")

SESSION_SECONDS = 300.0


def _profile():
    return live_profile(session_seconds=SESSION_SECONDS)


def _training_traces():
    """The deterministic scenario set the teacher demonstrates on."""
    return [
        step_down(), step_up(), ramp(), ramp(start=20.0, end=2.0),
        oscillation(), sawtooth(), step_down(high=20.0, low=6.0),
        oscillation(low=2.0, high=14.0),
    ]


def _qoe(profile, controller, trace):
    result = simulate_session(
        controller, trace, profile.ladder, profile.player
    )
    return qoe_from_session(
        result,
        utility=profile.utility,
        ssim_model=profile.ssim_model,
        seed=0,
    ).qoe


def _distill_from_soda(profile):
    """Demonstrate, clone, and distill — the pipeline minus the journal."""
    dataset = DemoDataset(
        ladder=profile.ladder,
        max_buffer=profile.player.max_buffer,
        controller="soda",
        buffer_buckets=BUCKETS,
        throughput_buckets=BUCKETS,
    )
    for trace in _training_traces():
        result = simulate_session(
            SodaController(), trace, profile.ladder, profile.player,
            log_decisions=True,
        )
        for row in result.decision_log:
            dataset.add_row(row)
    policy, coverage = fit_bc(dataset)
    distilled = distill_policy(
        policy,
        throughput_points=TABLE_POINTS,
        buffer_points=TABLE_POINTS,
    )
    return distilled, coverage


def _lookup_stream(ladder, count):
    """A deterministic observation stream sweeping all three axes."""
    stream = []
    for i in range(count):
        tput = 0.5 * (1.22 ** (i % 31))
        prev = i % (ladder.levels + 1)
        stream.append(PlayerObservation(
            wall_time=float(i),
            segment_index=i,
            buffer_level=(i * 1.37) % 20.0,
            max_buffer=20.0,
            previous_quality=None if prev == ladder.levels else prev,
            ladder=ladder,
            history=(
                ThroughputSample(
                    start=float(i), duration=1.0, size=tput, throughput=tput
                ),
            ),
        ))
    return stream


def _time_lookups(table, stream):
    start = time.perf_counter()
    for obs in stream:
        table.lookup_observation(obs)
    return (time.perf_counter() - start) / len(stream)


def run_learn_bench():
    profile = _profile()
    distilled, coverage = _distill_from_soda(profile)
    solver_table = DecisionTable(
        profile.ladder,
        profile.player.max_buffer,
        throughput_points=TABLE_POINTS,
        buffer_points=TABLE_POINTS,
    )
    assert distilled.shape == solver_table.shape

    stream = _lookup_stream(profile.ladder, LOOKUPS)
    # Warm both paths off the clock, then interleave-time them.
    _time_lookups(solver_table, stream[:200])
    _time_lookups(distilled, stream[:200])
    solver_latency = _time_lookups(solver_table, stream)
    distilled_latency = _time_lookups(distilled, stream)

    trace = step_down()
    soda_qoe = _qoe(profile, SodaController(), trace)
    distilled_qoe = _qoe(
        profile, TableController(distilled, name="distilled"), trace
    )

    return {
        "mode": "learn-distilled",
        "table_points": TABLE_POINTS,
        "buckets": BUCKETS,
        "coverage": coverage.coverage,
        "demo_decisions": coverage.decisions,
        "lookups": LOOKUPS,
        "solver_lookup_seconds": solver_latency,
        "distilled_lookup_seconds": distilled_latency,
        "latency_ratio": distilled_latency / solver_latency,
        "step_down_qoe_soda": soda_qoe,
        "step_down_qoe_distilled": distilled_qoe,
        "qoe_shortfall": soda_qoe - distilled_qoe,
        "required_parity": REQUIRED_PARITY,
        "qoe_tolerance": QOE_TOLERANCE,
    }


def _print_entry(entry):
    print(
        f"lookup latency: solver "
        f"{entry['solver_lookup_seconds'] * 1e6:.2f} us, distilled "
        f"{entry['distilled_lookup_seconds'] * 1e6:.2f} us "
        f"(ratio {entry['latency_ratio']:.2f}, "
        f"required <= {entry['required_parity']:.2f})"
    )
    print(
        f"step-down QoE: soda {entry['step_down_qoe_soda']:.3f}, "
        f"distilled {entry['step_down_qoe_distilled']:.3f} "
        f"(shortfall {entry['qoe_shortfall']:+.3f}, tolerance "
        f"{entry['qoe_tolerance']:.0%})"
    )
    print(
        f"demonstrations: {entry['demo_decisions']} decisions, "
        f"{entry['coverage']:.1%} state coverage"
    )


def _assert_gates(entry):
    assert entry["latency_ratio"] <= entry["required_parity"], (
        f"distilled lookup {entry['latency_ratio']:.2f}x slower than the "
        f"solver table (required <= {entry['required_parity']:.2f}x)"
    )
    allowed = entry["qoe_tolerance"] * max(
        abs(entry["step_down_qoe_soda"]), 1.0
    )
    assert entry["qoe_shortfall"] <= allowed, (
        f"distilled QoE trails SODA by {entry['qoe_shortfall']:.3f} on "
        f"step-down (allowed {allowed:.3f})"
    )


def test_distilled_table_parity_and_fidelity(benchmark):
    from conftest import run_once
    from repro.cli import _append_perf_entry

    entry = run_once(benchmark, run_learn_bench)
    _print_entry(entry)
    _append_perf_entry(JOURNAL, entry)
    print(f"appended run to {JOURNAL}")
    _assert_gates(entry)


def main(argv=None):
    import argparse

    from repro.cli import _append_perf_entry

    parser = argparse.ArgumentParser(
        description="Distilled-policy tier-1 parity and fidelity bench"
    )
    parser.add_argument(
        "--out", default=None,
        help="perf journal to append this run to (e.g. BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    entry = run_learn_bench()
    _print_entry(entry)
    if args.out:
        _append_perf_entry(args.out, entry)
        print(f"appended run to {args.out}")
    _assert_gates(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
