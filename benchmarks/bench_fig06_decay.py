"""Figure 6 / Theorem A.1: the exponentially decaying perturbation property.

Solves the continuous horizon problem (Equation 3) from pairs of perturbed
initial conditions and from perturbed predictions, and shows the per-step
trajectory distance decays geometrically — the property underpinning every
performance guarantee in §4.
"""

import numpy as np
from conftest import banner, run_once

from repro.analysis import format_series
from repro.core.planner import (
    ContinuousProblem,
    solve_continuous,
    trajectory_distance,
)
from repro.core.theory import fit_decay_rate

HORIZON = 14


def test_fig06_initial_condition_decay(benchmark):
    problem = ContinuousProblem(
        r_min=1.5, r_max=12.0, max_buffer=20.0, target=12.0,
        beta=1.0, gamma=1.0, epsilon=0.25,
    )
    omega = np.full(HORIZON, 6.0)

    def experiment():
        pairs = [
            ((4.0, 1.0 / 6.0), (18.0, 1.0 / 3.0)),
            ((2.0, 1.0 / 12.0), (12.0, 1.0 / 1.5)),
            ((8.0, 1.0 / 4.0), (16.0, 1.0 / 8.0)),
        ]
        distances = []
        for (xa, ua), (xb, ub) in pairs:
            pa = solve_continuous(omega, xa, ua, problem)
            pb = solve_continuous(omega, xb, ub, problem)
            assert pa.converged and pb.converged
            distances.append(trajectory_distance(pa, pb))
        return np.mean(distances, axis=0)

    mean_distance = run_once(benchmark, experiment)
    rho = fit_decay_rate(mean_distance)

    print(banner("Figure 6 — perturbation decay (initial buffer/action)"))
    print(
        format_series(
            "step",
            list(range(HORIZON)),
            {"mean |Δx| + |Δu|": [float(d) for d in mean_distance]},
        )
    )
    print(f"fitted geometric decay factor ρ ≈ {rho:.3f}")

    assert mean_distance[0] > mean_distance[-1]
    assert 0.0 < rho < 0.9


def test_fig06_prediction_perturbation_decay(benchmark):
    """Perturbing one prediction affects nearby steps most (Definition A.1)."""
    problem = ContinuousProblem(
        r_min=1.5, r_max=12.0, max_buffer=20.0, target=12.0,
        beta=1.0, gamma=1.0, epsilon=0.25,
    )
    base_omega = np.full(HORIZON, 6.0)

    def experiment():
        base = solve_continuous(base_omega, 10.0, 1.0 / 6.0, problem)
        impacts = []
        for j in range(2, HORIZON, 3):
            perturbed = base_omega.copy()
            perturbed[j] = 9.0
            plan = solve_continuous(perturbed, 10.0, 1.0 / 6.0, problem)
            # impact of perturbing step j on the FIRST action
            impacts.append((j, abs(plan.actions[0] - base.actions[0])))
        return impacts

    impacts = run_once(benchmark, experiment)

    print(banner("Figure 6b — impact of perturbing ω̂_j on the first action"))
    print(
        format_series(
            "perturbed step j",
            [j for j, _ in impacts],
            {"|Δu₀|": [v for _, v in impacts]},
        )
    )

    # Temporal locality: far-future perturbations matter less than near ones.
    assert impacts[-1][1] <= impacts[0][1] + 1e-9
