"""Table 1: the qualitative summary of controllers.

The paper's Table 1 grades each controller on video quality, rebuffering
time, switching rate, and deployability.  This bench derives the first
three grades from measured behaviour (pooled over the three datasets) and
prints the regenerated table next to the paper's.
"""

from conftest import banner, run_once

from repro.analysis import format_table, run_suite, standard_controllers
from repro.qoe import summarize

PAPER_TABLE = {
    # controller: (quality, rebuffering, switching)
    "soda": ("high", "short", "ultra low"),
    "hyb": ("high", "medium", "high"),
    "bola": ("high", "short", "high"),
    "dynamic": ("high", "short", "medium"),
    "mpc": ("high", "long", "low"),
}


def grade(value, thresholds, labels):
    for threshold, label in zip(thresholds, labels):
        if value <= threshold:
            return label
    return labels[-1]


def test_table1_qualitative_summary(benchmark, datasets, profiles):
    def experiment():
        pooled = {}
        for name, traces in datasets.items():
            suite = run_suite(
                standard_controllers(), traces, profiles[name], name
            )
            for controller, metrics in suite.per_controller.items():
                pooled.setdefault(controller, []).extend(metrics)
        return {c: summarize(m) for c, m in pooled.items()}

    summaries = run_once(benchmark, experiment)

    switch_rates = {c: s.switching_rate.mean for c, s in summaries.items()}
    lowest_switch = min(switch_rates.values())

    rows = []
    for controller, s in summaries.items():
        quality = grade(-s.utility.mean, [-0.75], ["high", "medium"])
        rebuf = grade(
            s.rebuffer_ratio.mean, [0.006, 0.015], ["short", "medium", "long"]
        )
        if s.switching_rate.mean <= 1.5 * lowest_switch:
            switching = "ultra low"
        else:
            switching = grade(
                s.switching_rate.mean, [0.08, 0.15, 0.25],
                ["low", "medium", "high", "very high"],
            )
        rows.append(
            [
                controller,
                f"{quality} ({s.utility.mean:.2f})",
                f"{rebuf} ({s.rebuffer_ratio.mean:.4f})",
                f"{switching} ({s.switching_rate.mean:.3f})",
                " / ".join(PAPER_TABLE.get(controller, ("?",) * 3)),
            ]
        )

    print(banner("Table 1 — qualitative controller summary (measured)"))
    print(
        format_table(
            ["controller", "video quality", "rebuffering", "switching",
             "paper says (Q/R/S)"],
            rows,
        )
    )

    # SODA is the unique "ultra low" switching controller.
    soda_switch = switch_rates["soda"]
    assert soda_switch == lowest_switch
    # And its rebuffering is in the short band.
    assert summaries["soda"].rebuffer_ratio.mean < 0.012
