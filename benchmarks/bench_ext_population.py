"""Extension: population-simulator throughput at the million-session scale.

The fleet claim behind :mod:`repro.sim.population` is quantitative: one
million coarse-grained sessions — diurnal arrivals, flash crowds, a
correlated fault storm — must complete **in minutes** on one box, or the
"soak the sharded service against a production-sized population" story
does not hold.  This bench runs the full 1M-session configuration (table
backend, storms on) and gates

* total wall clock under ``REQUIRED_WALL_SECONDS``,
* finished-session throughput of at least ``REQUIRED_SESSIONS_PER_SEC``,
* the conservation invariant (arrivals = finished + shed + censored).

Each run appends an entry (mode ``population``) to the
``BENCH_population.json`` perf journal for CI trend tracking.  Run
``python benchmarks/bench_ext_population.py --sessions N`` standalone;
env knobs (``REPRO_BENCH_POP_*``) let CI shrink or grow the workload.

Reference on a dev box: 1M sessions / 2 simulated hours in ~54 s
(~18k finished sessions/s, ~2.3M decisions/s through
``DecisionTable.lookup_batch``).
"""

import json
import os
import sys
import time

try:
    import repro  # noqa: F401
except ImportError:  # script mode without PYTHONPATH=src
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
        ),
    )

from repro.sim.population import PopulationConfig, PopulationSim

SESSIONS = int(os.environ.get("REPRO_BENCH_POP_SESSIONS", "1000000"))
DURATION_HOURS = float(os.environ.get("REPRO_BENCH_POP_HOURS", "2.0"))
TICK_SECONDS = float(os.environ.get("REPRO_BENCH_POP_TICK", "4.0"))
SEED = int(os.environ.get("REPRO_BENCH_POP_SEED", "0"))
STORM_INTENSITY = float(os.environ.get("REPRO_BENCH_POP_STORMS", "1.0"))
TABLE_POINTS = int(os.environ.get("REPRO_BENCH_POP_TABLE_POINTS", "24"))

#: acceptance floors — ~9x headroom under the dev-box reference so slow
#: CI runners pass while a vectorization regression still fails loudly
REQUIRED_SESSIONS_PER_SEC = float(
    os.environ.get("REPRO_BENCH_POP_REQUIRED", "2000")
)
REQUIRED_WALL_SECONDS = float(
    os.environ.get("REPRO_BENCH_POP_WALL_BUDGET", "600")
)

JOURNAL = os.environ.get(
    "REPRO_BENCH_POP_JOURNAL", "BENCH_population.json"
)


def run_population_bench(sessions=SESSIONS):
    """One full population run; returns the perf-journal entry."""
    config = PopulationConfig(
        sessions=sessions,
        duration_hours=DURATION_HOURS,
        tick_seconds=TICK_SECONDS,
        seed=SEED,
        storm_intensity=STORM_INTENSITY,
        table_points=TABLE_POINTS,
    )
    sim = PopulationSim(config)
    started = time.perf_counter()
    report = sim.run()
    elapsed = time.perf_counter() - started
    fleet = report.fleet["fleet"]
    return {
        "mode": "population",
        "backend": report.backend,
        "sessions": sessions,
        "duration_hours": DURATION_HOURS,
        "tick_seconds": TICK_SECONDS,
        "storm_intensity": STORM_INTENSITY,
        "storm_events": len(sim.storms),
        "capacity": sim.capacity,
        "ticks": report.ticks,
        "arrivals": fleet["arrivals"],
        "finished": fleet["finished"],
        "shed": fleet["shed"],
        "censored": fleet["censored"],
        "decisions": report.decisions,
        "elapsed_seconds": round(elapsed, 2),
        "sessions_per_second": round(fleet["finished"] / elapsed, 1),
        "decisions_per_second": round(report.decisions / elapsed, 1),
        "slo_attainment": round(fleet["slo_attainment"], 6),
        "peak_concurrency_p95": report.concurrency["p95"],
    }


def _print_entry(entry):
    from conftest import banner

    print(banner("Population-simulator throughput"))
    print(f"{'sessions':>10} {'ticks':>7} {'finished':>10} {'wall s':>8} "
          f"{'sess/s':>9} {'dec/s':>11}")
    print(f"{entry['sessions']:>10} {entry['ticks']:>7} "
          f"{entry['finished']:>10} {entry['elapsed_seconds']:>8.1f} "
          f"{entry['sessions_per_second']:>9.0f} "
          f"{entry['decisions_per_second']:>11.0f}")
    print(f"storms={entry['storm_events']} shed={entry['shed']} "
          f"censored={entry['censored']} "
          f"slo_attainment={entry['slo_attainment']:.4f}")


def _assert_gates(entry):
    assert entry["arrivals"] == (
        entry["finished"] + entry["shed"] + entry["censored"]
    ), "session conservation violated"
    assert entry["elapsed_seconds"] <= REQUIRED_WALL_SECONDS, (
        f"{entry['sessions']:,} sessions took "
        f"{entry['elapsed_seconds']:.0f}s — over the "
        f"{REQUIRED_WALL_SECONDS:.0f}s budget; 'a million sessions in "
        f"minutes' no longer holds"
    )
    assert entry["sessions_per_second"] >= REQUIRED_SESSIONS_PER_SEC, (
        f"population throughput below "
        f"{REQUIRED_SESSIONS_PER_SEC:,.0f} finished sessions/sec: "
        f"{entry['sessions_per_second']:,.0f}/s"
    )


def test_population_million_session_floor(benchmark):
    from conftest import run_once
    from repro.cli import _append_perf_entry

    entry = run_once(benchmark, run_population_bench)
    _print_entry(entry)
    _append_perf_entry(JOURNAL, entry)
    print(f"appended run to {JOURNAL}")
    _assert_gates(entry)


def main(argv=None):
    import argparse

    from repro.cli import _append_perf_entry

    parser = argparse.ArgumentParser(
        description="Population-simulator million-session bench"
    )
    parser.add_argument("--sessions", type=int, default=SESSIONS)
    parser.add_argument(
        "--out", default=None,
        help="perf journal to append to (e.g. BENCH_population.json)",
    )
    args = parser.parse_args(argv)
    entry = run_population_bench(sessions=args.sessions)
    _print_entry(entry)
    if args.out:
        _append_perf_entry(args.out, entry)
        print(f"appended run to {args.out}")
    _assert_gates(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
