"""Extension: fast-path solver throughput vs the recursive reference.

The ROADMAP's scale target needs per-decision solve cost off the critical
path.  This bench times ``solve_monotonic`` / ``solve_brute_force`` against
their vectorized fast-path counterparts on the standard |R|=8 ladder with
the paper's K=5 horizon, verifies the two backends commit *identical*
decisions on every timed case, and writes a JSON artifact
(``solver_perf.json``) with decisions/sec and speedups for CI trend
tracking.  The fast monotonic path must clear 2x; in practice it lands
well above that, and the plan cache pushes end-to-end sessions further.
"""

import json
import os
import random
import time

import numpy as np
from conftest import banner, run_once

from repro.core.fastpath import solve_brute_force_fast, solve_monotonic_fast
from repro.core.objective import SodaConfig
from repro.core.solver import solve_brute_force, solve_monotonic
from repro.sim.video import youtube_4k_ladder

#: decision situations per timed backend
CASES = int(os.environ.get("REPRO_BENCH_SOLVER_CASES", "600"))
MAX_BUFFER = 25.0
ARTIFACT = os.environ.get("REPRO_BENCH_ARTIFACT", "solver_perf.json")
#: acceptance floor for the monotonic fast path
REQUIRED_SPEEDUP = 2.0


def _situations(ladder, seed=11):
    rng = random.Random(seed)
    cases = []
    for _ in range(CASES):
        tput = float(rng.uniform(0.2, 30.0))
        buf = rng.uniform(0.0, MAX_BUFFER)
        prev = rng.choice([None] + list(range(ladder.levels)))
        cases.append((np.full(5, tput), buf, prev))
    return cases


def _time_backend(solver, cases, ladder, cfg):
    decisions = []
    start = time.perf_counter()
    for omega, buf, prev in cases:
        plan = solver(omega, buf, prev, ladder, cfg, MAX_BUFFER)
        decisions.append(plan.quality)
    elapsed = time.perf_counter() - start
    return decisions, len(cases) / elapsed


def test_solver_fast_path_speedup(benchmark):
    ladder = youtube_4k_ladder()
    assert ladder.levels >= 6
    cases = _situations(ladder)
    mono_cfg = SodaConfig(horizon=5)
    brute_cfg = SodaConfig(horizon=5, use_brute_force=True)

    def experiment():
        # warm the candidate-bundle caches so steady-state cost is measured
        for omega, buf, prev in cases[:10]:
            solve_monotonic_fast(omega, buf, prev, ladder, mono_cfg, MAX_BUFFER)
            solve_brute_force_fast(omega, buf, prev, ladder, brute_cfg, MAX_BUFFER)
        out = {}
        for name, ref, fast, cfg in (
            ("monotonic", solve_monotonic, solve_monotonic_fast, mono_cfg),
            ("brute_force", solve_brute_force, solve_brute_force_fast, brute_cfg),
        ):
            ref_decisions, ref_rate = _time_backend(ref, cases, ladder, cfg)
            fast_decisions, fast_rate = _time_backend(fast, cases, ladder, cfg)
            out[name] = {
                "reference_decisions_per_sec": round(ref_rate, 1),
                "fast_decisions_per_sec": round(fast_rate, 1),
                "speedup": round(fast_rate / ref_rate, 2),
                "identical_decisions": ref_decisions == fast_decisions,
                "cases": len(cases),
            }
        return out

    results = run_once(benchmark, experiment)

    print(banner("Solver throughput: reference recursion vs fast path"))
    print(f"{'solver':<12} {'reference/s':>12} {'fast/s':>12} {'speedup':>8}")
    for name, row in results.items():
        print(
            f"{name:<12} {row['reference_decisions_per_sec']:>12.0f} "
            f"{row['fast_decisions_per_sec']:>12.0f} "
            f"{row['speedup']:>7.2f}x"
        )

    artifact = {
        "ladder": ladder.name,
        "levels": ladder.levels,
        "horizon": 5,
        "results": results,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {ARTIFACT}")

    for name, row in results.items():
        assert row["identical_decisions"], (
            f"{name}: fast path committed different decisions"
        )
    assert results["monotonic"]["speedup"] >= REQUIRED_SPEEDUP, (
        f"monotonic fast path below {REQUIRED_SPEEDUP}x: "
        f"{results['monotonic']['speedup']}x"
    )
