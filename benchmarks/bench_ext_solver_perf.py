"""Extension: fast-path solver throughput vs the recursive reference.

The ROADMAP's scale target needs per-decision solve cost off the critical
path.  This bench times ``solve_monotonic`` / ``solve_brute_force`` against
their vectorized fast-path counterparts on the standard |R|=8 ladder with
the paper's K=5 horizon, verifies the two backends commit *identical*
decisions on every timed case, and writes a JSON artifact
(``solver_perf.json``) with decisions/sec and speedups for CI trend
tracking.  The fast monotonic path must clear 2x; in practice it lands
well above that, and the plan cache pushes end-to-end sessions further.

The *amortized* mode (``test_amortized_batch_cost``) measures the
cross-session batched kernel instead: per-decision cost of
``solve_sessions_batch`` at batch sizes 1/8/32/128 over one shared
bundle, gated at a ≥3x amortized speedup at batch 32 vs batch 1 with the
batch-32 p99 wall time under the serving deadline; the curve is appended
to the root-level ``BENCH_service.json`` perf journal (mode
``amortized``).
"""

import json
import os
import random
import time

import numpy as np
from conftest import banner, run_once

from repro.core.fastpath import (
    SessionSolveRequest,
    solve_brute_force_fast,
    solve_monotonic_fast,
    solve_sessions_batch,
)
from repro.core.objective import SodaConfig
from repro.core.solver import solve_brute_force, solve_monotonic
from repro.sim.video import youtube_4k_ladder

#: decision situations per timed backend
CASES = int(os.environ.get("REPRO_BENCH_SOLVER_CASES", "600"))
MAX_BUFFER = 25.0
ARTIFACT = os.environ.get("REPRO_BENCH_ARTIFACT", "solver_perf.json")
JOURNAL = os.environ.get("REPRO_BENCH_SERVICE_JOURNAL", "BENCH_service.json")
#: acceptance floor for the monotonic fast path
REQUIRED_SPEEDUP = 2.0
#: acceptance floor for batch-32 amortization over batch-1
REQUIRED_AMORTIZED_SPEEDUP = 3.0
#: serving deadline the batch-32 p99 must stay under, seconds
SERVING_DEADLINE = 0.05
BATCH_SIZES = (1, 8, 32, 128)


def _situations(ladder, seed=11):
    rng = random.Random(seed)
    cases = []
    for _ in range(CASES):
        tput = float(rng.uniform(0.2, 30.0))
        buf = rng.uniform(0.0, MAX_BUFFER)
        prev = rng.choice([None] + list(range(ladder.levels)))
        cases.append((np.full(5, tput), buf, prev))
    return cases


def _time_backend(solver, cases, ladder, cfg):
    decisions = []
    start = time.perf_counter()
    for omega, buf, prev in cases:
        plan = solver(omega, buf, prev, ladder, cfg, MAX_BUFFER)
        decisions.append(plan.quality)
    elapsed = time.perf_counter() - start
    return decisions, len(cases) / elapsed


def test_solver_fast_path_speedup(benchmark):
    ladder = youtube_4k_ladder()
    assert ladder.levels >= 6
    cases = _situations(ladder)
    mono_cfg = SodaConfig(horizon=5)
    brute_cfg = SodaConfig(horizon=5, use_brute_force=True)

    def experiment():
        # warm the candidate-bundle caches so steady-state cost is measured
        for omega, buf, prev in cases[:10]:
            solve_monotonic_fast(omega, buf, prev, ladder, mono_cfg, MAX_BUFFER)
            solve_brute_force_fast(omega, buf, prev, ladder, brute_cfg, MAX_BUFFER)
        out = {}
        for name, ref, fast, cfg in (
            ("monotonic", solve_monotonic, solve_monotonic_fast, mono_cfg),
            ("brute_force", solve_brute_force, solve_brute_force_fast, brute_cfg),
        ):
            ref_decisions, ref_rate = _time_backend(ref, cases, ladder, cfg)
            fast_decisions, fast_rate = _time_backend(fast, cases, ladder, cfg)
            out[name] = {
                "reference_decisions_per_sec": round(ref_rate, 1),
                "fast_decisions_per_sec": round(fast_rate, 1),
                "speedup": round(fast_rate / ref_rate, 2),
                "identical_decisions": ref_decisions == fast_decisions,
                "cases": len(cases),
            }
        return out

    results = run_once(benchmark, experiment)

    print(banner("Solver throughput: reference recursion vs fast path"))
    print(f"{'solver':<12} {'reference/s':>12} {'fast/s':>12} {'speedup':>8}")
    for name, row in results.items():
        print(
            f"{name:<12} {row['reference_decisions_per_sec']:>12.0f} "
            f"{row['fast_decisions_per_sec']:>12.0f} "
            f"{row['speedup']:>7.2f}x"
        )

    artifact = {
        "ladder": ladder.name,
        "levels": ladder.levels,
        "horizon": 5,
        "results": results,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {ARTIFACT}")

    for name, row in results.items():
        assert row["identical_decisions"], (
            f"{name}: fast path committed different decisions"
        )
    assert results["monotonic"]["speedup"] >= REQUIRED_SPEEDUP, (
        f"monotonic fast path below {REQUIRED_SPEEDUP}x: "
        f"{results['monotonic']['speedup']}x"
    )


# ----------------------------------------------------------------------
def _session_population(ladder, cfg, size, seed=23):
    """``size`` live states sharing one bundle (the service's hot case)."""
    rng = random.Random(seed)
    return [
        SessionSolveRequest(
            omega=float(rng.uniform(0.2, 30.0)),
            buffer_level=rng.uniform(0.0, MAX_BUFFER),
            prev_quality=3,
            ladder=ladder,
            cfg=cfg,
            max_buffer=MAX_BUFFER,
        )
        for _ in range(size)
    ]


def test_amortized_batch_cost(benchmark):
    """Amortized mode: per-decision cost of the batched kernel vs size."""
    ladder = youtube_4k_ladder()
    cfg = SodaConfig(horizon=5)

    def experiment():
        # warm the bundle cache so the fixed per-call overhead measured
        # is dispatch + array assembly, not one-off candidate enumeration
        solve_sessions_batch(_session_population(ladder, cfg, 1))

        # equivalence smoke: the timed kernel is the proven-identical one
        check = _session_population(ladder, cfg, 64, seed=5)
        for req, plan in zip(check, solve_sessions_batch(check)):
            single = solve_monotonic_fast(
                req.omega, req.buffer_level, req.prev_quality, ladder,
                cfg, MAX_BUFFER,
            )
            assert plan.quality == single.quality
            assert plan.objective == single.objective

        populations = {
            size: _session_population(ladder, cfg, size)
            for size in BATCH_SIZES
        }
        # Per-size timing, two estimators:
        #  - amortized cost: min over interleaved trials of the trial's
        #    mean call time.  The min estimates intrinsic cost — a
        #    scheduler preemption or GC pause can only inflate a trial,
        #    never deflate it — and interleaving the sizes means slow
        #    machine-wide drift hits every size equally instead of
        #    skewing the ratio the gate is built on.
        #  - p99: over individual call times, for the deadline check.
        trials, samples = 30, {size: [] for size in BATCH_SIZES}
        calls = {size: [] for size in BATCH_SIZES}
        for _ in range(trials):
            for size, population in populations.items():
                repeats = max(4, 400 // size)
                start = time.perf_counter()
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    solve_sessions_batch(population)
                    calls[size].append(time.perf_counter() - t0)
                samples[size].append(
                    (time.perf_counter() - start) / repeats
                )
        out = {}
        for size in BATCH_SIZES:
            per_call = calls[size]
            per_call.sort()
            p99 = per_call[min(len(per_call) - 1, int(0.99 * len(per_call)))]
            out[size] = {
                "per_decision_us": 1e6 * min(samples[size]) / size,
                "batch_p99_ms": 1e3 * p99,
                "calls": len(per_call),
            }
        return out

    results = run_once(benchmark, experiment)

    print(banner("Amortized per-decision cost vs batch size"))
    print(f"{'batch':>6} {'us/decision':>12} {'batch p99':>10} {'speedup':>8}")
    base = results[1]["per_decision_us"]
    for size in BATCH_SIZES:
        row = results[size]
        print(
            f"{size:>6} {row['per_decision_us']:>12.2f} "
            f"{row['batch_p99_ms']:>8.3f}ms "
            f"{base / row['per_decision_us']:>7.2f}x"
        )

    from repro.cli import _append_perf_entry

    speedup_at_32 = base / results[32]["per_decision_us"]
    _append_perf_entry(JOURNAL, {
        "mode": "amortized",
        "ladder": ladder.name,
        "horizon": 5,
        "batch_sizes": list(BATCH_SIZES),
        "per_decision_us": {
            str(size): round(results[size]["per_decision_us"], 3)
            for size in BATCH_SIZES
        },
        "batch_p99_ms": {
            str(size): round(results[size]["batch_p99_ms"], 4)
            for size in BATCH_SIZES
        },
        "speedup_at_32": round(speedup_at_32, 2),
    })
    print(f"appended amortized curve to {JOURNAL}")

    assert speedup_at_32 >= REQUIRED_AMORTIZED_SPEEDUP, (
        f"batch-32 amortization below {REQUIRED_AMORTIZED_SPEEDUP}x: "
        f"{speedup_at_32:.2f}x"
    )
    assert results[32]["batch_p99_ms"] <= SERVING_DEADLINE * 1e3, (
        f"batch-32 p99 {results[32]['batch_p99_ms']:.3f} ms exceeds the "
        f"{SERVING_DEADLINE * 1e3:.0f} ms serving deadline"
    )
