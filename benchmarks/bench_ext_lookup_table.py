"""Extension: the FastMPC-style lookup table vs Algorithm 1 (§5.3).

The paper rejects offline lookup tables as "neither flexible nor scalable"
(§5.3).  This bench measures the trade-off: build time and memory of a
:class:`repro.core.lookup.DecisionTable` at several grid resolutions, the
fraction of off-grid situations where the table's nearest-neighbour answer
diverges from an on-the-fly Algorithm 1 solve, and the per-decision runtime
of both approaches.
"""

import time

import numpy as np
from conftest import banner, run_once

from repro.analysis import format_table
from repro.core import DecisionTable, SodaController
from repro.sim.video import youtube_hd_ladder

RESOLUTIONS = [12, 24, 48]
MAX_BUFFER = 20.0


def test_ext_lookup_table_tradeoff(benchmark):
    ladder = youtube_hd_ladder()

    def experiment():
        rows = []
        for points in RESOLUTIONS:
            table = DecisionTable(
                ladder, MAX_BUFFER,
                throughput_points=points, buffer_points=points,
            )
            agreement = table.agreement_with_solver(samples=600, seed=3)
            rows.append((points, table.stats, agreement, table))
        return rows

    rows = run_once(benchmark, experiment)

    # Per-decision latency: table lookup vs on-the-fly solve.
    table = rows[-1][3]
    controller = SodaController()
    rng = np.random.default_rng(0)
    situations = [
        (float(rng.uniform(0.5, 40.0)), float(rng.uniform(0.0, MAX_BUFFER)),
         int(rng.integers(0, ladder.levels)))
        for _ in range(500)
    ]
    t0 = time.perf_counter()
    for tput, buf, prev in situations:
        table.lookup(tput, buf, prev)
    lookup_us = (time.perf_counter() - t0) / len(situations) * 1e6
    t0 = time.perf_counter()
    for tput, buf, prev in situations:
        controller.decide(tput, buf, prev, ladder, MAX_BUFFER)
    solve_us = (time.perf_counter() - t0) / len(situations) * 1e6

    print(banner("§5.3 extension — lookup table vs Algorithm 1"))
    print(
        format_table(
            ["grid", "cells", "build time", "memory", "off-grid agreement"],
            [
                [
                    f"{points}×{points}",
                    stats.cells,
                    f"{stats.build_seconds:.2f}s",
                    f"{stats.memory_bytes / 1024:.1f} KiB",
                    f"{agreement:.1%}",
                ]
                for points, stats, agreement, _ in rows
            ],
        )
    )
    print(f"\nper-decision runtime: lookup {lookup_us:.0f}µs "
          f"vs on-the-fly solve {solve_us:.0f}µs")
    print(
        "The table must be rebuilt for every (ladder, buffer-cap, segment-"
        "length) combination; Algorithm 1 needs none of that — the paper's "
        "deployability argument."
    )

    # Agreement improves with resolution but stays below perfect off-grid.
    agreements = [a for _, _, a, _ in rows]
    assert agreements[-1] >= agreements[0] - 0.02
    assert agreements[-1] > 0.7
    # Build cost grows quadratically with resolution.
    assert rows[-1][1].build_seconds > rows[0][1].build_seconds
