"""Tests for the SODA controller itself."""

import pytest

from repro.abr import PlayerObservation
from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.prediction import (
    MovingAveragePredictor,
    OraclePredictor,
    ThroughputSample,
)
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.session import run_session
from repro.sim.video import BitrateLadder, youtube_4k_ladder


def make_obs(ladder, buffer_level, prev=1, throughput=4.0, max_buffer=20.0):
    history = ()
    if throughput is not None:
        history = (
            ThroughputSample(0.0, 1.0, throughput, throughput),
        )
    return PlayerObservation(
        wall_time=10.0,
        segment_index=5,
        buffer_level=buffer_level,
        max_buffer=max_buffer,
        previous_quality=prev,
        ladder=ladder,
        history=history,
        playing=True,
    )


def primed(config=None, throughput=4.0):
    c = SodaController(MovingAveragePredictor(), config)
    c.reset()
    c.on_download(ThroughputSample(0.0, 1.0, throughput, throughput))
    return c


class TestDecisions:
    def test_returns_valid_rung(self, ladder):
        c = primed()
        q = c.select_quality(make_obs(ladder, 10.0))
        assert q is None or 0 <= q < ladder.levels

    def test_low_throughput_picks_lowest(self, ladder):
        c = primed(throughput=0.3)
        assert c.select_quality(make_obs(ladder, 1.0, prev=2, throughput=0.3)) == 0

    def test_high_throughput_high_buffer_picks_high(self, ladder):
        c = primed(throughput=12.0)
        q = c.select_quality(make_obs(ladder, 15.0, prev=2, throughput=12.0))
        assert q == 2

    def test_defers_on_extreme_overflow(self, ladder):
        # Enormous throughput at a nearly full buffer: every rung overflows
        # the model and the buffer sits above target -> wait.
        c = primed(throughput=500.0)
        q = c.select_quality(make_obs(ladder, 18.0, prev=2, throughput=500.0))
        assert q is None

    def test_no_deadlock_below_target(self, ladder):
        # Same overflow situation but with a low buffer: must download.
        c = primed(throughput=500.0)
        q = c.select_quality(make_obs(ladder, 2.0, prev=2, throughput=500.0))
        assert q is not None

    def test_cold_start_without_history(self, ladder):
        c = SodaController(MovingAveragePredictor())
        c.reset()
        obs = make_obs(ladder, 0.0, prev=None, throughput=None)
        q = c.select_quality(obs)
        assert q is not None and 0 <= q < ladder.levels

    def test_last_plan_recorded(self, ladder):
        c = primed()
        c.select_quality(make_obs(ladder, 10.0))
        assert c.last_plan is not None

    def test_smoothness_deferral_instead_of_upswitch(self, ladder):
        """Above target, a cap-forced up-switch becomes a wait."""
        cfg = SodaConfig(target_buffer=10.0)
        c = primed(cfg, throughput=12.0)
        # Holding rung 0 (1 Mb/s) at omega 12 would overflow: 18+24-2 > 20.
        q = c.select_quality(make_obs(ladder, 18.0, prev=0, throughput=12.0))
        assert q is None


class TestDecide:
    def test_grid_decision(self, ladder):
        c = SodaController()
        q = c.decide(4.0, 10.0, 1, ladder, max_buffer=20.0)
        assert q is None or 0 <= q < ladder.levels

    def test_brute_force_config(self, ladder):
        cfg = SodaConfig(horizon=3, use_brute_force=True)
        c = SodaController(config=cfg)
        q = c.decide(4.0, 10.0, 1, ladder, max_buffer=20.0)
        assert q is None or 0 <= q < ladder.levels

    def test_decision_increases_with_throughput(self, ladder):
        c = SodaController()
        qs = []
        for omega in (0.8, 3.0, 10.0):
            q = c.decide(omega, 12.0, 1, ladder, max_buffer=20.0)
            if q is not None:
                qs.append(q)
        assert qs == sorted(qs)


class TestFullSessions:
    def test_steady_session(self, ladder, steady_trace, short_config):
        result = run_session(SodaController(), steady_trace, ladder, short_config)
        assert result.num_segments == 30
        assert result.rebuffer_time == pytest.approx(0.0, abs=0.5)

    def test_step_session(self, ladder, step_trace, short_config):
        result = run_session(SodaController(), step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_oracle_predictor_wiring(self, ladder, step_trace, short_config):
        c = SodaController(predictor=OraclePredictor())
        result = run_session(c, step_trace, ladder, short_config)
        assert c.predictor.trace is step_trace
        assert result.num_segments == 30

    def test_4k_ladder_live(self, fourk_ladder, short_config):
        trace = ThroughputTrace.constant(40.0, 600.0)
        result = run_session(SodaController(), trace, fourk_ladder, short_config)
        assert result.num_segments == 30

    def test_smoother_than_alternation(self, fourk_ladder, short_config):
        """On a mildly wobbly link SODA should barely switch."""
        durations = [10.0] * 12
        bandwidths = [30.0, 40.0] * 6
        trace = ThroughputTrace(durations, bandwidths)
        result = run_session(SodaController(), trace, fourk_ladder, short_config)
        assert result.switch_count <= 6

    def test_single_rung_ladder(self, short_config):
        one = BitrateLadder([2.0], segment_duration=2.0)
        trace = ThroughputTrace.constant(5.0, 600.0)
        result = run_session(SodaController(), trace, one, short_config)
        assert result.qualities == [0] * 30

    def test_tiny_buffer_cap(self, ladder):
        cfg = PlayerConfig(max_buffer=3.0, num_segments=20, startup_threshold=2.0)
        trace = ThroughputTrace.constant(8.0, 600.0)
        result = run_session(SodaController(), trace, ladder, cfg)
        assert result.num_segments == 20

    def test_outage_recovery(self, ladder):
        trace = ThroughputTrace([40.0, 15.0, 60.0], [8.0, 0.4, 8.0])
        cfg = PlayerConfig(max_buffer=20.0, num_segments=50)
        result = run_session(SodaController(), trace, ladder, cfg)
        # After the outage the controller climbs back up.
        assert max(result.qualities[-5:]) == 2


class TestConfigInteraction:
    def test_horizon_one(self, ladder, step_trace, short_config):
        c = SodaController(config=SodaConfig(horizon=1))
        result = run_session(c, step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_brute_force_session(self, ladder, step_trace, short_config):
        c = SodaController(config=SodaConfig(horizon=3, use_brute_force=True))
        result = run_session(c, step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_cap_heuristic_on(self, ladder, step_trace, short_config):
        c = SodaController(config=SodaConfig(cap_one_rung_above=True))
        result = run_session(c, step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_gamma_zero_switches_more(self, fourk_ladder, short_config):
        wobble = ThroughputTrace([6.0] * 20, [20.0, 45.0] * 10)
        smooth_cfg = SodaConfig(gamma=400.0, switch_event_cost=0.2)
        loose_cfg = SodaConfig(gamma=0.0, switch_event_cost=0.0)
        smooth = run_session(
            SodaController(config=smooth_cfg), wobble, fourk_ladder, short_config
        )
        loose = run_session(
            SodaController(config=loose_cfg), wobble, fourk_ladder, short_config
        )
        assert smooth.switch_count <= loose.switch_count
