"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["compare", "--dataset", "puffer"],
            ["session", "soda", "--scenario", "spike"],
            ["trace", "--dataset", "4g"],
            ["decide", "--throughput", "5", "--buffer", "10"],
            ["tune", "--dataset", "puffer"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestCommands:
    def test_decide(self, capsys):
        assert main(["decide", "--throughput", "30", "--buffer", "10",
                     "--prev", "2"]) == 0
        out = capsys.readouterr().out
        assert "decision:" in out
        assert "planned sequence" in out

    def test_decide_defer_region(self, capsys):
        assert main(["decide", "--throughput", "500", "--buffer", "19"]) == 0
        assert "defer" in capsys.readouterr().out

    def test_session_scenario(self, capsys):
        assert main(["session", "bola", "--scenario", "step-up",
                     "--duration", "120"]) == 0
        out = capsys.readouterr().out
        assert "qoe=" in out

    def test_session_timeline(self, capsys):
        assert main(["session", "soda", "--scenario", "spike",
                     "--duration", "120", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "download" in out

    def test_trace_generate_and_summarize(self, tmp_path, capsys):
        out_csv = tmp_path / "trace.csv"
        assert main(["trace", "--dataset", "5g", "--duration", "60",
                     "--out", str(out_csv)]) == 0
        assert out_csv.exists()
        assert main(["trace", "--summarize", str(out_csv)]) == 0
        out = capsys.readouterr().out
        assert "mean=" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--dataset", "4g", "--sessions", "1",
                     "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "soda" in out and "dynamic" in out

    def test_tune_small(self, capsys):
        assert main(["tune", "--dataset", "puffer", "--sessions", "1",
                     "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
