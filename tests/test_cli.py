"""Tests for the command-line interface."""

import json

import pytest

import repro.cli as cli
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["compare", "--dataset", "puffer"],
            ["session", "soda", "--scenario", "spike"],
            ["trace", "--dataset", "4g"],
            ["decide", "--throughput", "5", "--buffer", "10"],
            ["tune", "--dataset", "puffer"],
            ["robustness", "--dataset", "4g", "--resilient"],
            ["robustness", "--dataset", "4g", "--strict-audit"],
            ["compare", "--dataset", "puffer", "--strict-audit"],
            ["serve", "--sessions", "10", "--deadline", "0.05"],
            ["soak", "--intensity", "0.4", "--crash-rate", "0.05"],
            ["soak", "--shards", "2", "--kill-at", "40"],
            ["serve", "--out", "BENCH_service.json"],
            ["table", "build", "out.sodatbl", "--table-points", "24"],
            ["table", "inspect", "out.sodatbl"],
            ["population", "--sessions", "1000"],
            ["population", "--checkpoint", "pop.npz", "--resume"],
            ["population", "--serve", "--shards", "2", "--kill-at", "50"],
            ["population", "--backend", "solver", "--storm-intensity", "2"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_serve_and_soak_chaos_flag(self):
        assert build_parser().parse_args(["serve"]).chaos is False
        assert build_parser().parse_args(["soak"]).chaos is True


class TestCommands:
    def test_decide(self, capsys):
        assert main(["decide", "--throughput", "30", "--buffer", "10",
                     "--prev", "2"]) == 0
        out = capsys.readouterr().out
        assert "decision:" in out
        assert "planned sequence" in out

    def test_decide_defer_region(self, capsys):
        assert main(["decide", "--throughput", "500", "--buffer", "19"]) == 0
        assert "defer" in capsys.readouterr().out

    def test_session_scenario(self, capsys):
        assert main(["session", "bola", "--scenario", "step-up",
                     "--duration", "120"]) == 0
        out = capsys.readouterr().out
        assert "qoe=" in out

    def test_session_timeline(self, capsys):
        assert main(["session", "soda", "--scenario", "spike",
                     "--duration", "120", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "download" in out

    def test_trace_generate_and_summarize(self, tmp_path, capsys):
        out_csv = tmp_path / "trace.csv"
        assert main(["trace", "--dataset", "5g", "--duration", "60",
                     "--out", str(out_csv)]) == 0
        assert out_csv.exists()
        assert main(["trace", "--summarize", str(out_csv)]) == 0
        out = capsys.readouterr().out
        assert "mean=" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--dataset", "4g", "--sessions", "1",
                     "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "soda" in out and "dynamic" in out

    def test_tune_small(self, capsys):
        assert main(["tune", "--dataset", "puffer", "--sessions", "1",
                     "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_robustness_small(self, capsys):
        assert main(["robustness", "--dataset", "4g", "--sessions", "1",
                     "--duration", "60", "--intensities", "0,0.3"]) == 0
        out = capsys.readouterr().out
        assert "qoe@0.30" in out
        assert "soda" in out

    def test_serve_small(self, capsys, tmp_path):
        health = tmp_path / "health.json"
        assert main(["serve", "--sessions", "8", "--segments", "5",
                     "--threads", "4", "--table-points", "0",
                     "--max-in-flight", "8", "--max-sessions", "16",
                     "--health-json", str(health)]) == 0
        out = capsys.readouterr().out
        assert "=== serve:" in out
        assert "all serving invariants held" in out
        payload = json.loads(health.read_text())
        assert payload["live"] is True
        assert payload["stats"]["decisions"] == 40

    def test_soak_small(self, capsys, tmp_path):
        health = tmp_path / "health.json"
        assert main(["soak", "--sessions", "30", "--segments", "10",
                     "--threads", "6", "--seed", "3", "--table-points", "8",
                     "--max-in-flight", "2", "--max-sessions", "16",
                     "--burst-at", "10",
                     "--health-json", str(health)]) == 0
        out = capsys.readouterr().out
        assert "=== soak:" in out
        assert "breaker:" in out
        payload = json.loads(health.read_text())
        assert payload["breaker_full_cycles"] >= 1
        assert payload["stats"]["tier2_decisions"] > 0

    def test_sharded_soak_kills_and_rehomes(self, capsys, tmp_path):
        health = tmp_path / "fleet.json"
        perf = tmp_path / "bench.json"
        assert main(["soak", "--shards", "2", "--sessions", "12",
                     "--segments", "8", "--threads", "4", "--seed", "7",
                     "--table-points", "8", "--deadline", "0.25",
                     "--health-json", str(health),
                     "--out", str(perf)]) == 0
        out = capsys.readouterr().out
        assert "=== soak:" in out
        assert "fleet: shards=2" in out
        assert "all serving invariants held" in out
        fleet = json.loads(health.read_text())
        assert fleet["shards"] == 2
        assert fleet["worker_deaths"] >= 1
        assert fleet["worker_restarts"] >= 1
        assert fleet["sessions_rehomed"] >= 1
        assert "evictions" in fleet["rollup"]
        runs = json.loads(perf.read_text())["runs"]
        assert len(runs) == 1
        assert runs[0]["mode"] == "soak"
        assert runs[0]["shards"] == 2
        assert runs[0]["violations"] == 0
        assert "timestamp" in runs[0]

    def test_out_appends_to_existing_journal(self, capsys, tmp_path):
        perf = tmp_path / "bench.json"
        argv = ["serve", "--sessions", "4", "--segments", "3",
                "--threads", "2", "--table-points", "0",
                "--out", str(perf)]
        assert main(argv) == 0
        assert main(argv) == 0
        runs = json.loads(perf.read_text())["runs"]
        assert len(runs) == 2
        assert all(run["mode"] == "serve" for run in runs)

    def test_out_tolerates_non_journal_file(self, capsys, tmp_path):
        # A malformed journal must not cost the run that just finished:
        # warn, start a fresh one, and still record the new entry.
        perf = tmp_path / "bench.json"
        perf.write_text("this is not json\n")
        assert main(["serve", "--sessions", "4", "--segments", "3",
                     "--threads", "2", "--table-points", "0",
                     "--out", str(perf)]) == 0
        captured = capsys.readouterr()
        assert "not a perf journal" in captured.err
        runs = json.loads(perf.read_text())["runs"]
        assert len(runs) == 1
        assert runs[0]["mode"] == "serve"

    def test_out_skips_malformed_entries_keeps_good_ones(
        self, capsys, tmp_path
    ):
        perf = tmp_path / "bench.json"
        perf.write_text(json.dumps(
            {"runs": [{"mode": "old", "ok": True}, "garbage", 7]}
        ))
        assert main(["serve", "--sessions", "4", "--segments", "3",
                     "--threads", "2", "--table-points", "0",
                     "--out", str(perf)]) == 0
        captured = capsys.readouterr()
        assert "skipping malformed entry" in captured.err
        runs = json.loads(perf.read_text())["runs"]
        assert [run.get("mode") for run in runs] == ["old", "serve"]


class TestTableCommand:
    def test_build_then_inspect(self, capsys, tmp_path):
        path = tmp_path / "table.sodatbl"
        assert main(["table", "build", str(path),
                     "--table-points", "6"]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out
        assert main(["table", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid decision table" in out
        assert "6 throughput x 6 buffer points" in out
        assert "table version: 1" in out
        assert "crc32" in out

    def test_build_stamps_requested_version(self, capsys, tmp_path):
        path = tmp_path / "table.sodatbl"
        assert main(["table", "build", str(path), "--table-points", "6",
                     "--table-version", "7"]) == 0
        assert "v7" in capsys.readouterr().out
        assert main(["table", "inspect", str(path)]) == 0
        assert "table version: 7" in capsys.readouterr().out

    def test_inspect_missing_file_exits_2(self, capsys):
        assert main(["table", "inspect", "/no/such/table.sodatbl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert err.count("\n") == 1

    def test_inspect_corrupt_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "table.sodatbl"
        assert main(["table", "build", str(path),
                     "--table-points", "6"]) == 0
        capsys.readouterr()
        blob = path.read_bytes()
        path.write_bytes(blob[:-9])  # truncate inside the decision array
        assert main(["table", "inspect", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "truncated" in err
        assert err.count("\n") == 1

    def test_build_validation(self, capsys):
        assert main(["table", "build", "/tmp/t.sodatbl",
                     "--table-points", "1"]) == 2
        assert "--table-points" in capsys.readouterr().err


class TestPopulationCommand:
    def test_tiny_run_with_report_and_perf_entry(self, capsys, tmp_path):
        report = tmp_path / "fleet.json"
        out = tmp_path / "BENCH_population.json"
        assert main([
            "population", "--sessions", "400", "--duration-hours", "0.05",
            "--tick", "4", "--table-points", "8", "--quiet",
            "--report", str(report), "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "rebuffer-SLO" in text
        fleet = json.loads(report.read_text())["fleet"]["fleet"]
        assert fleet["arrivals"] == (
            fleet["finished"] + fleet["shed"] + fleet["censored"]
        )
        runs = json.loads(out.read_text())["runs"]
        assert runs[-1]["mode"] == "population"
        assert runs[-1]["decisions"] > 0

    def test_serve_excludes_checkpoints(self, capsys):
        assert main(["population", "--serve",
                     "--checkpoint", "pop.npz"]) == 2
        assert "deterministic" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["population", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err


class _StubSuite:
    """Minimal stand-in for a SuiteResult in strict-audit tests."""

    def __init__(self, flagged_count):
        self.flagged_count = flagged_count
        self.failure_count = 0

    def summaries(self):
        return []

    def failure_lines(self):
        return []


class TestStrictAudit:
    def _patch_suite(self, monkeypatch, flagged_count):
        monkeypatch.setattr(
            cli, "run_suite",
            lambda *a, **k: _StubSuite(flagged_count),
        )

    def test_compare_flagged_sessions_exit_2(self, monkeypatch, capsys):
        self._patch_suite(monkeypatch, flagged_count=3)
        assert main(["compare", "--dataset", "4g", "--sessions", "1",
                     "--duration", "30", "--strict-audit"]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err
        assert "--strict-audit" in err and "3 session(s)" in err

    def test_compare_flagged_without_flag_exit_0(self, monkeypatch, capsys):
        self._patch_suite(monkeypatch, flagged_count=3)
        assert main(["compare", "--dataset", "4g", "--sessions", "1",
                     "--duration", "30"]) == 0

    def test_compare_clean_with_flag_exit_0(self, monkeypatch, capsys):
        self._patch_suite(monkeypatch, flagged_count=0)
        assert main(["compare", "--dataset", "4g", "--sessions", "1",
                     "--duration", "30", "--strict-audit"]) == 0

    def test_robustness_strict_audit_end_to_end(self, capsys):
        # A clean sweep has nothing flagged: strict audit must not trip.
        assert main(["robustness", "--dataset", "4g", "--sessions", "1",
                     "--duration", "60", "--intensities", "0",
                     "--strict-audit"]) == 0


class TestErrorHandling:
    """Operational errors exit with code 2 and a one-line message."""

    def test_missing_trace_csv(self, capsys):
        assert main(["session", "soda", "--trace-csv", "/no/such/file.csv"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert err.count("\n") == 1

    def test_missing_summarize_file(self, capsys):
        assert main(["trace", "--summarize", "/no/such/file.csv"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_malformed_trace_csv(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("time,bandwidth\n0,4.0\n1,nan\n")
        assert main(["session", "soda", "--trace-csv", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 3" in err

    def test_unwritable_trace_out(self, capsys):
        assert main(["trace", "--dataset", "4g", "--duration", "30",
                     "--out", "/no/such/dir/out.csv"]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_bad_intensities(self, capsys):
        assert main(["robustness", "--sessions", "1", "--duration", "30",
                     "--intensities", "abc"]) == 2
        assert "intensities" in capsys.readouterr().err

    def test_bad_argument_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["session", "soda", "--duration", "not-a-number"])
        assert excinfo.value.code == 2
