"""Tests for the offline learning pipeline (repro.learn).

Covers the whole journal → demonstrations → BC → fine-tune → distill
chain: the opt-in ``log_decisions`` player hook, extraction from (gzip)
run journals, dataset discretisation on the shared ``encode_state``
contract, behavior cloning with its coverage report, ``q_init`` /
teacher-anchor warm starts (with the seed-determinism regression the
warm-start satellite demands), folding Q-tables back into policies,
distillation onto the tier-1 mmap wire format, and the CLI pipeline
end-to-end on a real (tiny) compare journal.
"""

import gzip
import json
import math

import numpy as np
import pytest

from repro.abr.base import AbrController
from repro.abr.bba import BbaController
from repro.abr.rl import encode_state, train_q_controller
from repro.core.lookup import DecisionTable
from repro.learn import (
    DemoDataset,
    PolicyController,
    PolicyTable,
    TableController,
    distill_policy,
    extract_demonstrations,
    fit_bc,
    finetune,
    load_demonstrations,
    policy_from_q,
)
from repro.runner import JournalError
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.video import BitrateLadder
from repro.core.controller import SodaController


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def ladder_spec(ladder):
    return {
        "bitrates": list(ladder.bitrates),
        "segment_duration": ladder.segment_duration,
        "name": ladder.name,
        "size_variation": ladder.size_variation,
    }


def write_journal(path, ladder, sessions, max_buffer=20.0, gzipped=False):
    """Hand-write a minimal run journal: manifest + session lines."""
    lines = [json.dumps({
        "kind": "manifest",
        "config_hash": "f" * 16,
        "spec": {
            "ladder": ladder_spec(ladder),
            "player": {"max_buffer": max_buffer},
            "log_decisions": True,
        },
    })]
    for sess in sessions:
        lines.append(json.dumps(dict({"kind": "session"}, **sess)))
    raw = ("\n".join(lines) + "\n").encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(gzip.compress(raw) if gzipped else raw)


def demo_session(controller="soda", trace="t0", seed=0, status="ok",
                 decisions=()):
    return {
        "controller": controller,
        "dataset": "d",
        "trace": trace,
        "seed": seed,
        "config_hash": "f" * 16,
        "status": status,
        "decisions": [list(row) for row in decisions],
    }


@pytest.fixture
def demo_journal(tmp_path, ladder):
    """Two soda sessions with rows, one other controller, one failure."""
    rows_a = [[0.0, -1.0, -1.0, 0], [4.0, 5.0, 0, 1], [8.0, 6.0, 1, 2]]
    rows_b = [[2.0, 1.5, 0, 0], [6.0, 3.0, 0, 1], [10.0, 8.0, 1, -1]]
    path = tmp_path / "journal.jsonl"
    write_journal(str(path), ladder, [
        demo_session(trace="t0", decisions=rows_a),
        demo_session(trace="t1", status="flagged", decisions=rows_b),
        demo_session(controller="bba", trace="t0",
                     decisions=[[1.0, 1.0, 0, 0]]),
        demo_session(trace="t2", status="failed", decisions=[]),
    ])
    return str(path)


# ----------------------------------------------------------------------
# Player hook
# ----------------------------------------------------------------------
class TestDecisionLogging:
    def test_off_by_default(self, ladder, steady_trace, short_config):
        result = simulate_session(
            SodaController(), steady_trace, ladder, short_config
        )
        assert result.decision_log == []

    def test_rows_follow_the_wire_format(self, ladder, steady_trace,
                                         short_config):
        result = simulate_session(
            SodaController(), steady_trace, ladder, short_config,
            log_decisions=True,
        )
        assert len(result.decision_log) >= short_config.num_segments
        first = result.decision_log[0]
        assert first[1] == -1.0 and first[2] == -1.0  # no history yet
        for row in result.decision_log:
            assert len(row) == 4
            buffer_level, tput, prev, action = row
            assert 0.0 <= buffer_level <= short_config.max_buffer
            assert tput == -1.0 or tput > 0.0
            assert prev == -1.0 or 0 <= prev < ladder.levels
            assert action == -1.0 or 0 <= action < ladder.levels

    def test_deferring_controller_logs_minus_one(self, ladder, steady_trace,
                                                 short_config):
        class DeferOnce(AbrController):
            def __init__(self):
                super().__init__()
                self.deferred = False

            def select_quality(self, obs):
                if not self.deferred and obs.segment_index == 3:
                    self.deferred = True
                    return None
                return 0

        result = simulate_session(
            DeferOnce(), steady_trace, ladder, short_config,
            log_decisions=True,
        )
        actions = [row[3] for row in result.decision_log]
        assert -1.0 in actions


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
class TestExtract:
    def test_extract_and_load_roundtrip(self, tmp_path, ladder, demo_journal):
        out = tmp_path / "demos.jsonl"
        report = extract_demonstrations(demo_journal, str(out))
        assert report.controller == "soda"
        assert report.sessions == 2  # ok + flagged
        assert report.decisions == 6
        assert report.skipped == 1  # the failed soda session

        dataset = load_demonstrations(str(out))
        assert dataset.controller == "soda"
        assert dataset.sessions == 2
        assert dataset.decisions == 6
        assert dataset.ladder.bitrates == ladder.bitrates
        assert dataset.max_buffer == 20.0
        histogram = dataset.action_histogram()
        assert int(histogram.sum()) == 6
        assert int(histogram[-1]) == 1  # one defer row (action -1)

    def test_gzip_in_and_out(self, tmp_path, ladder):
        rows = [[1.0, 2.0, 0, 1]] * 3
        src = tmp_path / "journal.jsonl.gz"
        write_journal(str(src), ladder,
                      [demo_session(decisions=rows)], gzipped=True)
        out = tmp_path / "demos.jsonl.gz"
        report = extract_demonstrations(str(src), str(out))
        assert report.decisions == 3
        with gzip.open(out, "rt", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
        assert first["kind"] == "demo-manifest"
        assert load_demonstrations(str(out)).decisions == 3

    def test_other_controllers_are_ignored(self, tmp_path, demo_journal):
        out = tmp_path / "demos.jsonl"
        report = extract_demonstrations(demo_journal, str(out),
                                        controller="bba")
        assert report.sessions == 1
        assert report.decisions == 1

    def test_journal_without_decisions_names_the_flag(self, tmp_path, ladder):
        path = tmp_path / "bare.jsonl"
        write_journal(str(path), ladder, [demo_session(decisions=[])])
        with pytest.raises(JournalError, match="--log-decisions"):
            extract_demonstrations(str(path), str(tmp_path / "out.jsonl"))

    def test_missing_manifest_is_an_error(self, tmp_path):
        path = tmp_path / "nomanifest.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(demo_session(
                decisions=[[1.0, 1.0, 0, 0]])) + "\n")
        with pytest.raises(JournalError):
            extract_demonstrations(str(path), str(tmp_path / "out.jsonl"))

    def test_load_rejects_non_demo_files(self, tmp_path, ladder, demo_journal):
        with pytest.raises(JournalError, match="demo-manifest"):
            load_demonstrations(demo_journal)


# ----------------------------------------------------------------------
# Dataset discretisation
# ----------------------------------------------------------------------
class TestDemoDataset:
    def make_dataset(self, ladder):
        return DemoDataset(
            ladder=ladder, max_buffer=20.0, controller="soda",
            buffer_buckets=4, throughput_buckets=4,
        )

    def test_rows_land_on_encode_state(self, ladder):
        dataset = self.make_dataset(ladder)
        dataset.add_row([5.0, 2.0, 1, 2])
        expected = encode_state(5.0, 2.0, 1, 20.0, ladder.min_bitrate,
                                ladder.max_bitrate, 4, 4)
        assert list(dataset.counts) == [expected]
        assert dataset.counts[expected][2] == 1

    def test_sentinels_decode_to_none(self, ladder):
        dataset = self.make_dataset(ladder)
        dataset.add_row([0.0, -1.0, -1, -1])
        ((state, counts),) = dataset.counts.items()
        assert state == encode_state(0.0, None, None, 20.0,
                                     ladder.min_bitrate, ladder.max_bitrate,
                                     4, 4)
        assert state[2] == -1
        assert counts[ladder.levels] == 1  # defer slot

    def test_malformed_rows_raise(self, ladder):
        dataset = self.make_dataset(ladder)
        with pytest.raises(ValueError):
            dataset.add_row([1.0, 1.0, 0])
        with pytest.raises(ValueError):
            dataset.add_row([1.0, 1.0, 0, ladder.levels])

    def test_total_states_counts_the_no_prev_plane(self, ladder):
        dataset = self.make_dataset(ladder)
        assert dataset.total_states == 4 * 4 * (ladder.levels + 1)


# ----------------------------------------------------------------------
# Behavior cloning
# ----------------------------------------------------------------------
class TestBehaviorCloning:
    def cloned(self, tmp_path, ladder, demo_journal):
        out = tmp_path / "demos.jsonl"
        extract_demonstrations(demo_journal, str(out))
        dataset = load_demonstrations(str(out))
        return fit_bc(dataset)

    def test_greedy_matches_demonstrated_majority(self, ladder):
        dataset = DemoDataset(
            ladder=ladder, max_buffer=20.0, controller="soda",
            buffer_buckets=4, throughput_buckets=4,
        )
        for _ in range(5):
            dataset.add_row([10.0, 4.0, 1, 2])
        dataset.add_row([10.0, 4.0, 1, 0])
        policy, coverage = fit_bc(dataset)
        state = encode_state(10.0, 4.0, 1, 20.0, ladder.min_bitrate,
                             ladder.max_bitrate, 4, 4)
        assert policy.decide(state, 1) == 2
        assert coverage.visited_states == 1
        assert coverage.decisions == 6
        assert coverage.defer_fraction == 0.0

    def test_coverage_report(self, tmp_path, ladder, demo_journal):
        policy, coverage = self.cloned(tmp_path, ladder, demo_journal)
        assert coverage.total_states == 8 * 8 * (ladder.levels + 1)
        assert coverage.visited_states == len(policy.values)
        assert 0.0 < coverage.coverage < 1.0
        assert coverage.sessions == 2
        assert coverage.defer_fraction == pytest.approx(1 / 6)
        doc = coverage.to_dict()
        assert doc["coverage"] == coverage.coverage
        assert "coverage:" in coverage.render()

    def test_unvisited_states_hold_the_previous_rung(self, ladder):
        policy = PolicyTable(ladder=ladder, max_buffer=20.0,
                             buffer_buckets=4, throughput_buckets=4)
        assert policy.decide((3, 3, 2), 2) == 2
        assert policy.decide((3, 3, -1), None) == 0
        assert policy.decide((3, 3, 9), 9) == 0  # nonsense prev → floor

    def test_learned_defer_suppressed_at_empty_buffer(self, ladder):
        policy = PolicyTable(ladder=ladder, max_buffer=20.0,
                             buffer_buckets=4, throughput_buckets=4)
        row = np.zeros(ladder.levels + 1)
        row[ladder.levels] = 1.0  # defer dominates
        policy.values[(0, 2, 1)] = row.copy()
        policy.values[(2, 2, 1)] = row.copy()
        assert policy.decide((2, 2, 1), 1) is None  # defer allowed
        assert policy.decide((0, 2, 1), 1) == 1  # safe-hold at empty buffer

    def test_save_load_roundtrip(self, tmp_path, ladder, demo_journal):
        policy, _ = self.cloned(tmp_path, ladder, demo_journal)
        path = tmp_path / "policy.json"
        policy.save(str(path))
        loaded = PolicyTable.load(str(path))
        assert loaded.ladder.bitrates == policy.ladder.bitrates
        assert loaded.max_buffer == policy.max_buffer
        assert set(loaded.values) == set(policy.values)
        for state, row in policy.values.items():
            np.testing.assert_allclose(loaded.values[state], row)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ValueError):
            PolicyTable.load(str(path))
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a policy file"):
            PolicyTable.load(str(path))

    def test_smoothing_must_be_positive(self, ladder):
        dataset = DemoDataset(
            ladder=ladder, max_buffer=20.0, controller="soda",
            buffer_buckets=4, throughput_buckets=4,
        )
        dataset.add_row([1.0, 1.0, 0, 0])
        with pytest.raises(ValueError):
            fit_bc(dataset, smoothing=0.0)

    def test_fit_is_deterministic(self, tmp_path, ladder, demo_journal):
        policy_a, cov_a = self.cloned(tmp_path, ladder, demo_journal)
        policy_b, cov_b = self.cloned(tmp_path, ladder, demo_journal)
        assert cov_a == cov_b
        for state, row in policy_a.values.items():
            np.testing.assert_array_equal(policy_b.values[state], row)

    def test_policy_controller_clamps_foreign_ladders(self, ladder):
        tall = BitrateLadder([1.0, 3.0, 6.0, 12.0, 24.0],
                             segment_duration=2.0, name="tall")
        policy = PolicyTable(ladder=tall, max_buffer=20.0,
                             buffer_buckets=4, throughput_buckets=4)
        controller = PolicyController(policy)
        from repro.sim.player import PlayerObservation

        obs = PlayerObservation(
            wall_time=0.0, segment_index=0, buffer_level=5.0,
            max_buffer=20.0, previous_quality=4, ladder=ladder, history=(),
        )
        decision = controller.select_quality(obs)
        assert decision == ladder.levels - 1


# ----------------------------------------------------------------------
# Warm start + anchor (rl.py satellite)
# ----------------------------------------------------------------------
class TestWarmStart:
    def traces(self):
        return [ThroughputTrace([20.0, 20.0], [6.0, 1.5], name="ft")]

    def config(self):
        return PlayerConfig(max_buffer=20.0, num_segments=12,
                            startup_threshold=2.0, live_delay=None)

    def test_q_init_seeds_the_table_without_mutation(self, ladder):
        q_init = {((0, 0, -1), 0): 3.0}
        frozen = dict(q_init)
        agent = train_q_controller(
            ladder, self.traces(), player_config=self.config(),
            episodes=1, epsilon_start=0.0, epsilon_end=0.0,
            q_init=q_init,
        )
        assert q_init == frozen
        # the warm-start key is present (possibly updated by learning)
        assert ((0, 0, -1), 0) in agent.q_table

    def test_same_seed_same_warm_start_is_bit_identical(self, ladder):
        """Seed-determinism regression for the q_init warm-start path."""
        q_init = {((b, t, p), a): 0.1 * a
                  for b in range(2) for t in range(2)
                  for p in (-1, 0) for a in range(ladder.levels)}
        runs = [
            train_q_controller(
                ladder, self.traces(), player_config=self.config(),
                episodes=4, seed=7, q_init=q_init,
            ).q_table
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        different = train_q_controller(
            ladder, self.traces(), player_config=self.config(),
            episodes=4, seed=8, q_init=q_init,
        ).q_table
        assert different != runs[0]

    def test_full_anchor_only_takes_teacher_actions(self, ladder):
        agent = train_q_controller(
            ladder, self.traces(), player_config=self.config(),
            episodes=2, epsilon_start=0.9, epsilon_end=0.9,
            teacher=BbaController(), anchor_epsilon=1.0,
        )
        # Every update happened on a BBA-chosen action; with the anchor
        # at 1.0 the ε-greedy branch is never reached.
        assert agent.q_table
        # post-training the agent is frozen and unanchored
        assert agent.training is False
        assert agent.teacher is None
        assert agent.anchor_epsilon == 0.0
        assert agent.epsilon == 0.0


# ----------------------------------------------------------------------
# Fine-tuning
# ----------------------------------------------------------------------
class TestFinetune:
    def cloned_policy(self, ladder):
        dataset = DemoDataset(
            ladder=ladder, max_buffer=20.0, controller="soda",
            buffer_buckets=8, throughput_buckets=8,
        )
        for row in ([4.0, 5.0, 0, 1], [8.0, 6.0, 1, 2], [12.0, 7.0, 2, 2],
                    [2.0, 1.0, 2, 0], [6.0, 2.0, 0, 1]):
            dataset.add_row(row)
        policy, _ = fit_bc(dataset)
        return policy

    def test_finetune_is_seed_deterministic(self, ladder):
        policy = self.cloned_policy(ladder)
        traces = [ThroughputTrace([30.0, 30.0], [6.0, 1.2], name="ft")]
        config = PlayerConfig(max_buffer=20.0, num_segments=10,
                              startup_threshold=2.0, live_delay=None)
        agents = [
            finetune(policy, traces, player_config=config, episodes=3,
                     seed=3)
            for _ in range(2)
        ]
        assert agents[0].q_table == agents[1].q_table
        assert agents[0].buffer_buckets == policy.buffer_buckets
        assert agents[0].name == "ft"

    def test_anchor_epsilon_validation(self, ladder):
        policy = self.cloned_policy(ladder)
        with pytest.raises(ValueError):
            finetune(policy, [ThroughputTrace.constant(5.0, 60.0)],
                     anchor_epsilon=1.5)

    def test_policy_from_q_folds_the_greedy_action(self, ladder):
        policy = self.cloned_policy(ladder)
        agent = finetune(
            policy,
            [ThroughputTrace([30.0, 30.0], [6.0, 1.2], name="ft")],
            player_config=PlayerConfig(max_buffer=20.0, num_segments=10,
                                       startup_threshold=2.0,
                                       live_delay=None),
            episodes=3, seed=3,
        )
        folded = policy_from_q(agent, ladder, 20.0)
        assert folded.values  # fine-tuning visited states
        for state in folded.values:
            q_best = max(
                range(ladder.levels),
                key=lambda a: (agent.q_value(state, a), -a),
            )
            assert folded.decide(state, state[2] if state[2] >= 0 else None) \
                == q_best
            # the folded policy never defers: its defer slot is pinned low
            assert folded.decide(state, None) is not None


# ----------------------------------------------------------------------
# Distillation
# ----------------------------------------------------------------------
class TestDistill:
    def policy(self, ladder):
        dataset = DemoDataset(
            ladder=ladder, max_buffer=20.0, controller="soda",
            buffer_buckets=6, throughput_buckets=6,
        )
        for b in range(6):
            for t in range(6):
                dataset.add_row([b * 3.4, 0.3 * (2.0 ** t), 1,
                                 min(t, ladder.levels - 1)])
        policy, _ = fit_bc(dataset)
        return policy

    def test_mmap_roundtrip_preserves_every_cell(self, tmp_path, ladder):
        policy = self.policy(ladder)
        table = distill_policy(policy, throughput_points=12,
                               buffer_points=10, version=3)
        path = tmp_path / "learned.sodatbl"
        table.save_mmap(str(path))
        loaded = DecisionTable.load_mmap(str(path))
        assert loaded.version == 3
        assert loaded.ladder.bitrates == ladder.bitrates
        assert loaded.max_buffer == policy.max_buffer
        np.testing.assert_array_equal(
            np.asarray(loaded._table), np.asarray(table._table)
        )

    def test_grid_cells_match_policy_decisions(self, ladder):
        policy = self.policy(ladder)
        table = distill_policy(policy, throughput_points=8, buffer_points=8)
        for tput in table._tput_grid:
            for buf in table._buffer_grid:
                for prev in (None, 0, ladder.levels - 1):
                    state = encode_state(
                        float(buf), float(tput), prev, policy.max_buffer,
                        ladder.min_bitrate, ladder.max_bitrate,
                        policy.buffer_buckets, policy.throughput_buckets,
                    )
                    expected = policy.decide(state, prev)
                    got = table.lookup(float(tput), float(buf), prev)
                    assert got == expected

    def test_validation(self, ladder):
        policy = self.policy(ladder)
        with pytest.raises(ValueError):
            distill_policy(policy, throughput_points=1)
        with pytest.raises(ValueError):
            distill_policy(policy, version=0)

    def test_table_controller_serves_lookups(self, ladder, steady_trace,
                                             short_config):
        policy = self.policy(ladder)
        table = distill_policy(policy, throughput_points=12,
                               buffer_points=12)
        result = simulate_session(
            TableController(table, name="distilled"), steady_trace, ladder,
            short_config,
        )
        assert result.qualities  # the session actually streamed
        for quality in result.qualities:
            assert 0 <= quality < ladder.levels


# ----------------------------------------------------------------------
# CLI pipeline
# ----------------------------------------------------------------------
class TestLearnCli:
    def test_extract_requires_decisions(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "plain.jsonl"
        assert main(["compare", "--dataset", "puffer", "--sessions", "1",
                     "--duration", "60", "--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(["learn", "extract", "--journal", str(journal),
                     "--out", str(tmp_path / "demos.jsonl")]) == 2
        assert "--log-decisions" in capsys.readouterr().err

    def test_pipeline_end_to_end(self, tmp_path, capsys):
        """compare --log-decisions → extract → bc → finetune → distill →
        eval, every stage through the real CLI."""
        from repro.cli import main

        journal = tmp_path / "journal.jsonl"
        demos = tmp_path / "demos.jsonl"
        policy = tmp_path / "policy_bc.json"
        coverage = tmp_path / "coverage.json"
        ft_policy = tmp_path / "policy_ft.json"
        table = tmp_path / "learned.sodatbl"

        assert main(["compare", "--dataset", "puffer", "--sessions", "2",
                     "--duration", "60", "--journal", str(journal),
                     "--log-decisions"]) == 0
        assert main(["learn", "extract", "--journal", str(journal),
                     "--out", str(demos)]) == 0
        out = capsys.readouterr().out
        assert "session" in out

        assert main(["learn", "bc", "--demos", str(demos),
                     "--out", str(policy),
                     "--coverage-json", str(coverage)]) == 0
        capsys.readouterr()
        assert policy.exists()
        report = json.loads(coverage.read_text())
        assert report["decisions"] > 0
        assert 0.0 < report["coverage"] <= 1.0

        assert main(["learn", "finetune", "--policy", str(policy),
                     "--out", str(ft_policy), "--dataset", "puffer",
                     "--sessions", "2", "--duration", "60",
                     "--episodes", "2", "--seed", "0"]) == 0
        capsys.readouterr()
        loaded_ft = PolicyTable.load(str(ft_policy))
        assert loaded_ft.values

        assert main(["learn", "distill", "--policy", str(policy),
                     "--out", str(table), "--table-points", "10"]) == 0
        capsys.readouterr()
        loaded = DecisionTable.load_mmap(str(table))
        assert loaded.version == 1

        eval_json = tmp_path / "learn_eval.json"
        assert main(["learn", "eval", "--policy", str(policy),
                     "--finetuned", str(ft_policy),
                     "--distilled", str(table),
                     "--dataset", "puffer", "--sessions", "1",
                     "--duration", "60", "--intensities", "0",
                     "--out", str(eval_json)]) == 0
        out = capsys.readouterr().out
        assert "soda" in out and "bc" in out and "ft" in out
        assert "distilled" in out and "solver-table" in out
        runs = json.loads(eval_json.read_text())["runs"]
        assert runs[-1]["mode"] == "learn-eval"
        summary = runs[-1]["summary"]
        for name in ("soda", "bc", "ft", "distilled", "solver-table"):
            assert math.isfinite(summary[name]["qoe_clean"])

    def test_distill_rejects_non_policy_input(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"kind": "nope"}))
        assert main(["learn", "distill", "--policy", str(bogus),
                     "--out", str(tmp_path / "x.sodatbl")]) == 2
        assert "not a policy file" in capsys.readouterr().err
