"""Integration tests: whole sessions, every controller × every dataset."""

import numpy as np
import pytest

from repro import (
    BolaController,
    DynamicController,
    FuguController,
    HybController,
    MpcController,
    RobustMpcController,
    SodaConfig,
    SodaController,
    qoe_from_session,
    run_session,
)
from repro.analysis import run_suite, standard_controllers
from repro.prediction import NoisyOraclePredictor, OraclePredictor
from repro.qoe import summarize
from repro.sim.profiles import (
    live_profile,
    on_demand_profile,
    production_profile,
    prototype_profile,
)
from repro.traces import build_synthetic_datasets

CONTROLLERS = {
    "soda": SodaController,
    "hyb": HybController,
    "bola": BolaController,
    "dynamic": DynamicController,
    "mpc": MpcController,
    "robustmpc": RobustMpcController,
    "fugu": FuguController,
}


@pytest.fixture(scope="module")
def datasets():
    return build_synthetic_datasets(2, session_seconds=120.0, seed=17)


@pytest.fixture(scope="module")
def profiles():
    return {
        "puffer": live_profile(session_seconds=120.0),
        "5g": live_profile(session_seconds=120.0, cellular=True),
        "4g": live_profile(session_seconds=120.0, cellular=True),
    }


@pytest.mark.parametrize("controller_name", sorted(CONTROLLERS))
@pytest.mark.parametrize("dataset_name", ["puffer", "5g", "4g"])
def test_every_controller_every_dataset(
    controller_name, dataset_name, datasets, profiles
):
    controller = CONTROLLERS[controller_name]()
    profile = profiles[dataset_name]
    for trace in datasets[dataset_name]:
        result = run_session(controller, trace, profile.ladder, profile.player)
        assert result.num_segments == profile.player.num_segments
        metrics = qoe_from_session(result)
        assert -11.0 <= metrics.qoe <= 1.0


@pytest.mark.parametrize(
    "profile_factory",
    [on_demand_profile, prototype_profile, production_profile],
)
def test_soda_on_every_profile(profile_factory, datasets):
    profile = profile_factory(session_seconds=120.0)
    trace = datasets["puffer"][0]
    if profile.name == "prototype":
        trace = trace.scaled(0.05)
    result = run_session(SodaController(), trace, profile.ladder, profile.player)
    assert result.num_segments == profile.player.num_segments


def test_sessions_deterministic(datasets, profiles):
    profile = profiles["puffer"]
    trace = datasets["puffer"][0]
    a = run_session(SodaController(), trace, profile.ladder, profile.player)
    b = run_session(SodaController(), trace, profile.ladder, profile.player)
    assert a.qualities == b.qualities
    assert a.rebuffer_time == b.rebuffer_time


def test_suite_runs_standard_controllers(datasets, profiles):
    suite = run_suite(
        standard_controllers(),
        datasets["puffer"],
        profiles["puffer"],
        dataset_name="puffer",
    )
    assert len(suite.per_controller) == 5


class TestHeadlineShape:
    """The paper's qualitative results on a medium-sized run."""

    @pytest.fixture(scope="class")
    def run(self):
        datasets = build_synthetic_datasets(5, session_seconds=300.0, seed=23)
        profile = live_profile(session_seconds=300.0)
        suite = run_suite(
            standard_controllers(), datasets["puffer"], profile, "puffer"
        )
        return suite

    def test_soda_lowest_switching(self, run):
        summaries = run.summaries()
        soda = summaries["soda"].switching_rate.mean
        for name, s in summaries.items():
            if name != "soda":
                assert soda <= s.switching_rate.mean + 1e-9

    def test_soda_best_qoe(self, run):
        summaries = run.summaries()
        soda = summaries["soda"].qoe.mean
        best_baseline = max(
            s.qoe.mean for n, s in summaries.items() if n != "soda"
        )
        assert soda >= best_baseline - 0.02

    def test_soda_rebuffering_short(self, run):
        summaries = run.summaries()
        assert summaries["soda"].rebuffer_ratio.mean <= 0.02


class TestPredictionRobustness:
    """Figure 11's shape: SODA degrades gracefully with prediction noise."""

    def _qoe_at_noise(self, noise, trace, profile):
        controller = SodaController(predictor=NoisyOraclePredictor(noise, seed=3))
        result = run_session(controller, trace, profile.ladder, profile.player)
        return qoe_from_session(result).qoe

    def test_moderate_noise_is_tolerated(self, datasets, profiles):
        profile = profiles["puffer"]
        trace = datasets["puffer"][0]
        clean = self._qoe_at_noise(0.0, trace, profile)
        noisy = self._qoe_at_noise(0.3, trace, profile)
        assert noisy >= clean - 0.35

    def test_oracle_at_least_as_good_as_heavy_noise(self, datasets, profiles):
        profile = profiles["4g"]
        qoes = []
        for noise in (0.0, 1.0):
            vals = [
                self._qoe_at_noise(noise, tr, profile)
                for tr in datasets["4g"]
            ]
            qoes.append(np.mean(vals))
        assert qoes[0] >= qoes[1] - 0.1
