"""Tests for the extension modules: BBA, PID, Markov predictor, lookup
tables, tuning, timelines, and scenario traces."""

import numpy as np
import pytest

from repro.abr import BbaController, PidController
from repro.core import DecisionTable, SodaConfig, SodaController, tune_soda
from repro.prediction import MarkovPredictor, ThroughputSample
from repro.sim import (
    EventKind,
    PlayerConfig,
    TimelineRecorder,
)
from repro.sim.network import ThroughputTrace
from repro.sim.profiles import EvaluationProfile
from repro.sim.session import run_session
from repro.traces import (
    all_scenarios,
    oscillation,
    outage,
    ramp,
    sawtooth,
    spike,
    step_down,
    step_up,
)


def sample(throughput, start=0.0, duration=1.0):
    return ThroughputSample(start, duration, throughput * duration, throughput)


# ----------------------------------------------------------------------
class TestBba:
    def test_rate_map_endpoints(self, ladder):
        bba = BbaController(reservoir=4.0, cushion=10.0)
        assert bba.rate_map(2.0, ladder, 20.0) == ladder.min_bitrate
        assert bba.rate_map(15.0, ladder, 20.0) == ladder.max_bitrate
        mid = bba.rate_map(9.0, ladder, 20.0)
        assert ladder.min_bitrate < mid < ladder.max_bitrate

    def test_validation(self):
        with pytest.raises(ValueError):
            BbaController(reservoir=0.0)
        with pytest.raises(ValueError):
            BbaController(cushion=-1.0)

    def test_hysteresis_holds_rung(self, ladder):
        from repro.abr.base import PlayerObservation

        bba = BbaController(reservoir=4.0, cushion=10.0)
        obs = PlayerObservation(
            wall_time=10.0, segment_index=3, buffer_level=9.0,
            max_buffer=20.0, previous_quality=1, ladder=ladder, history=(),
        )
        # The map at 9 s sits between rung 1 and rung 2: hold rung 1.
        assert bba.select_quality(obs) == 1

    def test_full_session(self, ladder, step_trace, short_config):
        result = run_session(BbaController(), step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_low_buffer_low_rung(self, ladder, slow_trace, short_config):
        result = run_session(BbaController(), slow_trace, ladder, short_config)
        assert max(result.qualities) == 0


class TestPid:
    def test_validation(self):
        with pytest.raises(ValueError):
            PidController(setpoint_fraction=0.0)
        with pytest.raises(ValueError):
            PidController(response=0.0)

    def test_regulates_buffer(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=60)
        result = run_session(PidController(), steady_trace, ladder, cfg)
        # Late-session buffer hovers near the 60% setpoint.
        late = result.buffer_levels[-15:]
        assert 6.0 < sum(late) / len(late) < 19.0

    def test_reset_clears_state(self):
        pid = PidController()
        pid._integral = 5.0
        pid._last_error = 1.0
        pid.reset()
        assert pid._integral == 0.0
        assert pid._last_error is None

    def test_full_session(self, ladder, step_trace, short_config):
        result = run_session(PidController(), step_trace, ladder, short_config)
        assert result.num_segments == 30


# ----------------------------------------------------------------------
class TestMarkovPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovPredictor(states=1)
        with pytest.raises(ValueError):
            MarkovPredictor(low=5.0, high=1.0)
        with pytest.raises(ValueError):
            MarkovPredictor(smoothing=0.0)

    def test_cold_start(self):
        p = MarkovPredictor()
        assert p.predict_scalar(0.0) == 0.0
        assert np.all(p.predict(0.0, 3, 1.0) == 0.0)

    def test_learns_constant_throughput(self):
        p = MarkovPredictor(states=8, low=0.5, high=50.0)
        for i in range(40):
            p.update(sample(10.0, start=float(i)))
        assert p.predict_scalar(40.0) == pytest.approx(10.0, rel=0.35)

    def test_learns_alternation(self):
        """After observing strict alternation the forecast alternates too."""
        p = MarkovPredictor(states=10, low=0.5, high=50.0)
        values = [2.0, 20.0] * 40
        for i, v in enumerate(values):
            p.update(sample(v, start=float(i)))
        forecast = p.predict(80.0, 2, 1.0)
        # Last observed was 20 -> next should be low, then high again.
        assert forecast[0] < forecast[1]

    def test_transition_matrix_rows_normalised(self):
        p = MarkovPredictor(states=5)
        for i, v in enumerate((1.0, 5.0, 2.0, 8.0)):
            p.update(sample(v, start=float(i)))
        rows = p.transition_matrix.sum(axis=1)
        assert np.allclose(rows, 1.0)

    def test_quantise_clips(self):
        p = MarkovPredictor(states=4, low=1.0, high=16.0)
        assert p._quantise(0.01) == 0
        assert p._quantise(1e9) == 3


# ----------------------------------------------------------------------
class TestDecisionTable:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.sim.video import BitrateLadder

        ladder = BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0)
        return DecisionTable(
            ladder, max_buffer=20.0, throughput_points=12, buffer_points=12
        )

    def test_build_stats(self, table):
        assert table.stats.cells == 12 * 12 * 4
        assert table.stats.build_seconds > 0
        assert table.stats.memory_bytes == table.stats.cells

    def test_lookup_matches_solver_on_grid(self, table):
        controller = SodaController(config=table.config)
        for ti in (0, 5, 11):
            for bi in (0, 6, 11):
                tput = float(table._tput_grid[ti])
                buf = float(table._buffer_grid[bi])
                assert table.lookup(tput, buf, 1) == controller.decide(
                    tput, buf, 1, table.ladder, 20.0
                )

    def test_lookup_handles_edges(self, table):
        assert table.lookup(0.0, 0.0, None) is not None or True
        table.lookup(1e9, 25.0, 2)  # clamps, must not raise

    def test_agreement_reasonable(self, table):
        agreement = table.agreement_with_solver(samples=300, seed=1)
        assert agreement > 0.6

    def test_validation(self, ladder):
        with pytest.raises(ValueError):
            DecisionTable(ladder, 20.0, throughput_points=1)
        with pytest.raises(ValueError):
            DecisionTable(ladder, 0.0)
        with pytest.raises(ValueError):
            DecisionTable(ladder, 20.0, throughput_range=(5.0, 1.0))


# ----------------------------------------------------------------------
class TestTuning:
    def test_grid_search_ranks(self, ladder):
        profile = EvaluationProfile(
            name="t", ladder=ladder,
            player=PlayerConfig(max_buffer=20.0, num_segments=20),
        )
        traces = [ThroughputTrace.constant(5.0, 120.0)]
        result = tune_soda(
            traces, profile,
            grid={"beta": [0.05, 0.2], "gamma": [50.0, 150.0]},
        )
        assert len(result.candidates) == 4
        scores = [c.score for c in result.candidates]
        assert scores == sorted(scores, reverse=True)
        assert result.best.score == scores[0]
        assert "rank" in result.render()

    def test_validation(self, ladder):
        profile = EvaluationProfile(
            name="t", ladder=ladder,
            player=PlayerConfig(max_buffer=20.0, num_segments=10),
        )
        with pytest.raises(ValueError):
            tune_soda([], profile)
        with pytest.raises(ValueError):
            tune_soda(
                [ThroughputTrace.constant(5.0, 60.0)], profile,
                grid={"beta": list(np.linspace(0.01, 1.0, 300))},
            )

    def test_custom_scorer(self, ladder):
        profile = EvaluationProfile(
            name="t", ladder=ladder,
            player=PlayerConfig(max_buffer=20.0, num_segments=15),
        )
        traces = [ThroughputTrace.constant(5.0, 120.0)]
        result = tune_soda(
            traces, profile, grid={"gamma": [10.0, 300.0]},
            scorer=lambda s: -s.switching_rate.mean,
        )
        assert result.best.summary.switching_rate.mean <= (
            result.candidates[-1].summary.switching_rate.mean
        )


# ----------------------------------------------------------------------
class TestTimeline:
    def test_records_session(self, ladder, step_trace, short_config):
        recorder = TimelineRecorder(SodaController())
        result = run_session(recorder, step_trace, ladder, short_config)
        timeline = recorder.timeline(result)
        assert len(timeline) > 0
        downloads = timeline.of_kind(EventKind.DOWNLOAD)
        assert len(downloads) == result.num_segments
        switches = timeline.of_kind(EventKind.SWITCH)
        assert len(switches) == result.switch_count

    def test_transparent_wrapper(self, ladder, step_trace, short_config):
        plain = run_session(SodaController(), step_trace, ladder, short_config)
        recorder = TimelineRecorder(SodaController())
        wrapped = run_session(recorder, step_trace, ladder, short_config)
        assert plain.qualities == wrapped.qualities

    def test_render_and_queries(self, ladder, step_trace, short_config):
        recorder = TimelineRecorder(SodaController())
        result = run_session(recorder, step_trace, ladder, short_config)
        timeline = recorder.timeline(result)
        text = timeline.render(limit=5)
        assert "seg=" in text
        early = timeline.between(0.0, 10.0)
        assert all(0.0 <= e.time < 10.0 for e in early.events)
        assert timeline.stall_seconds >= 0.0

    def test_predictor_forwarded(self):
        from repro.prediction import OraclePredictor

        inner = SodaController(predictor=OraclePredictor())
        recorder = TimelineRecorder(inner)
        assert recorder.predictor is inner.predictor


# ----------------------------------------------------------------------
class TestScenarios:
    def test_all_scenarios_valid(self):
        for trace in all_scenarios():
            assert trace.duration > 0
            assert trace.name

    def test_step_down_shape(self):
        trace = step_down(high=10.0, low=2.0, at=100.0, duration=200.0)
        assert trace.bandwidth_at(50.0) == 10.0
        assert trace.bandwidth_at(150.0) == 2.0

    def test_step_up_shape(self):
        trace = step_up(low=2.0, high=10.0, at=100.0, duration=200.0)
        assert trace.bandwidth_at(50.0) == 2.0
        assert trace.bandwidth_at(150.0) == 10.0

    def test_spike_and_outage_bounds(self):
        s = spike(base=5.0, peak=50.0, at=60.0, width=5.0, duration=120.0)
        assert s.bandwidth_at(62.0) == 50.0
        o = outage(base=5.0, floor=0.1, at=60.0, width=5.0, duration=120.0)
        assert o.bandwidth_at(62.0) == 0.1

    def test_ramp_monotone(self):
        trace = ramp(start=1.0, end=9.0, duration=100.0, steps=10)
        bws = list(trace.bandwidths)
        assert bws == sorted(bws)

    def test_oscillation_period(self):
        trace = oscillation(low=2.0, high=8.0, period=20.0, duration=100.0)
        assert trace.bandwidth_at(5.0) == 2.0
        assert trace.bandwidth_at(15.0) == 8.0

    def test_sawtooth_resets(self):
        trace = sawtooth(low=1.0, high=9.0, period=50.0, duration=150.0)
        bws = trace.bandwidths
        assert bws[0] == pytest.approx(1.0)
        assert max(bws) == pytest.approx(9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            step_down(at=500.0, duration=300.0)
        with pytest.raises(ValueError):
            spike(at=290.0, width=20.0, duration=300.0)
        with pytest.raises(ValueError):
            ramp(steps=1)
        with pytest.raises(ValueError):
            oscillation(period=0.0)
        with pytest.raises(ValueError):
            sawtooth(steps_per_period=1)

    def test_soda_on_every_scenario(self, fourk_ladder):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=40, live_delay=20.0)
        for trace in all_scenarios():
            result = run_session(SodaController(), trace, fourk_ladder, cfg)
            assert result.num_segments == 40
