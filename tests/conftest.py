"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import settings as hypothesis_settings

# Explicit hypothesis profiles: the property suites time fake-clock
# service paths whose wall cost varies wildly across boxes, so the
# per-example deadline is disabled suite-wide (individual tests still
# state ``deadline=None`` so they are self-contained when run alone).
# Select with HYPOTHESIS_PROFILE; "ci" derandomizes for reproducible
# gate runs.
hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.register_profile("ci", deadline=None, derandomize=True)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current implementation "
             "instead of comparing against them",
    )

from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.video import BitrateLadder, youtube_4k_ladder, youtube_hd_ladder


@pytest.fixture
def ladder() -> BitrateLadder:
    """A small three-rung ladder with 2 s segments."""
    return BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0, name="test")


@pytest.fixture
def hd_ladder() -> BitrateLadder:
    return youtube_hd_ladder()


@pytest.fixture
def fourk_ladder() -> BitrateLadder:
    return youtube_4k_ladder()


@pytest.fixture
def steady_trace() -> ThroughputTrace:
    """Plenty of constant bandwidth for 10 minutes."""
    return ThroughputTrace.constant(8.0, 600.0)


@pytest.fixture
def slow_trace() -> ThroughputTrace:
    """Bandwidth below the lowest test-ladder rung."""
    return ThroughputTrace.constant(0.5, 600.0)


@pytest.fixture
def step_trace() -> ThroughputTrace:
    """Alternating good/bad conditions."""
    durations = [30.0, 10.0] * 12
    bandwidths = [8.0, 1.2] * 12
    return ThroughputTrace(durations, bandwidths, name="step")


@pytest.fixture
def short_config() -> PlayerConfig:
    """A quick 30-segment live session."""
    return PlayerConfig(
        max_buffer=20.0,
        num_segments=30,
        startup_threshold=2.0,
        live_delay=20.0,
    )


@pytest.fixture
def vod_config() -> PlayerConfig:
    """A quick 30-segment on-demand session."""
    return PlayerConfig(
        max_buffer=60.0,
        num_segments=30,
        startup_threshold=2.0,
        live_delay=None,
    )
