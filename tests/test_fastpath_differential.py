"""Differential tests: the vectorized fast path vs the recursive reference.

Every test draws (ladder, horizon, buffer, prediction, anchor, caps) cases
from a seeded RNG and asserts the fast solvers commit the same rung, plan
the same sequence, and score the same objective (within the solver
tolerance) as ``solve_monotonic`` / ``solve_brute_force``.  Degenerate
shapes — K=1, single-rung ladders, infeasible states, the Figure 5 blank
region — get dedicated cases.
"""

import math
import random

import numpy as np
import pytest

from repro.core.fastpath import (
    PlanCache,
    monotone_candidate_count,
    monotone_candidates,
    product_candidates,
    solve_brute_force_batch,
    solve_brute_force_fast,
    solve_monotonic_batch,
    solve_monotonic_fast,
)
from repro.core.objective import SodaConfig
from repro.core.solver import _TOL, solve_brute_force, solve_monotonic
from repro.sim.video import BitrateLadder, youtube_4k_ladder

_LADDERS = [
    BitrateLadder([1.0, 3.0, 6.0], 2.0, name="three"),
    BitrateLadder([0.3, 0.8, 1.5, 2.8, 5.0, 9.0, 16.0], 2.0, name="seven"),
    BitrateLadder([2.5], 2.0, name="single"),
    youtube_4k_ladder(),
]


def _random_case(rng, ladder):
    """One random (cfg, omega, buffer, prev, caps) decision situation."""
    levels = ladder.levels
    horizon = rng.choice([1, 2, 3, 5])
    cfg = SodaConfig(
        horizon=horizon,
        beta=rng.choice([0.01, 0.05, 0.3]),
        gamma=rng.choice([10.0, 150.0]),
        epsilon=rng.choice([0.05, 1.0]),
        distortion=rng.choice(["log", "reciprocal"]),
        switch_event_cost=rng.choice([0.0, 0.08]),
    )
    buffer_level = rng.uniform(0.0, 30.0)
    max_buffer = rng.uniform(max(buffer_level, 5.0), 40.0)
    prev = rng.choice([None] + list(range(levels)))
    if rng.random() < 0.5:
        omega = float(rng.uniform(0.05, 25.0))
    else:
        omega = np.array([rng.uniform(0.05, 25.0) for _ in range(horizon)])
    first_cap = rng.choice([None, rng.randrange(levels)])
    terminal_weight = rng.choice([0.0, 0.5])
    return cfg, omega, buffer_level, max_buffer, prev, first_cap, terminal_weight


def _assert_plans_match(ref, fast, context):
    assert ref.quality == fast.quality, context
    assert ref.sequence == fast.sequence, context
    if math.isinf(ref.objective):
        assert math.isinf(fast.objective), context
    else:
        assert fast.objective == pytest.approx(ref.objective, abs=_TOL), context


class TestMonotonicDifferential:
    @pytest.mark.parametrize("ladder", _LADDERS, ids=lambda l: l.name)
    def test_randomized_cases_match_reference(self, ladder):
        rng = random.Random(1234)
        for i in range(300):
            cfg, omega, buf, maxbuf, prev, cap, tw = _random_case(rng, ladder)
            ref = solve_monotonic(
                omega, buf, prev, ladder, cfg, maxbuf,
                first_cap=cap, terminal_weight=tw,
            )
            fast = solve_monotonic_fast(
                omega, buf, prev, ladder, cfg, maxbuf,
                first_cap=cap, terminal_weight=tw,
            )
            _assert_plans_match(ref, fast, f"{ladder.name} case {i}")

    def test_infeasible_blank_region(self):
        """Throughput far above the ladder: every plan overflows the buffer
        (the Figure 5 blank region) and both backends report infeasible."""
        ladder = _LADDERS[0]
        cfg = SodaConfig(horizon=5)
        for omega in (200.0, np.full(5, 500.0)):
            ref = solve_monotonic(omega, 19.5, 1, ladder, cfg, 20.0)
            fast = solve_monotonic_fast(omega, 19.5, 1, ladder, cfg, 20.0)
            assert ref.quality is None and fast.quality is None
            assert math.isinf(ref.objective) and math.isinf(fast.objective)

    def test_underflow_infeasible(self):
        """Network too slow for any plan: both report infeasible."""
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=5)
        ref = solve_monotonic(0.01, 0.2, None, ladder, cfg, 25.0)
        fast = solve_monotonic_fast(0.01, 0.2, None, ladder, cfg, 25.0)
        assert ref.quality is None and fast.quality is None

    def test_k1_and_single_rung(self):
        cfg1 = SodaConfig(horizon=1)
        single = _LADDERS[2]
        for ladder in (_LADDERS[0], single):
            ref = solve_monotonic(4.0, 6.0, None, ladder, cfg1, 20.0)
            fast = solve_monotonic_fast(4.0, 6.0, None, ladder, cfg1, 20.0)
            _assert_plans_match(ref, fast, ladder.name)
        ref = solve_monotonic(4.0, 6.0, 0, single, SodaConfig(horizon=5), 20.0)
        fast = solve_monotonic_fast(4.0, 6.0, 0, single, SodaConfig(horizon=5), 20.0)
        _assert_plans_match(ref, fast, "single rung K=5")

    def test_nonfinite_predictions_are_infeasible(self):
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=5)
        for omega in (np.full(5, float("nan")), np.full(5, float("inf"))):
            ref = solve_monotonic(omega, 8.0, 2, ladder, cfg, 25.0)
            fast = solve_monotonic_fast(omega, 8.0, 2, ladder, cfg, 25.0)
            assert ref.quality is None and fast.quality is None

    def test_validation_matches_reference(self):
        ladder = _LADDERS[0]
        cfg = SodaConfig(horizon=3)
        for solver in (solve_monotonic, solve_monotonic_fast):
            with pytest.raises(ValueError):
                solver(np.array([1.0, 2.0]), 5.0, None, ladder, cfg, 20.0)
            with pytest.raises(ValueError):
                solver(np.array([1.0, -2.0, 1.0]), 5.0, None, ladder, cfg, 20.0)


class TestBruteForceDifferential:
    def test_randomized_cases_match_reference(self):
        rng = random.Random(99)
        for ladder in _LADDERS[:3]:
            for i in range(120):
                cfg, omega, buf, maxbuf, prev, cap, tw = _random_case(rng, ladder)
                if ladder.levels ** cfg.horizon > 50_000:
                    continue
                ref = solve_brute_force(
                    omega, buf, prev, ladder, cfg, maxbuf,
                    first_cap=cap, terminal_weight=tw,
                )
                fast = solve_brute_force_fast(
                    omega, buf, prev, ladder, cfg, maxbuf,
                    first_cap=cap, terminal_weight=tw,
                )
                _assert_plans_match(ref, fast, f"{ladder.name} case {i}")

    def test_brute_never_worse_than_monotonic(self):
        """Exhaustive search dominates Algorithm 1 on the fast path too."""
        rng = random.Random(5)
        ladder = _LADDERS[0]
        for _ in range(60):
            cfg, omega, buf, maxbuf, prev, cap, tw = _random_case(rng, ladder)
            mono = solve_monotonic_fast(
                omega, buf, prev, ladder, cfg, maxbuf,
                first_cap=cap, terminal_weight=tw,
            )
            brute = solve_brute_force_fast(
                omega, buf, prev, ladder, cfg, maxbuf,
                first_cap=cap, terminal_weight=tw,
            )
            assert brute.objective <= mono.objective + _TOL


class TestBatchConsistency:
    def test_batch_equals_per_call(self):
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=4)
        buffers = [0.0, 1.7, 8.0, 14.2, 24.9]
        caps = [None, 2, None, 5, 0]
        omega = np.array([3.0, 2.5, 4.0, 3.2])
        for batch, single in (
            (solve_monotonic_batch, solve_monotonic_fast),
            (solve_brute_force_batch, solve_brute_force_fast),
        ):
            plans = batch(
                omega, buffers, 3, ladder, cfg, 25.0, first_caps=caps
            )
            for plan, buf, cap in zip(plans, buffers, caps):
                ref = single(omega, buf, 3, ladder, cfg, 25.0, first_cap=cap)
                _assert_plans_match(ref, plan, f"buffer {buf}")

    def test_batch_rejects_mismatched_caps(self):
        with pytest.raises(ValueError):
            solve_monotonic_batch(
                3.0, [1.0, 2.0], None, _LADDERS[0], SodaConfig(horizon=2),
                20.0, first_caps=[None],
            )


class TestEvaluationCounts:
    """Satellite: PlanResult.evaluations stays meaningful on the fast path."""

    def test_candidate_count_formula(self):
        """The fast path scores exactly the §5.3 candidate set: from anchor
        ``a``, C(L-a+K-1, K) up-sequences plus C(a+K, K) down-sequences
        (the constant plan counted in both, as the reference searches it
        twice) — bounded by the paper's C(|R|+K, K)."""
        ladder = _LADDERS[1]
        L = ladder.levels
        for K in (1, 2, 3, 5):
            cfg = SodaConfig(horizon=K)
            for prev in [None] + list(range(L)):
                plan = solve_monotonic_fast(3.0, 8.0, prev, ladder, cfg, 25.0)
                expected = monotone_candidate_count(L, K, prev)
                assert plan.evaluations == expected
                if prev is not None:
                    up = math.comb(L - prev + K - 1, K)
                    down = math.comb(prev + K, K)
                    assert expected == up + down
                    assert expected <= math.comb(L + K, K)

    def test_brute_force_counts_full_product(self):
        ladder = _LADDERS[0]
        cfg = SodaConfig(horizon=3, use_brute_force=True)
        plan = solve_brute_force_fast(3.0, 8.0, 1, ladder, cfg, 20.0)
        assert plan.evaluations == ladder.levels ** 3

    def test_first_cap_shrinks_count(self):
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=3)
        free = solve_monotonic_fast(3.0, 8.0, 3, ladder, cfg, 25.0)
        capped = solve_monotonic_fast(
            3.0, 8.0, 3, ladder, cfg, 25.0, first_cap=1
        )
        assert 0 < capped.evaluations < free.evaluations

    def test_enumeration_shapes(self):
        assert monotone_candidates(4, 3).shape == (math.comb(4 + 3 - 1, 3), 3)
        assert product_candidates(3, 4).shape == (81, 4)
        with pytest.raises(ValueError):
            monotone_candidates(0, 3)
        with pytest.raises(ValueError):
            product_candidates(40, 5)


class TestPlanCache:
    def test_hit_and_miss_counters(self):
        cache = PlanCache(buffer_quantum=0.1, tput_quantum=0.1, max_entries=8)
        ladder = _LADDERS[0]
        omega = np.full(3, 4.0)
        key = cache.key(omega, 5.02, 1, ladder, 20.0, 2.0, None)
        assert cache.get(key) is None
        plan = solve_monotonic_fast(omega, 5.02, 1, ladder, SodaConfig(horizon=3), 20.0)
        cache.put(key, plan)
        # a nearby state within half a quantum maps to the same key
        near = cache.key(omega + 0.01, 5.04, 1, ladder, 20.0, 2.0, None)
        assert near == key
        assert cache.get(near) is plan
        assert (cache.hits, cache.misses) == (1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_geometry_changes_miss(self):
        cache = PlanCache()
        ladder = _LADDERS[0]
        omega = np.full(3, 4.0)
        base = cache.key(omega, 5.0, 1, ladder, 20.0, 2.0, None)
        assert cache.key(omega, 5.0, 2, ladder, 20.0, 2.0, None) != base
        assert cache.key(omega, 5.0, 1, ladder, 25.0, 2.0, None) != base
        assert cache.key(omega, 5.0, 1, ladder, 20.0, 2.0, 1) != base
        assert cache.key(omega, 5.0, 1, _LADDERS[1], 20.0, 2.0, None) != base

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.get(("a",)) is None  # oldest evicted
        assert cache.get(("c",)) == 3

    def test_nonfinite_state_does_not_crash(self):
        cache = PlanCache()
        ladder = _LADDERS[0]
        omega = np.array([float("nan"), 2.0, float("inf")])
        key = cache.key(omega, float("nan"), 1, ladder, 20.0, 2.0, None)
        assert cache.get(key) is None

    def test_controller_reuses_plans_and_resets(self):
        from repro.core.controller import SodaController

        ladder = _LADDERS[1]
        controller = SodaController(config=SodaConfig(horizon=5))
        for _ in range(3):
            controller.decide(4.0, 8.0, 2, ladder, 25.0)
        assert (controller.plan_cache_hits, controller.plan_cache_misses) == (2, 1)
        controller.reset()
        assert (controller.plan_cache_hits, controller.plan_cache_misses) == (0, 0)

    def test_reference_backend_has_no_cache(self):
        from repro.core.controller import SodaController

        controller = SodaController(
            config=SodaConfig(solver_backend="reference")
        )
        controller.decide(4.0, 8.0, 2, _LADDERS[1], 25.0)
        controller.decide(4.0, 8.0, 2, _LADDERS[1], 25.0)
        assert (controller.plan_cache_hits, controller.plan_cache_misses) == (0, 0)
