"""Fake-clock unit suite for the MicroBatcher's timing contract.

Every trigger edge is pinned deterministically with an injected clock:
flush on window expiry, flush on deadline pressure (never holding a
request past its tier-0 budget), flush on the size cap, drain on close.
The service underneath runs with the same fake clock, so the decisions a
flush produces are themselves deterministic — including which tier the
shared (earliest-deadline) budget buys.
"""

import pytest

from repro.service import DecisionService, MicroBatcher
from repro.service.degrade import TIER_RULE, TIER_SOLVER
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder

DEADLINE = 0.05  # tier0_budget defaults to half of this


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def service(clock):
    return DecisionService(
        BitrateLadder([1.0, 3.0, 6.0], 2.0, name="test"),
        20.0,
        deadline=DEADLINE,
        table_points=0,
        clock=clock,
    )


def make_obs(ladder, buffer_level=8.0, prev=1):
    return PlayerObservation(
        wall_time=10.0,
        segment_index=5,
        buffer_level=buffer_level,
        max_buffer=20.0,
        previous_quality=prev,
        ladder=ladder,
        history=(),
    )


class TestValidation:
    def test_rejects_bad_parameters(self, service):
        with pytest.raises(ValueError):
            MicroBatcher(service, window=0.0)
        with pytest.raises(ValueError):
            MicroBatcher(service, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(service, reserve=-0.01)

    def test_reserve_defaults_to_tier0_budget(self, service):
        b = MicroBatcher(service)
        assert b.reserve == service.degradation.tier0_budget

    def test_clock_defaults_to_service_clock(self, service, clock):
        assert MicroBatcher(service).clock is clock


class TestWindowExpiry:
    def test_holds_within_window_then_flushes(self, service, clock):
        b = MicroBatcher(service, window=0.002, max_batch=32)
        obs = make_obs(service.ladder)
        # generous deadlines so only the window can trigger
        p1 = b.offer("a", obs, deadline_at=clock() + 10.0)
        p2 = b.offer("b", obs, deadline_at=clock() + 10.0)
        assert b.due() is None and not p1.done
        clock.advance(0.0019)
        assert b.due() is None
        assert b.poll() == []
        clock.advance(0.0002)  # past the 2 ms window
        assert b.due() == "window"
        decisions = b.poll()
        assert len(decisions) == 2
        assert p1.done and p2.done
        assert p1.decision.session_id == "a"
        assert service.batches.snapshot()["flush_window"] == 1

    def test_window_restarts_with_each_new_batch(self, service, clock):
        b = MicroBatcher(service, window=0.002)
        obs = make_obs(service.ladder)
        b.offer("a", obs, deadline_at=clock() + 10.0)
        clock.advance(0.003)
        b.poll()
        # a fresh batch gets its own full window
        b.offer("b", obs, deadline_at=clock() + 10.0)
        assert b.due() is None
        clock.advance(0.0021)
        assert b.due() == "window"


class TestDeadlinePressure:
    def test_flushes_when_budget_hits_reserve(self, service, clock):
        """The batcher never holds a request past its tier-0 budget: the
        moment any pending request's remaining budget shrinks to the
        reserve, the batch flushes — and the request still gets a full
        tier-0 solve."""
        b = MicroBatcher(service, window=10.0, max_batch=32)
        obs = make_obs(service.ladder)
        pending = b.offer("a", obs)  # deadline starts at offer: now + 50 ms
        reserve = b.reserve
        # remaining budget still above the reserve: keep waiting
        clock.advance(DEADLINE - reserve - 0.001)
        assert b.due() is None
        # exactly at the edge: remaining == reserve, flush now
        clock.advance(0.001)
        assert b.due() == "deadline"
        b.poll()
        assert pending.done
        assert pending.decision.tier == TIER_SOLVER
        assert not pending.decision.overran
        assert service.batches.snapshot()["flush_deadline"] == 1

    def test_earliest_deadline_governs(self, service, clock):
        b = MicroBatcher(service, window=10.0)
        obs = make_obs(service.ladder)
        b.offer("slack", obs, deadline_at=clock() + 100.0)
        b.offer("tight", obs, deadline_at=clock() + b.reserve + 0.002)
        assert b.due() is None
        clock.advance(0.002)
        assert b.due() == "deadline"

    def test_batch_shares_earliest_deadline(self, service, clock):
        """A flushed batch is served on its tightest member's budget: a
        member with no tier-0 budget left drags the whole batch down to
        the floor rather than letting anyone exceed its own promise."""
        b = MicroBatcher(service, window=10.0)
        obs = make_obs(service.ladder)
        roomy = b.offer("roomy", obs, deadline_at=clock() + 100.0)
        broke = b.offer(
            "broke", obs,
            deadline_at=clock() + 0.5 * service.degradation.tier0_budget,
        )
        b.flush("manual")
        assert roomy.decision.tier == TIER_RULE
        assert broke.decision.tier == TIER_RULE


class TestSizeCap:
    def test_reaching_max_batch_flushes_synchronously(self, service, clock):
        b = MicroBatcher(service, window=10.0, max_batch=3)
        obs = make_obs(service.ladder)
        p1 = b.offer("a", obs, deadline_at=clock() + 10.0)
        p2 = b.offer("b", obs, deadline_at=clock() + 10.0)
        assert not p1.done
        p3 = b.offer("c", obs, deadline_at=clock() + 10.0)
        assert p1.done and p2.done and p3.done
        snap = service.batches.snapshot()
        assert snap["flush_size"] == 1
        assert snap["max_batch"] == 3
        assert len(b) == 0

    def test_occupancy_accounting(self, service, clock):
        b = MicroBatcher(service, window=10.0, max_batch=2)
        obs = make_obs(service.ladder)
        for sid in ("a", "b", "c", "d"):
            b.offer(sid, obs, deadline_at=clock() + 10.0)
        snap = service.batches.snapshot()
        assert snap["batches"] == 2
        assert snap["batched_decisions"] == 4
        assert snap["mean_occupancy"] == 2.0


class TestDrainAndClose:
    def test_close_drains_pending(self, service, clock):
        b = MicroBatcher(service, window=10.0)
        obs = make_obs(service.ladder)
        p = b.offer("a", obs, deadline_at=clock() + 10.0)
        decisions = b.close()
        assert p.done and len(decisions) == 1
        assert service.batches.snapshot()["flush_drain"] == 1

    def test_offer_after_close_raises(self, service):
        b = MicroBatcher(service)
        b.close()
        with pytest.raises(RuntimeError):
            b.offer("a", make_obs(service.ladder))

    def test_double_close_is_idempotent(self, service):
        b = MicroBatcher(service)
        assert b.close() == []
        assert b.close() == []

    def test_empty_flush_is_not_counted(self, service):
        b = MicroBatcher(service)
        assert b.flush("manual") == []
        snap = service.batches.snapshot()
        assert all(snap[f"flush_{r}"] == 0 for r in
                   ("window", "deadline", "size", "drain", "manual"))


class TestSubmit:
    def test_submit_forces_an_answer(self, service, clock):
        b = MicroBatcher(service, window=10.0)
        obs = make_obs(service.ladder)
        decision = b.submit("a", obs)
        assert decision.session_id == "a"
        assert service.batches.snapshot()["flush_manual"] == 1

    def test_submit_amortizes_over_pending_queue(self, service, clock):
        b = MicroBatcher(service, window=10.0, max_batch=32)
        obs = make_obs(service.ladder)
        waiting = b.offer("waiting", obs, deadline_at=clock() + 10.0)
        b.submit("tail", obs, deadline_at=clock() + 10.0)
        assert waiting.done  # the forced flush took the queue with it
        assert service.batches.snapshot()["batched_decisions"] == 2

    def test_submit_resolved_by_size_cap_does_not_reflush(self, service, clock):
        b = MicroBatcher(service, window=10.0, max_batch=2)
        obs = make_obs(service.ladder)
        b.offer("a", obs, deadline_at=clock() + 10.0)
        b.submit("b", obs, deadline_at=clock() + 10.0)
        snap = service.batches.snapshot()
        assert snap["flush_size"] == 1
        assert snap["flush_manual"] == 0


class TestHealthSurface:
    def test_batching_counters_reach_health_snapshot(self, service, clock):
        b = MicroBatcher(service, window=0.002, max_batch=32)
        obs = make_obs(service.ladder)
        b.offer("a", obs, deadline_at=clock() + 10.0)
        b.offer("b", obs, deadline_at=clock() + 10.0)
        clock.advance(0.003)
        b.poll()
        payload = service.health().to_dict()
        assert payload["batching"]["batches"] == 1
        assert payload["batching"]["batched_decisions"] == 2
        assert payload["batching"]["flush_window"] == 1
        assert payload["batching"]["mean_occupancy"] == 2.0
