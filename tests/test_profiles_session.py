"""Tests for evaluation profiles and the session-orchestration helpers."""

import pytest

from repro.abr import BolaController
from repro.core.controller import SodaController
from repro.qoe import QoeMetrics
from repro.sim.network import ThroughputTrace
from repro.sim.profiles import (
    live_profile,
    low_latency_profile,
    on_demand_profile,
    production_profile,
    prototype_profile,
)
from repro.sim.session import run_dataset, run_session


class TestProfiles:
    def test_live_profile_defaults(self):
        profile = live_profile()
        assert profile.player.max_buffer == 20.0
        assert profile.player.live_delay == 20.0
        assert profile.ladder.levels == 6
        assert profile.utility == "log"
        assert profile.player.num_segments == 300

    def test_live_cellular_cuts_ladder(self):
        profile = live_profile(cellular=True)
        assert profile.ladder.levels == 4
        assert profile.ladder.max_bitrate == 12.0

    def test_on_demand_profile(self):
        profile = on_demand_profile()
        assert profile.player.live_delay is None
        assert profile.player.max_buffer == 120.0

    def test_prototype_profile(self):
        profile = prototype_profile()
        assert profile.utility == "ssim"
        assert profile.ssim_model is not None
        assert profile.player.max_buffer == 15.0
        assert profile.ladder.max_bitrate == pytest.approx(2.0)

    def test_production_profile(self):
        profile = production_profile()
        assert profile.ladder.levels == 10
        assert profile.player.live_delay == 20.0

    def test_low_latency_profile(self):
        profile = low_latency_profile(latency=4.0)
        assert profile.player.max_buffer == 4.0
        assert profile.ladder.segment_duration == 1.0

    def test_low_latency_validates(self):
        with pytest.raises(ValueError):
            low_latency_profile(latency=0.5, segment_duration=1.0)

    def test_session_seconds_scales_segments(self):
        assert live_profile(session_seconds=60.0).player.num_segments == 30


class TestRunDataset:
    def test_log_and_ssim_utilities_differ(self):
        profile = prototype_profile(session_seconds=60.0)
        traces = [ThroughputTrace.constant(1.5, 120.0)]
        ssim = run_dataset(
            lambda: BolaController(), traces, profile.ladder, profile.player,
            utility="ssim", ssim_model=profile.ssim_model,
        )
        log = run_dataset(
            lambda: BolaController(), traces, profile.ladder, profile.player,
            utility="log",
        )
        assert isinstance(ssim[0], QoeMetrics)
        assert ssim[0].utility != log[0].utility

    def test_custom_qoe_weights(self):
        profile = live_profile(session_seconds=60.0)
        traces = [ThroughputTrace.constant(8.0, 120.0)]
        strict = run_dataset(
            lambda: SodaController(), traces, profile.ladder, profile.player,
            qoe_gamma=5.0,
        )
        lax = run_dataset(
            lambda: SodaController(), traces, profile.ladder, profile.player,
            qoe_gamma=0.0,
        )
        assert strict[0].switching_rate == lax[0].switching_rate
        assert strict[0].qoe <= lax[0].qoe

    def test_fresh_controller_per_session(self):
        profile = live_profile(session_seconds=60.0)
        traces = [
            ThroughputTrace.constant(8.0, 120.0),
            ThroughputTrace.constant(2.0, 120.0),
        ]
        built = []

        def factory():
            controller = SodaController()
            built.append(controller)
            return controller

        run_dataset(factory, traces, profile.ladder, profile.player)
        assert len(built) == 2
        assert built[0] is not built[1]

    def test_run_session_attaches_oracle(self):
        from repro.prediction import OraclePredictor

        profile = live_profile(session_seconds=60.0)
        trace = ThroughputTrace.constant(8.0, 120.0)
        controller = SodaController(predictor=OraclePredictor())
        run_session(controller, trace, profile.ladder, profile.player)
        assert controller.predictor.trace is trace
