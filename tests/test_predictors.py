"""Tests for the throughput predictors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import (
    EmaPredictor,
    HarmonicMeanPredictor,
    MovingAveragePredictor,
    NoisyOraclePredictor,
    OraclePredictor,
    SlidingWindowPredictor,
    StochasticPredictor,
    ThroughputSample,
)
from repro.prediction.stochastic import _probit
from repro.sim.network import ThroughputTrace


def sample(throughput: float, start: float = 0.0, duration: float = 1.0):
    return ThroughputSample(
        start=start, duration=duration, size=throughput * duration,
        throughput=throughput,
    )


class TestThroughputSample:
    def test_from_download(self):
        s = ThroughputSample.from_download(start=1.0, duration=2.0, size=10.0)
        assert s.throughput == pytest.approx(5.0)
        assert s.end == pytest.approx(3.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            ThroughputSample.from_download(0.0, 0.0, 1.0)


class TestMovingAverage:
    def test_empty_returns_zero(self):
        assert MovingAveragePredictor().predict_scalar(0.0) == 0.0

    def test_mean_of_window(self):
        p = MovingAveragePredictor(window=3)
        for v in (2.0, 4.0, 6.0, 8.0):
            p.update(sample(v))
        assert p.predict_scalar(0.0) == pytest.approx(6.0)

    def test_reset(self):
        p = MovingAveragePredictor()
        p.update(sample(5.0))
        p.reset()
        assert p.predict_scalar(0.0) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)

    def test_predict_vector_constant(self):
        p = MovingAveragePredictor()
        p.update(sample(4.0))
        vec = p.predict(0.0, horizon=3, dt=2.0)
        assert vec == pytest.approx([4.0, 4.0, 4.0])

    def test_predict_validates_args(self):
        p = MovingAveragePredictor()
        with pytest.raises(ValueError):
            p.predict(0.0, horizon=0, dt=1.0)
        with pytest.raises(ValueError):
            p.predict(0.0, horizon=1, dt=0.0)


class TestSlidingWindow:
    def test_duration_weighted(self):
        p = SlidingWindowPredictor(window_seconds=100.0)
        p.update(ThroughputSample(start=0.0, duration=3.0, size=3.0, throughput=1.0))
        p.update(ThroughputSample(start=3.0, duration=1.0, size=9.0, throughput=9.0))
        # (3 + 9) Mb over 4 s = 3 Mb/s
        assert p.predict_scalar(4.0) == pytest.approx(3.0)

    def test_eviction(self):
        p = SlidingWindowPredictor(window_seconds=5.0)
        p.update(ThroughputSample(start=0.0, duration=1.0, size=2.0, throughput=2.0))
        p.update(ThroughputSample(start=10.0, duration=1.0, size=8.0, throughput=8.0))
        assert p.predict_scalar(11.0) == pytest.approx(8.0)

    def test_all_evicted(self):
        p = SlidingWindowPredictor(window_seconds=1.0)
        p.update(sample(5.0, start=0.0))
        assert p.predict_scalar(100.0) == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowPredictor(window_seconds=0.0)


class TestHarmonicMean:
    def test_harmonic_mean(self):
        p = HarmonicMeanPredictor(window=2)
        p.update(sample(2.0))
        p.update(sample(6.0))
        assert p.predict_scalar(0.0) == pytest.approx(3.0)

    def test_dominated_by_slow_samples(self):
        p = HarmonicMeanPredictor(window=5)
        for v in (100.0, 100.0, 100.0, 100.0, 1.0):
            p.update(sample(v))
        assert p.predict_scalar(0.0) < 5.0

    def test_ignores_zero_throughput(self):
        p = HarmonicMeanPredictor()
        p.update(sample(0.0))
        assert p.predict_scalar(0.0) == 0.0


class TestEma:
    def test_empty_returns_zero(self):
        assert EmaPredictor().predict_scalar(0.0) == 0.0

    def test_constant_input_converges(self):
        p = EmaPredictor()
        for _ in range(50):
            p.update(sample(7.0))
        assert p.predict_scalar(0.0) == pytest.approx(7.0, rel=1e-6)

    def test_takes_conservative_min(self):
        p = EmaPredictor(fast_half_life=1.0, slow_half_life=20.0)
        for _ in range(30):
            p.update(sample(10.0))
        p.update(sample(1.0, duration=2.0))
        # Fast EMA drops quickly; estimate follows the smaller one.
        est = p.predict_scalar(0.0)
        slow_only = 10.0  # slow EMA barely moved
        assert est < slow_only

    def test_validates_half_lives(self):
        with pytest.raises(ValueError):
            EmaPredictor(fast_half_life=0.0)
        with pytest.raises(ValueError):
            EmaPredictor(fast_half_life=10.0, slow_half_life=1.0)

    def test_reset(self):
        p = EmaPredictor()
        p.update(sample(5.0))
        p.reset()
        assert p.predict_scalar(0.0) == 0.0


class TestOracle:
    def test_exact_future(self):
        trace = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        oracle = OraclePredictor(trace)
        vec = oracle.predict(0.0, horizon=2, dt=1.0)
        assert vec == pytest.approx([2.0, 8.0])

    def test_attach_trace(self):
        oracle = OraclePredictor()
        with pytest.raises(RuntimeError):
            oracle.predict_scalar(0.0)
        oracle.attach_trace(ThroughputTrace.constant(3.0, 10.0))
        assert oracle.predict_scalar(0.0) == pytest.approx(3.0)

    def test_scalar_is_next_second(self):
        trace = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        assert OraclePredictor(trace).predict_scalar(1.0) == pytest.approx(8.0)


class TestNoisyOracle:
    def test_zero_noise_is_exact(self):
        trace = ThroughputTrace.constant(4.0, 10.0)
        p = NoisyOraclePredictor(0.0, trace)
        assert p.predict(0.0, 3, 1.0) == pytest.approx([4.0, 4.0, 4.0])

    def test_noise_changes_predictions(self):
        trace = ThroughputTrace.constant(4.0, 10.0)
        p = NoisyOraclePredictor(0.5, trace, seed=1)
        vec = p.predict(0.0, 8, 1.0)
        assert not np.allclose(vec, 4.0)
        assert np.all(vec >= 0.0)

    def test_reset_reproduces_stream(self):
        trace = ThroughputTrace.constant(4.0, 10.0)
        p = NoisyOraclePredictor(0.3, trace, seed=7)
        a = p.predict(0.0, 5, 1.0)
        p.reset()
        b = p.predict(0.0, 5, 1.0)
        assert a == pytest.approx(b)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            NoisyOraclePredictor(-0.1)

    def test_mean_roughly_unbiased(self):
        trace = ThroughputTrace.constant(10.0, 10.0)
        p = NoisyOraclePredictor(0.3, trace, seed=3)
        vec = p.predict(0.0, 2000, 0.001)
        assert np.mean(vec) == pytest.approx(10.0, rel=0.05)


class TestStochastic:
    def test_distribution_mean_std(self):
        p = StochasticPredictor(window=8, min_std_fraction=0.0)
        for v in (4.0, 6.0):
            p.update(sample(v))
        d = p.predict_distribution(0.0)
        assert d.mean == pytest.approx(5.0)
        assert d.std == pytest.approx(math.sqrt(2.0))

    def test_min_std_floor(self):
        p = StochasticPredictor(window=4, min_std_fraction=0.1)
        for _ in range(4):
            p.update(sample(10.0))
        assert p.predict_distribution(0.0).std == pytest.approx(1.0)

    def test_empty_distribution(self):
        d = StochasticPredictor().predict_distribution(0.0)
        assert d.mean == 0.0 and d.std == 0.0

    def test_quantiles_ordered(self):
        p = StochasticPredictor()
        for v in (4.0, 8.0, 6.0):
            p.update(sample(v))
        d = p.predict_distribution(0.0)
        assert d.quantile(0.1) < d.quantile(0.5) < d.quantile(0.9)
        assert d.quantile(0.5) == pytest.approx(d.mean, abs=1e-9)

    def test_quantile_nonnegative(self):
        from repro.prediction.stochastic import ThroughputDistribution

        d = ThroughputDistribution(mean=1.0, std=10.0)
        assert d.quantile(0.01) == 0.0

    def test_quantile_validates(self):
        from repro.prediction.stochastic import ThroughputDistribution

        d = ThroughputDistribution(1.0, 1.0)
        with pytest.raises(ValueError):
            d.quantile(0.0)

    def test_rejects_small_window(self):
        with pytest.raises(ValueError):
            StochasticPredictor(window=1)


class TestProbit:
    @pytest.mark.parametrize(
        "q,expected",
        [(0.5, 0.0), (0.8413447460685429, 1.0), (0.15865525393145707, -1.0),
         (0.9772498680518208, 2.0), (0.001, -3.090232306167813)],
    )
    def test_against_known_values(self, q, expected):
        assert _probit(q) == pytest.approx(expected, abs=1e-6)

    @given(st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_antisymmetric(self, q):
        assert _probit(q) == pytest.approx(-_probit(1.0 - q), abs=1e-7)
