"""Tests for per-request RTT modelling in the player."""

import pytest

from repro.abr.base import AbrController
from repro.core.controller import SodaController
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.session import run_session


class Fixed(AbrController):
    name = "fixed"

    def __init__(self, quality=0):
        super().__init__()
        self.quality = quality

    def select_quality(self, obs):
        return self.quality


class TestRtt:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlayerConfig(rtt=-0.1)

    def test_default_zero_is_unchanged(self, ladder, steady_trace, vod_config):
        base = simulate_session(Fixed(0), steady_trace, ladder, vod_config)
        assert all(
            dt == pytest.approx(2.0 / 8.0) for dt in base.download_times
        )

    def test_rtt_adds_to_download_time(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=60.0, num_segments=20, rtt=0.1)
        result = simulate_session(Fixed(0), steady_trace, ladder, cfg)
        # 2 Mb at 8 Mb/s = 0.25 s payload + 0.1 s RTT.
        assert all(
            dt == pytest.approx(0.35) for dt in result.download_times
        )

    def test_rtt_lowers_measured_throughput(self, ladder, steady_trace):
        no_rtt = PlayerConfig(max_buffer=60.0, num_segments=10, rtt=0.0)
        with_rtt = PlayerConfig(max_buffer=60.0, num_segments=10, rtt=0.2)
        fast = simulate_session(Fixed(0), steady_trace, ladder, no_rtt)
        slow = simulate_session(Fixed(0), steady_trace, ladder, with_rtt)
        assert max(slow.throughputs) < min(fast.throughputs)

    def test_rtt_hurts_small_segments_more(self, steady_trace):
        """RTT overhead is proportionally larger for low rungs."""
        from repro.sim.video import BitrateLadder

        ladder = BitrateLadder([1.0, 8.0], segment_duration=2.0)
        cfg = PlayerConfig(max_buffer=60.0, num_segments=10, rtt=0.2)
        low = simulate_session(Fixed(0), steady_trace, ladder, cfg)
        high = simulate_session(Fixed(1), steady_trace, ladder, cfg)
        # Effective throughput relative to the no-RTT case:
        low_eff = low.throughputs[0] / 8.0
        high_eff = high.throughputs[0] / 8.0
        assert low_eff < high_eff

    def test_soda_session_with_rtt(self, ladder, step_trace):
        cfg = PlayerConfig(
            max_buffer=20.0, num_segments=30, live_delay=20.0, rtt=0.08
        )
        result = run_session(SodaController(), step_trace, ladder, cfg)
        assert result.num_segments == 30

    def test_rtt_applies_after_abandonment(self, ladder):
        trace = ThroughputTrace([30.0, 30.0] * 4, [10.0, 0.2] * 4)
        cfg = PlayerConfig(
            max_buffer=20.0, num_segments=30, abandonment=True, rtt=0.1
        )
        result = simulate_session(Fixed(2), trace, ladder, cfg)
        assert result.abandonments > 0
        assert result.num_segments == 30
