"""Tests for the QoE metrics and aggregation (§6 definitions)."""

import math

import pytest

from repro.qoe import (
    MeanCI,
    QoeMetrics,
    QoeSummary,
    qoe_from_session,
    split_by_rsd_quartile,
    summarize,
)
from repro.sim.network import ThroughputTrace
from repro.sim.player import SessionResult
from repro.sim.video import BitrateLadder, SsimModel


def make_result(qualities, ladder, rebuffer=0.0, wall=60.0):
    r = SessionResult(controller="t", ladder=ladder)
    r.qualities = list(qualities)
    r.rebuffer_time = rebuffer
    r.wall_duration = wall
    return r


class TestQoeFromSession:
    def test_log_utility_definition(self, ladder):
        result = make_result([0, 2], ladder)
        m = qoe_from_session(result)
        # utilities: 0 and 1 -> mean 0.5
        assert m.utility == pytest.approx(0.5)

    def test_rebuffer_ratio(self, ladder):
        result = make_result([0] * 10, ladder, rebuffer=6.0, wall=60.0)
        m = qoe_from_session(result)
        assert m.rebuffer_ratio == pytest.approx(0.1)

    def test_switching_rate(self, ladder):
        result = make_result([0, 1, 1, 2], ladder)
        m = qoe_from_session(result)
        assert m.switching_rate == pytest.approx(2.0 / 3.0)

    def test_single_segment_switching(self, ladder):
        m = qoe_from_session(make_result([1], ladder))
        assert m.switching_rate == 0.0

    def test_score_weights(self, ladder):
        result = make_result([2, 2], ladder, rebuffer=3.0, wall=60.0)
        m = qoe_from_session(result, beta=10.0, gamma=1.0)
        assert m.qoe == pytest.approx(1.0 - 10.0 * 0.05 - 0.0)

    def test_ssim_utility(self, ladder):
        model = SsimModel()
        result = make_result([0, 2], ladder)
        m = qoe_from_session(result, utility="ssim", ssim_model=model)
        expected = (model.normalized(1.0) + model.normalized(6.0)) / 2
        assert m.utility == pytest.approx(expected)

    def test_ssim_requires_model(self, ladder):
        with pytest.raises(ValueError):
            qoe_from_session(make_result([0], ladder), utility="ssim")

    def test_unknown_utility(self, ladder):
        with pytest.raises(ValueError):
            qoe_from_session(make_result([0], ladder), utility="vmaf")

    def test_empty_session_raises(self, ladder):
        with pytest.raises(ValueError):
            qoe_from_session(make_result([], ladder))


class TestQoeMetricsValidation:
    def test_accepts_valid(self):
        QoeMetrics(utility=0.5, rebuffer_ratio=0.1, switching_rate=0.2, qoe=0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"utility": 1.5},
            {"utility": -0.1},
            {"rebuffer_ratio": 1.5},
            {"switching_rate": 2.0},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        base = dict(utility=0.5, rebuffer_ratio=0.1, switching_rate=0.2, qoe=0.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            QoeMetrics(**base)


class TestMeanCI:
    def test_single_value(self):
        ci = MeanCI.of([3.0])
        assert ci.mean == 3.0
        assert ci.half_width == 0.0

    def test_known_values(self):
        ci = MeanCI.of([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.half_width == pytest.approx(1.96 * 1.0 / math.sqrt(3), rel=1e-2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MeanCI.of([])

    def test_str(self):
        assert "±" in str(MeanCI.of([1.0, 2.0]))


class TestSummaries:
    def _metrics(self, n=5):
        return [
            QoeMetrics(
                utility=0.5 + 0.01 * i,
                rebuffer_ratio=0.01 * i,
                switching_rate=0.1,
                qoe=0.4 - 0.01 * i,
            )
            for i in range(n)
        ]

    def test_summary_of(self):
        s = summarize(self._metrics())
        assert isinstance(s, QoeSummary)
        assert s.utility.mean == pytest.approx(0.52)
        assert s.qoe.n == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestQuartileSplit:
    def test_split_sizes(self):
        traces = [
            ThroughputTrace([1.0] * 10, [5.0 + (i % 7) * j for j in range(10)])
            for i in range(8)
        ]
        quartiles = split_by_rsd_quartile(traces)
        assert sorted(quartiles) == ["Q1", "Q2", "Q3", "Q4"]
        assert sum(len(v) for v in quartiles.values()) == 8
        sizes = [len(v) for v in quartiles.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_ordering_by_rsd(self):
        flat = ThroughputTrace.constant(5.0, 10.0)
        wild = ThroughputTrace([1.0] * 10, [1.0, 20.0] * 5)
        mild = ThroughputTrace([1.0] * 10, [4.0, 6.0] * 5)
        medium = ThroughputTrace([1.0] * 10, [2.0, 9.0] * 5)
        quartiles = split_by_rsd_quartile([wild, flat, medium, mild])
        assert quartiles["Q1"] == [1]  # the constant trace
        assert quartiles["Q4"] == [0]  # the wild trace

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            split_by_rsd_quartile([])


class TestDistributionSummary:
    def _metrics(self):
        from repro.qoe import QoeMetrics

        return [
            QoeMetrics(
                utility=0.5, rebuffer_ratio=0.0,
                switching_rate=i / 100.0, qoe=i / 10.0,
            )
            for i in range(11)
        ]

    def test_percentiles_ordered(self):
        from repro.qoe import distribution

        d = distribution(self._metrics(), "qoe")
        assert d.p5 <= d.p25 <= d.median <= d.p75 <= d.p95
        assert d.n == 11

    def test_median_of_uniform(self):
        from repro.qoe import distribution

        d = distribution(self._metrics(), "qoe")
        assert d.median == pytest.approx(0.5)

    def test_component_selection(self):
        from repro.qoe import distribution

        d = distribution(self._metrics(), "switching_rate")
        assert d.p95 <= 0.1 + 1e-9

    def test_invalid_component(self):
        from repro.qoe import distribution

        with pytest.raises(ValueError):
            distribution(self._metrics(), "startup")

    def test_empty_raises(self):
        from repro.qoe.aggregate import DistributionSummary

        with pytest.raises(ValueError):
            DistributionSummary.of([])

    def test_single_value(self):
        from repro.qoe.aggregate import DistributionSummary

        d = DistributionSummary.of([3.0])
        assert d.p5 == d.p95 == 3.0

    def test_str(self):
        from repro.qoe.aggregate import DistributionSummary

        assert "med=" in str(DistributionSummary.of([1.0, 2.0]))

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 20, 101])
    def test_of_array_parity_with_of(self, n):
        """of_array must agree with of() to float precision."""
        import numpy as np

        from repro.qoe.aggregate import DistributionSummary

        rng = np.random.default_rng(n)
        values = rng.normal(0.0, 3.0, size=n)
        listwise = DistributionSummary.of(list(values))
        arraywise = DistributionSummary.of_array(values)
        for field_name in ("p5", "p25", "median", "p75", "p95"):
            assert getattr(arraywise, field_name) == pytest.approx(
                getattr(listwise, field_name), abs=1e-12
            )
        assert arraywise.n == listwise.n == n

    def test_of_array_flattens_and_validates(self):
        import numpy as np

        from repro.qoe.aggregate import DistributionSummary

        d = DistributionSummary.of_array(np.ones((4, 5)))
        assert d.n == 20 and d.median == 1.0
        with pytest.raises(ValueError):
            DistributionSummary.of_array(np.empty(0))
