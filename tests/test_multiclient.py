"""Tests for the shared-bottleneck multi-client simulator."""

import numpy as np
import pytest

from repro.abr import BolaController, HybController
from repro.core.controller import SodaController
from repro.faults import FaultPlan
from repro.sim.multiclient import (
    jain_fairness,
    simulate_shared_link,
)
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.video import BitrateLadder


@pytest.fixture
def link():
    return ThroughputTrace.constant(16.0, 600.0)


@pytest.fixture
def mc_config():
    return PlayerConfig(max_buffer=20.0, num_segments=25, live_delay=20.0)


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_unfair(self):
        assert jain_fairness([10.0, 0.0]) == pytest.approx(0.5)

    def test_partial(self):
        idx = jain_fairness([4.0, 2.0])
        assert 0.5 < idx < 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_all_zero_is_not_fair(self):
        # A dead link that delivered nothing to anybody must not score as
        # "perfectly fair" (the 0/0 case is defined as 0.0, not 1.0).
        assert jain_fairness([0.0, 0.0]) == 0.0
        assert jain_fairness([0.0]) == 0.0
        assert jain_fairness([0.0, 0.0, 0.0, 0.0]) == 0.0


class TestSharedLink:
    def test_validation(self, ladder, link, mc_config):
        with pytest.raises(ValueError):
            simulate_shared_link([], link, ladder, mc_config)
        c = SodaController()
        with pytest.raises(ValueError):
            simulate_shared_link([c, c], link, ladder, mc_config)
        with pytest.raises(ValueError):
            simulate_shared_link([c], link, ladder, mc_config, tick=0.0)

    def test_all_clients_complete(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController() for _ in range(3)], link, ladder, mc_config
        )
        assert len(out.results) == 3
        for result in out.results:
            assert result.num_segments == 25

    def test_identical_clients_are_fair(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [BolaController() for _ in range(4)], link, ladder, mc_config
        )
        assert out.fairness_index() > 0.9

    def test_conservation(self, ladder, link, mc_config):
        """Delivered bits never exceed the link's capacity-time."""
        out = simulate_shared_link(
            [SodaController() for _ in range(3)], link, ladder, mc_config
        )
        assert out.delivered_megabits <= (
            out.link_capacity_mean * out.duration + 1e-6
        )
        assert 0.0 <= out.link_utilisation() <= 1.0

    def test_delivered_matches_segment_sizes(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController(), HybController()], link, ladder, mc_config
        )
        expected = sum(
            ladder.segment_size(q, i)
            for r in out.results
            for i, q in enumerate(r.qualities)
        )
        assert out.delivered_megabits == pytest.approx(expected, rel=0.02)

    def test_single_client_close_to_plain_player(self, ladder, mc_config):
        """One client on the link ≈ the single-player simulator."""
        link = ThroughputTrace.constant(8.0, 600.0)
        shared = simulate_shared_link(
            [BolaController()], link, ladder, mc_config
        )
        plain = simulate_session(BolaController(), link, ladder, mc_config)
        shared_mean = np.mean(shared.results[0].bitrates)
        plain_mean = np.mean(plain.bitrates)
        assert shared_mean == pytest.approx(plain_mean, rel=0.25)

    def test_deterministic(self, ladder, link, mc_config):
        runs = [
            simulate_shared_link(
                [SodaController(), SodaController()], link, ladder, mc_config
            )
            for _ in range(2)
        ]
        assert runs[0].results[0].qualities == runs[1].results[0].qualities

    def test_competition_lowers_bitrate(self, ladder, mc_config):
        """Four clients on the link get less than one client alone."""
        link = ThroughputTrace.constant(12.0, 600.0)
        alone = simulate_shared_link(
            [SodaController()], link, ladder, mc_config
        )
        crowd = simulate_shared_link(
            [SodaController() for _ in range(4)], link, ladder, mc_config
        )
        assert max(crowd.mean_bitrates()) < alone.mean_bitrates()[0] + 1e-9

    def test_scarce_link_causes_rebuffering(self, ladder, mc_config):
        """Below N × r_min the clients must stall."""
        link = ThroughputTrace.constant(1.5, 600.0)
        out = simulate_shared_link(
            [SodaController(), SodaController()], link, ladder, mc_config
        )
        assert any(r.rebuffer_time > 0 for r in out.results)

    def test_mixed_controllers(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController(), BolaController(), HybController()],
            link, ladder, mc_config,
        )
        names = [r.controller for r in out.results]
        assert names == ["soda", "bola", "hyb"]


class TestSessionResultParity:
    """Shared-link results must account like single-player ones."""

    def test_fault_counters_match_plan(self, ladder, link, mc_config):
        plans = [FaultPlan.of_intensity(0.4, seed=3).fork(i) for i in range(2)]
        out = simulate_shared_link(
            [SodaController(), SodaController()],
            link, ladder, mc_config, faults=plans,
        )
        assert any(r.faults_injected > 0 for r in out.results)
        for result, plan in zip(out.results, plans):
            assert result.faults_injected == plan.injected
            assert result.retries >= 0

    def test_single_client_matches_plain_player_accounting(
        self, ladder, mc_config
    ):
        """Same seed, same plan: fault accounting is identical."""
        link = ThroughputTrace.constant(8.0, 600.0)
        shared = simulate_shared_link(
            [SodaController()], link, ladder, mc_config,
            faults=[FaultPlan.of_intensity(0.3, seed=11)],
        ).results[0]
        plain = simulate_session(
            SodaController(), link, ladder, mc_config,
            faults=FaultPlan.of_intensity(0.3, seed=11),
        )
        assert shared.faults_injected > 0
        # Both simulators consume the same seeded fault stream, so every
        # counter the runner's fault-accounting audit checks must agree.
        assert shared.faults_injected == plain.faults_injected
        assert shared.retries == plain.retries
        assert shared.num_segments == plain.num_segments

    def test_trace_and_cache_counters_copied(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController()], link, ladder, mc_config
        )
        result = out.results[0]
        assert result.trace == (getattr(link, "name", None) or "")
        # The fast backend's plan cache serves repeat situations; the
        # shared-link simulator must surface its counters like the
        # single-player one does.
        assert result.plan_cache_hits + result.plan_cache_misses > 0

    def test_wall_duration_is_per_client(self, ladder, mc_config):
        """A client that finishes early keeps its own session length."""
        link = ThroughputTrace.constant(16.0, 600.0)
        fast = PlayerConfig(max_buffer=20.0, num_segments=5, live_delay=20.0)
        out = simulate_shared_link(
            [SodaController(), SodaController()], link, ladder, fast,
        )
        for result in out.results:
            assert 0 < result.wall_duration <= out.duration + 1e-9
            # Time conservation (the runner audit's invariant): wall time
            # covers playback, rebuffering, and idle waiting.
            assert result.wall_duration >= result.rebuffer_time
