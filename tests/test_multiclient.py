"""Tests for the shared-bottleneck multi-client simulator."""

import numpy as np
import pytest

from repro.abr import BolaController, HybController
from repro.core.controller import SodaController
from repro.sim.multiclient import (
    jain_fairness,
    simulate_shared_link,
)
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.video import BitrateLadder


@pytest.fixture
def link():
    return ThroughputTrace.constant(16.0, 600.0)


@pytest.fixture
def mc_config():
    return PlayerConfig(max_buffer=20.0, num_segments=25, live_delay=20.0)


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_unfair(self):
        assert jain_fairness([10.0, 0.0]) == pytest.approx(0.5)

    def test_partial(self):
        idx = jain_fairness([4.0, 2.0])
        assert 0.5 < idx < 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestSharedLink:
    def test_validation(self, ladder, link, mc_config):
        with pytest.raises(ValueError):
            simulate_shared_link([], link, ladder, mc_config)
        c = SodaController()
        with pytest.raises(ValueError):
            simulate_shared_link([c, c], link, ladder, mc_config)
        with pytest.raises(ValueError):
            simulate_shared_link([c], link, ladder, mc_config, tick=0.0)

    def test_all_clients_complete(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController() for _ in range(3)], link, ladder, mc_config
        )
        assert len(out.results) == 3
        for result in out.results:
            assert result.num_segments == 25

    def test_identical_clients_are_fair(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [BolaController() for _ in range(4)], link, ladder, mc_config
        )
        assert out.fairness_index() > 0.9

    def test_conservation(self, ladder, link, mc_config):
        """Delivered bits never exceed the link's capacity-time."""
        out = simulate_shared_link(
            [SodaController() for _ in range(3)], link, ladder, mc_config
        )
        assert out.delivered_megabits <= (
            out.link_capacity_mean * out.duration + 1e-6
        )
        assert 0.0 <= out.link_utilisation() <= 1.0

    def test_delivered_matches_segment_sizes(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController(), HybController()], link, ladder, mc_config
        )
        expected = sum(
            ladder.segment_size(q, i)
            for r in out.results
            for i, q in enumerate(r.qualities)
        )
        assert out.delivered_megabits == pytest.approx(expected, rel=0.02)

    def test_single_client_close_to_plain_player(self, ladder, mc_config):
        """One client on the link ≈ the single-player simulator."""
        link = ThroughputTrace.constant(8.0, 600.0)
        shared = simulate_shared_link(
            [BolaController()], link, ladder, mc_config
        )
        plain = simulate_session(BolaController(), link, ladder, mc_config)
        shared_mean = np.mean(shared.results[0].bitrates)
        plain_mean = np.mean(plain.bitrates)
        assert shared_mean == pytest.approx(plain_mean, rel=0.25)

    def test_deterministic(self, ladder, link, mc_config):
        runs = [
            simulate_shared_link(
                [SodaController(), SodaController()], link, ladder, mc_config
            )
            for _ in range(2)
        ]
        assert runs[0].results[0].qualities == runs[1].results[0].qualities

    def test_competition_lowers_bitrate(self, ladder, mc_config):
        """Four clients on the link get less than one client alone."""
        link = ThroughputTrace.constant(12.0, 600.0)
        alone = simulate_shared_link(
            [SodaController()], link, ladder, mc_config
        )
        crowd = simulate_shared_link(
            [SodaController() for _ in range(4)], link, ladder, mc_config
        )
        assert max(crowd.mean_bitrates()) < alone.mean_bitrates()[0] + 1e-9

    def test_scarce_link_causes_rebuffering(self, ladder, mc_config):
        """Below N × r_min the clients must stall."""
        link = ThroughputTrace.constant(1.5, 600.0)
        out = simulate_shared_link(
            [SodaController(), SodaController()], link, ladder, mc_config
        )
        assert any(r.rebuffer_time > 0 for r in out.results)

    def test_mixed_controllers(self, ladder, link, mc_config):
        out = simulate_shared_link(
            [SodaController(), BolaController(), HybController()],
            link, ladder, mc_config,
        )
        names = [r.controller for r in out.results]
        assert names == ["soda", "bola", "hyb"]
