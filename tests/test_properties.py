"""Cross-module property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.core.solver import plan_cost, solve_brute_force, solve_monotonic
from repro.qoe import qoe_from_session
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.video import BitrateLadder


@st.composite
def random_ladders(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    rates = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.2, max_value=30.0),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    # Ensure rungs are distinguishable.
    assume(all(b / a > 1.05 for a, b in zip(rates, rates[1:])))
    return BitrateLadder(rates, segment_duration=2.0)


@st.composite
def random_traces(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    durations = draw(
        st.lists(
            st.floats(min_value=2.0, max_value=30.0), min_size=n, max_size=n
        )
    )
    bandwidths = draw(
        st.lists(
            st.floats(min_value=0.3, max_value=50.0), min_size=n, max_size=n
        )
    )
    return ThroughputTrace(durations, bandwidths)


class TestSessionInvariants:
    @given(random_ladders(), random_traces(), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_soda_session_invariants(self, ladder, trace, seed):
        """Any SODA session satisfies the core accounting invariants."""
        cfg = PlayerConfig(max_buffer=20.0, num_segments=15)
        result = simulate_session(SodaController(), trace, ladder, cfg)
        assert result.num_segments == 15
        assert result.rebuffer_time >= 0.0
        assert result.startup_delay >= 0.0
        assert all(0.0 <= b <= 20.0 + 1e-6 for b in result.buffer_levels)
        assert all(dt > 0 for dt in result.download_times)
        assert all(0 <= q < ladder.levels for q in result.qualities)
        # Wall time is at least the total download time.
        assert result.wall_duration >= sum(result.download_times) - 1e-6
        # Starts are ordered in time.
        starts = result.download_starts
        assert all(a <= b + 1e-9 for a, b in zip(starts, starts[1:]))

    @given(random_ladders(), random_traces())
    @settings(max_examples=40, deadline=None)
    def test_qoe_components_in_range(self, ladder, trace):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=12)
        result = simulate_session(SodaController(), trace, ladder, cfg)
        m = qoe_from_session(result)
        assert 0.0 <= m.utility <= 1.0
        assert 0.0 <= m.rebuffer_ratio <= 1.0
        assert 0.0 <= m.switching_rate <= 1.0
        assert m.qoe == pytest.approx(
            m.utility - 10.0 * m.rebuffer_ratio - m.switching_rate
        )


class TestSolverCrossChecks:
    @given(
        random_ladders(),
        st.floats(min_value=0.2, max_value=40.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=0, max_value=5),
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=300.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_monotonic_vs_brute_force(
        self, ladder, omega, buffer_level, prev, beta, gamma
    ):
        prev_quality = min(prev, ladder.levels - 1)
        cfg = SodaConfig(horizon=3, beta=beta, gamma=gamma, target_buffer=10.0)
        mono = solve_monotonic(
            omega, buffer_level, prev_quality, ladder, cfg, max_buffer=20.0
        )
        brute = solve_brute_force(
            omega, buffer_level, prev_quality, ladder, cfg, max_buffer=20.0
        )
        # A feasible monotone plan implies a feasible brute-force plan (the
        # converse can fail: some corners admit only down-then-up plans,
        # which the controller covers with explicit fallbacks).
        if mono.feasible:
            assert brute.feasible
            # Brute force is the lower envelope; both verify via plan_cost.
            assert brute.objective <= mono.objective + 1e-9
            for plan in (mono, brute):
                assert plan_cost(
                    plan.sequence, omega, buffer_level, prev_quality,
                    ladder, cfg, max_buffer=20.0,
                ) == pytest.approx(plan.objective, rel=1e-9, abs=1e-9)

    @given(
        random_ladders(),
        st.floats(min_value=0.5, max_value=30.0),
        st.floats(min_value=0.0, max_value=18.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_committed_rung_feasible_one_step(self, ladder, omega, buffer_level):
        """Whatever SODA commits keeps the one-step model buffer in range,
        or is one of the documented fallbacks."""
        controller = SodaController()
        q = controller.decide(omega, buffer_level, None, ladder, max_buffer=20.0)
        if q is None:
            return
        plan = controller.last_plan
        if plan is not None and plan.feasible:
            x1 = buffer_level + omega * 2.0 / ladder.bitrate(q) - 2.0
            assert -1e-6 <= x1 <= 20.0 + 1e-6


class TestTraceSessionConservation:
    @given(random_traces(), st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_bits_delivered_match_sizes(self, trace, quality):
        """The bits the trace delivers during downloads equal segment sizes."""
        ladder = BitrateLadder([1.0, 2.0, 4.0], segment_duration=2.0)

        from repro.abr.base import AbrController

        class Fixed(AbrController):
            name = "fixed"

            def select_quality(self, obs):
                return quality

        cfg = PlayerConfig(max_buffer=30.0, num_segments=8, abandonment=False)
        result = simulate_session(Fixed(), trace, ladder, cfg)
        for i, (start, dt) in enumerate(
            zip(result.download_starts, result.download_times)
        ):
            delivered = trace.bits_between(start, start + dt)
            assert delivered == pytest.approx(
                ladder.segment_size(quality, i), rel=1e-6, abs=1e-6
            )
