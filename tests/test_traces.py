"""Tests for synthetic trace generators, loaders, and dataset prep."""

import io

import numpy as np
import pytest

from repro.sim.network import ThroughputTrace
from repro.traces import (
    DATASET_FACTORIES,
    MarkovLognormalGenerator,
    Regime,
    build_synthetic_datasets,
    fiveg_like,
    fourg_like,
    load_bandwidth_csv,
    load_irish_csv,
    load_mahimahi,
    prepare_sessions,
    puffer_like,
)


class TestRegime:
    def test_validation(self):
        with pytest.raises(ValueError):
            Regime(multiplier=0.0, mean_dwell=1.0)
        with pytest.raises(ValueError):
            Regime(multiplier=1.0, mean_dwell=0.0)


class TestGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovLognormalGenerator(target_mean=0.0, target_rsd=0.5)
        with pytest.raises(ValueError):
            MarkovLognormalGenerator(target_mean=1.0, target_rsd=-0.5)
        with pytest.raises(ValueError):
            MarkovLognormalGenerator(1.0, 0.5, ar_coefficient=1.0)
        with pytest.raises(ValueError):
            MarkovLognormalGenerator(1.0, 0.5, step=0.0)

    def test_regimes_exceeding_rsd_rejected(self):
        with pytest.raises(ValueError, match="exceeds the target RSD"):
            MarkovLognormalGenerator(
                target_mean=10.0,
                target_rsd=0.01,
                regimes=[Regime(10.0, 10.0), Regime(0.01, 10.0)],
            )

    def test_generate_duration(self):
        gen = puffer_like()
        trace = gen.generate(123.0, seed=1)
        assert trace.duration == pytest.approx(123.0)

    def test_generate_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            puffer_like().generate(0.0)

    def test_seed_reproducibility(self):
        gen = fourg_like()
        a = gen.generate(100.0, seed=42)
        b = gen.generate(100.0, seed=42)
        assert np.allclose(a.bandwidths, b.bandwidths)

    def test_seeds_differ(self):
        gen = fourg_like()
        a = gen.generate(100.0, seed=1)
        b = gen.generate(100.0, seed=2)
        assert not np.allclose(a.bandwidths, b.bandwidths)

    def test_dataset_sessions_distinct(self):
        traces = puffer_like().dataset(4, duration=60.0, seed=0)
        assert len(traces) == 4
        assert not np.allclose(traces[0].bandwidths, traces[1].bandwidths)

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            puffer_like().dataset(0)

    def test_floor_respected(self):
        gen = fiveg_like()
        trace = gen.generate(600.0, seed=3)
        assert float(np.min(trace.bandwidths)) >= gen.floor - 1e-12

    @pytest.mark.parametrize("name", sorted(DATASET_FACTORIES))
    def test_calibration_matches_figure9(self, name):
        """Long-run mean and RSD match the paper's Figure 9 statistics."""
        gen = DATASET_FACTORIES[name]()
        trace = gen.generate(30000.0, seed=7)
        stats = trace.stats()
        assert stats.mean == pytest.approx(gen.target_mean, rel=0.12)
        assert stats.rsd == pytest.approx(gen.target_rsd, rel=0.2)


class TestLoaders:
    def test_mahimahi_roundtrip(self):
        # 1500-byte packets: 100 per second = 1.2 Mb/s.
        lines = []
        for second in range(3):
            lines.extend(str(second * 1000 + i * 10) for i in range(100))
        trace = load_mahimahi(io.StringIO("\n".join(lines)))
        assert trace.duration == pytest.approx(3.0)
        assert trace.bandwidths[0] == pytest.approx(1.2)

    def test_mahimahi_empty_raises(self):
        with pytest.raises(ValueError):
            load_mahimahi(io.StringIO(""))

    def test_mahimahi_unsorted_raises(self):
        with pytest.raises(ValueError):
            load_mahimahi(io.StringIO("5\n3\n"))

    def test_mahimahi_bad_bin_raises(self):
        with pytest.raises(ValueError):
            load_mahimahi(io.StringIO("1\n"), bin_seconds=0.0)

    def test_bandwidth_csv(self):
        csv = "time,bandwidth\n0,4.0\n2,8.0\n3,2.0\n"
        trace = load_bandwidth_csv(io.StringIO(csv))
        assert trace.duration == pytest.approx(3.0)
        assert trace.bandwidth_at(1.0) == pytest.approx(4.0)
        assert trace.bandwidth_at(2.5) == pytest.approx(8.0)

    def test_bandwidth_csv_scaling(self):
        csv = "time,bandwidth\n0,4000\n1,8000\n"
        trace = load_bandwidth_csv(io.StringIO(csv), bandwidth_scale=1e-3)
        assert trace.bandwidth_at(0.5) == pytest.approx(4.0)

    def test_bandwidth_csv_missing_column(self):
        with pytest.raises(ValueError, match="lacks column"):
            load_bandwidth_csv(io.StringIO("t,b\n0,1\n1,2\n"))

    def test_bandwidth_csv_too_short(self):
        with pytest.raises(ValueError):
            load_bandwidth_csv(io.StringIO("time,bandwidth\n0,1\n"))

    def test_bandwidth_csv_nonmonotonic(self):
        csv = "time,bandwidth\n0,1\n0,2\n"
        with pytest.raises(ValueError, match="strictly increasing"):
            load_bandwidth_csv(io.StringIO(csv))

    def test_bandwidth_csv_nan_names_line(self):
        csv = "time,bandwidth\n0,4.0\n1,nan\n2,5.0\n"
        with pytest.raises(ValueError, match="line 3"):
            load_bandwidth_csv(io.StringIO(csv))

    def test_bandwidth_csv_negative_names_line(self):
        csv = "time,bandwidth\n0,4.0\n1,-2.0\n"
        with pytest.raises(ValueError, match="line 3.*negative"):
            load_bandwidth_csv(io.StringIO(csv))

    def test_bandwidth_csv_unparseable_names_line(self):
        csv = "time,bandwidth\n0,4.0\n1,garbage\n"
        with pytest.raises(ValueError, match="line 3.*unparseable"):
            load_bandwidth_csv(io.StringIO(csv))

    def test_mahimahi_garbage_line_named(self):
        with pytest.raises(ValueError, match="line 2"):
            load_mahimahi(io.StringIO("100\nnot-a-timestamp\n"))

    def test_irish_csv_nan_treated_as_gap(self):
        csv = "DL_bitrate\n12000\nnan\n6000\n"
        trace = load_irish_csv(io.StringIO(csv))
        assert trace.bandwidth_at(1.5) == 0.0

    def test_irish_csv(self):
        csv = "Timestamp,DL_bitrate,UL_bitrate\n1,12000,100\n2,6000,100\n3,-,100\n"
        trace = load_irish_csv(io.StringIO(csv))
        assert len(trace) == 3
        assert trace.bandwidth_at(0.5) == pytest.approx(12.0)
        assert trace.bandwidth_at(2.5) == 0.0

    def test_irish_csv_missing_column(self):
        with pytest.raises(ValueError, match="DL_bitrate"):
            load_irish_csv(io.StringIO("a,b\n1,2\n"))

    def test_irish_csv_empty(self):
        with pytest.raises(ValueError, match="no data rows"):
            load_irish_csv(io.StringIO("DL_bitrate\n"))

    def test_loader_from_path(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time,bandwidth\n0,4.0\n1,8.0\n")
        trace = load_bandwidth_csv(path)
        assert trace.name.endswith("trace.csv")


class TestDatasetPrep:
    def test_prepare_filters_short(self):
        traces = [
            ThroughputTrace.constant(1.0, 30.0),
            ThroughputTrace.constant(2.0, 120.0),
        ]
        sessions = prepare_sessions(traces, session_seconds=60.0)
        assert len(sessions) == 2
        assert all(s.duration == pytest.approx(60.0) for s in sessions)

    def test_prepare_drops_tail(self):
        traces = [ThroughputTrace.constant(1.0, 150.0)]
        sessions = prepare_sessions(traces, session_seconds=60.0)
        assert len(sessions) == 2

    def test_prepare_validates(self):
        with pytest.raises(ValueError):
            prepare_sessions([], session_seconds=0.0)

    def test_build_synthetic_datasets(self):
        datasets = build_synthetic_datasets(2, session_seconds=30.0, seed=1)
        assert set(datasets) == {"puffer", "5g", "4g"}
        assert all(len(v) == 2 for v in datasets.values())

    def test_build_validates(self):
        with pytest.raises(ValueError):
            build_synthetic_datasets(0)
