"""Tests for SODA's cost model (SodaConfig, distortion/buffer/switch costs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import (
    SodaConfig,
    log_distortion,
    reciprocal_distortion,
)


class TestValidation:
    def test_defaults_valid(self):
        SodaConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon": 0},
            {"beta": -1.0},
            {"gamma": -0.1},
            {"epsilon": 0.0},
            {"epsilon": 1.5},
            {"distortion": "nope"},
            {"target_buffer": 0.0},
            {"download_safety": -1.0},
            {"switch_event_cost": -0.01},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SodaConfig(**kwargs)

    def test_with_replaces(self):
        cfg = SodaConfig().with_(horizon=3, gamma=7.0)
        assert cfg.horizon == 3
        assert cfg.gamma == 7.0
        # original unchanged
        assert SodaConfig().horizon == 5


class TestDistortionFunctions:
    @pytest.mark.parametrize("fn", [reciprocal_distortion, log_distortion])
    def test_strictly_decreasing(self, fn):
        values = [fn(r, 1.0, 60.0) for r in (1.0, 2.0, 10.0, 60.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("fn", [reciprocal_distortion, log_distortion])
    def test_positive(self, fn):
        assert fn(60.0, 1.0, 60.0) > 0.0
        assert fn(1.0, 1.0, 60.0) > 0.0

    def test_reciprocal_normalised_at_min(self):
        assert reciprocal_distortion(1.5, 1.5, 60.0) == pytest.approx(1.0)

    def test_log_normalised_range(self):
        assert log_distortion(1.5, 1.5, 60.0) == pytest.approx(1.0, abs=1e-9)
        assert log_distortion(60.0, 1.5, 60.0) == pytest.approx(0.02)

    def test_rejects_nonpositive_bitrate(self):
        with pytest.raises(ValueError):
            reciprocal_distortion(0.0, 1.0, 2.0)

    def test_degenerate_ladder(self):
        assert log_distortion(2.0, 2.0, 2.0) == 1.0

    def test_config_lookup(self):
        assert SodaConfig(distortion="log").distortion_fn() is log_distortion
        assert (
            SodaConfig(distortion="reciprocal").distortion_fn()
            is reciprocal_distortion
        )


class TestBufferCost:
    def test_zero_at_target(self):
        cfg = SodaConfig()
        assert cfg.buffer_cost(10.0, 10.0) == 0.0

    def test_quadratic_below(self):
        cfg = SodaConfig()
        assert cfg.buffer_cost(7.0, 10.0) == pytest.approx(9.0)

    def test_discounted_above(self):
        cfg = SodaConfig(epsilon=0.25)
        assert cfg.buffer_cost(13.0, 10.0) == pytest.approx(0.25 * 9.0)

    def test_asymmetry(self):
        cfg = SodaConfig(epsilon=0.1)
        below = cfg.buffer_cost(8.0, 10.0)
        above = cfg.buffer_cost(12.0, 10.0)
        assert above == pytest.approx(0.1 * below)

    @given(
        st.floats(min_value=0.0, max_value=40.0),
        st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_nonnegative(self, x, target):
        assert SodaConfig().buffer_cost(x, target) >= 0.0


class TestSwitchingCost:
    def test_zero_for_same_rate(self):
        cfg = SodaConfig(switch_event_cost=0.1)
        assert cfg.switching_cost(0.5, 0.5) == 0.0

    def test_squared_term(self):
        cfg = SodaConfig(switch_event_cost=0.0)
        assert cfg.switching_cost(0.7, 0.4) == pytest.approx(0.09)

    def test_event_term_added(self):
        cfg = SodaConfig(switch_event_cost=0.05)
        assert cfg.switching_cost(0.7, 0.4) == pytest.approx(0.09 + 0.05)

    def test_symmetric(self):
        cfg = SodaConfig()
        assert cfg.switching_cost(0.2, 0.9) == pytest.approx(
            cfg.switching_cost(0.9, 0.2)
        )


class TestTargetResolution:
    def test_explicit_target(self):
        assert SodaConfig(target_buffer=12.0).resolve_target(20.0) == 12.0

    def test_explicit_target_clamped(self):
        assert SodaConfig(target_buffer=30.0).resolve_target(20.0) == 20.0

    def test_default_fraction(self):
        assert SodaConfig().resolve_target(20.0) == pytest.approx(16.0)
        assert SodaConfig().resolve_target(15.0) == pytest.approx(12.0)
