"""Tests for the experiment harness, tables, and engagement models."""

import math

import numpy as np
import pytest

from repro.abr import BolaController
from repro.analysis import (
    DEVICE_FAMILIES,
    DeviceFamily,
    EngagementModel,
    SuiteResult,
    fit_line,
    format_series,
    format_table,
    qoe_table,
    relative_deltas,
    run_suite,
    standard_controllers,
)
from repro.core.controller import SodaController
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, SessionResult
from repro.sim.profiles import EvaluationProfile
from repro.sim.video import BitrateLadder


@pytest.fixture
def tiny_profile(ladder):
    return EvaluationProfile(
        name="tiny",
        ladder=ladder,
        player=PlayerConfig(max_buffer=20.0, num_segments=15),
    )


@pytest.fixture
def tiny_traces():
    return [
        ThroughputTrace.constant(5.0, 120.0),
        ThroughputTrace([20.0, 10.0] * 4, [7.0, 2.0] * 4),
    ]


class TestRunSuite:
    def test_runs_all_controllers(self, tiny_profile, tiny_traces):
        factories = {
            "soda": lambda: SodaController(),
            "bola": lambda: BolaController(),
        }
        result = run_suite(factories, tiny_traces, tiny_profile, "tiny-ds")
        assert set(result.per_controller) == {"soda", "bola"}
        assert all(len(v) == 2 for v in result.per_controller.values())
        summaries = result.summaries()
        assert set(summaries) == {"soda", "bola"}

    def test_validates_inputs(self, tiny_profile, tiny_traces):
        with pytest.raises(ValueError):
            run_suite({}, tiny_traces, tiny_profile)
        with pytest.raises(ValueError):
            run_suite({"x": lambda: SodaController()}, [], tiny_profile)

    def test_improvement_over_best_baseline(self, tiny_profile, tiny_traces):
        factories = {
            "soda": lambda: SodaController(),
            "bola": lambda: BolaController(),
        }
        result = run_suite(factories, tiny_traces, tiny_profile)
        imp = result.improvement_over_best_baseline()
        assert math.isfinite(imp)

    def test_best_baseline_requires_baselines(self):
        result = SuiteResult(profile="p", dataset="d")
        result.per_controller["soda"] = []
        with pytest.raises(ValueError):
            result.best_baseline_qoe()

    def test_standard_controllers_complete(self):
        factories = standard_controllers()
        assert set(factories) == {"soda", "hyb", "bola", "dynamic", "mpc"}
        for factory in factories.values():
            controller = factory()
            assert hasattr(controller, "select_quality")
        # factories produce fresh instances
        assert factories["soda"]() is not factories["soda"]()


class TestTables:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.5000" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        assert "s1" in text and "s2" in text
        assert len(text.splitlines()) == 4

    def test_format_series_validates(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [0.1]})

    def test_qoe_table(self, tiny_profile, tiny_traces):
        result = run_suite(
            {"soda": lambda: SodaController()}, tiny_traces, tiny_profile
        )
        text = qoe_table(result.summaries())
        assert "soda" in text
        assert "rebuf ratio" in text


class TestEngagement:
    def test_duration_decreases_with_switching(self):
        model = EngagementModel()
        assert model.expected_duration(0.2) < model.expected_duration(0.0)

    def test_duration_decreases_with_rebuffering(self):
        model = EngagementModel()
        assert model.expected_duration(0.0, 0.05) < model.expected_duration(0.0)

    def test_calibration_rebuffering(self):
        """[7]: +1% rebuffering costs roughly 3 minutes of a 90-min session."""
        model = EngagementModel()
        loss = model.expected_duration(0.0, 0.0) - model.expected_duration(0.0, 0.01)
        assert loss == pytest.approx(3.0, rel=0.15)

    def test_relative_change_sign(self):
        model = EngagementModel()
        change = model.relative_duration_change(0.01, 0.0, 0.10, 0.0)
        assert change > 0.0

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            EngagementModel().expected_duration(-0.1)

    def test_watch_fraction_population(self):
        model = EngagementModel()
        rates = np.linspace(0.0, 0.3, 200)
        watch = model.sample_watch_fractions(rates, seed=0)
        assert np.all(watch > 0.0) and np.all(watch <= 0.25)
        slope, intercept = fit_line(rates, watch)
        assert slope < 0
        # Figure 1's headline: under 10% watched at a 20% switching rate.
        assert slope * 0.2 + intercept < 0.12

    def test_fit_line_validates(self):
        with pytest.raises(ValueError):
            fit_line([1.0], [2.0])

    def test_watch_fractions_seed_determinism(self):
        model = EngagementModel()
        rates = np.linspace(0.0, 0.3, 50)
        a = model.sample_watch_fractions(rates, seed=11)
        b = model.sample_watch_fractions(rates, seed=11)
        assert np.array_equal(a, b)
        c = model.sample_watch_fractions(rates, seed=12)
        assert not np.array_equal(a, c)

    def test_watch_fractions_explicit_rng_takes_precedence(self):
        model = EngagementModel()
        rates = np.zeros(40)
        a = model.sample_watch_fractions(
            rates, seed=999, rng=np.random.default_rng(5)
        )
        b = model.sample_watch_fractions(rates, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_watch_fractions_draw_count_contract(self):
        """Exactly len(rates) normal draws advance the caller's generator."""
        model = EngagementModel()
        rng = np.random.default_rng(7)
        model.sample_watch_fractions(np.zeros(25), rng=rng)
        witness = np.random.default_rng(7)
        witness.normal(0.0, 0.05, size=25)
        assert rng.standard_normal() == witness.standard_normal()


class TestProduction:
    def test_device_families_defined(self):
        names = {f.name for f in DEVICE_FAMILIES}
        assert names == {"html5", "smart-tv", "set-top-box"}

    def test_family_generator_stats(self):
        fam = DEVICE_FAMILIES[0]
        trace = fam.generator().generate(20000.0, seed=1)
        assert trace.stats().mean == pytest.approx(fam.mean_mbps, rel=0.15)

    def test_family_traces(self):
        traces = DEVICE_FAMILIES[1].traces(3, duration=30.0, seed=2)
        assert len(traces) == 3

    def _result(self, ladder, qualities, rebuffer, wall=60.0):
        r = SessionResult(controller="x", ladder=ladder)
        r.qualities = qualities
        r.rebuffer_time = rebuffer
        r.wall_duration = wall
        return r

    def test_relative_deltas(self, ladder):
        fam = DEVICE_FAMILIES[0]
        soda = [self._result(ladder, [2, 2, 2, 2], rebuffer=0.0)]
        base = [self._result(ladder, [0, 2, 0, 2], rebuffer=3.0)]
        deltas = relative_deltas(fam, soda, base)
        assert deltas.switching_rate == pytest.approx(-1.0)
        assert deltas.rebuffer_ratio == pytest.approx(-1.0)
        assert deltas.bitrate > 0
        assert deltas.viewing_duration > 0

    def test_relative_deltas_validates(self, ladder):
        fam = DEVICE_FAMILIES[0]
        with pytest.raises(ValueError):
            relative_deltas(fam, [], [])
