"""Tests for the fault-injection subsystem and the resilient pipeline."""

import math
import time

import numpy as np
import pytest

from repro.abr import BolaController, ResilientController
from repro.abr.base import AbrController
from repro.faults import (
    CLEAN,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultSpec,
    compose,
)
from repro.prediction.base import ThroughputPredictor
from repro.prediction.ema import EmaPredictor
from repro.sim import (
    LivelockError,
    PlayerConfig,
    ThroughputTrace,
    simulate_session,
    simulate_shared_link,
)
from repro.sim.video import youtube_hd_ladder
from repro.analysis import sweep_fault_intensity
from repro.sim.profiles import EvaluationProfile


# ----------------------------------------------------------------------
# Helper controllers
# ----------------------------------------------------------------------
class FixedController(AbrController):
    name = "fixed"

    def __init__(self, quality: int = 0):
        super().__init__()
        self.quality = quality

    def select_quality(self, obs):
        return self.quality


class RecordingController(AbrController):
    """Remembers every sample and observation it is given."""

    name = "recording"

    def __init__(self):
        super().__init__()
        self.samples = []
        self.observations = []

    def on_download(self, sample):
        self.samples.append(sample)

    def select_quality(self, obs):
        self.observations.append(obs)
        return 0


class CrashingController(AbrController):
    name = "crashing"

    def select_quality(self, obs):
        raise RuntimeError("solver exploded")


class BadRungController(AbrController):
    name = "badrung"

    def select_quality(self, obs):
        return 99


class NanRungController(AbrController):
    name = "nanrung"

    def select_quality(self, obs):
        return float("nan")


class DeferForeverController(AbrController):
    name = "deferforever"

    def select_quality(self, obs):
        return None


class SlowController(AbrController):
    name = "slow"

    def select_quality(self, obs):
        time.sleep(0.02)
        return 0


class NanPredictor(ThroughputPredictor):
    name = "nanpred"

    def predict_scalar(self, now):
        return float("nan")


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def ladder():
    return youtube_hd_ladder()


@pytest.fixture
def trace():
    return ThroughputTrace.from_samples(
        [4.0 + (i % 5) for i in range(180)], 1.0, name="varied"
    )


@pytest.fixture
def config():
    return PlayerConfig(num_segments=40, live_delay=None)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_zero_intensity_is_clean(self):
        plan = FaultPlan.of_intensity(0.0, seed=1)
        for i in range(200):
            assert plan.on_attempt(float(i), i, 0, 0).is_clean

    def test_deterministic_under_seed(self):
        def stream(seed):
            plan = FaultPlan.of_intensity(0.6, seed=seed)
            return [plan.on_attempt(float(i), i, 0, 2) for i in range(300)]

        assert stream(5) == stream(5)
        assert stream(5) != stream(6)

    def test_reset_rewinds_the_stream(self):
        plan = FaultPlan.of_intensity(0.6, seed=9)
        first = [plan.on_attempt(float(i), i, 0, 1) for i in range(100)]
        plan.reset()
        again = [plan.on_attempt(float(i), i, 0, 1) for i in range(100)]
        assert first == again

    def test_fork_gives_independent_streams(self):
        plan = FaultPlan.of_intensity(0.6, seed=3)
        a = plan.fork(0)
        b = plan.fork(1)
        sa = [a.on_attempt(float(i), i, 0, 1) for i in range(200)]
        sb = [b.on_attempt(float(i), i, 0, 1) for i in range(200)]
        assert sa != sb

    def test_failures_bounded_per_segment(self):
        plan = FaultPlan(FaultSpec(failure_rate=1.0, max_consecutive_failures=4))
        decisions = [plan.on_attempt(float(i), 7, i, 0) for i in range(10)]
        assert sum(d.failed for d in decisions) == 4

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(stall_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(max_consecutive_failures=0)
        with pytest.raises(ValueError):
            FaultPlan.of_intensity(-0.1)

    def test_compose_merges_faults(self):
        failures = FaultPlan(FaultSpec(failure_rate=1.0))
        spikes = FaultPlan(FaultSpec(latency_rate=1.0, latency_seconds=0.2))
        merged = compose(failures, spikes)
        d = merged.on_attempt(0.0, 0, 0, 0)
        assert d.failed
        assert FaultKind.FAILURE in d.kinds
        with pytest.raises(ValueError):
            compose()

    def test_clean_decision(self):
        assert CLEAN.is_clean
        assert not FaultDecision(failed=True, kinds=(FaultKind.FAILURE,)).is_clean


# ----------------------------------------------------------------------
# Player under faults
# ----------------------------------------------------------------------
class TestPlayerFaults:
    @pytest.mark.parametrize("seed", range(8))
    def test_session_never_raises_and_invariants_hold(
        self, ladder, trace, config, seed
    ):
        rng = np.random.default_rng(seed)
        intensity = float(rng.uniform(0.05, 1.0))
        plan = FaultPlan.of_intensity(intensity, seed=seed)
        result = simulate_session(
            BolaController(), trace, ladder, config, faults=plan
        )
        assert result.num_segments == config.num_segments
        assert min(result.buffer_levels) >= 0.0
        assert result.rebuffer_time >= 0.0
        assert result.startup_delay >= 0.0
        assert all(0 <= q < ladder.levels for q in result.qualities)
        assert all(dt > 0 for dt in result.download_times)

    def test_failures_trigger_retries_and_downshift(self, ladder, trace):
        cfg = PlayerConfig(
            num_segments=20, live_delay=None, max_retries=2, retry_backoff=0.1
        )
        plan = FaultPlan(
            FaultSpec(failure_rate=1.0, failure_wasted_seconds=0.2), seed=0
        )
        result = simulate_session(
            FixedController(3), trace, ladder, cfg, faults=plan
        )
        # Every segment exhausts its retry budget and lands on rung 0.
        assert result.retries == 20 * 2
        assert result.faults_injected > 0
        assert all(q == 0 for q in result.qualities)

    def test_downshift_can_be_disabled(self, ladder, trace):
        cfg = PlayerConfig(
            num_segments=10, live_delay=None, max_retries=2,
            retry_backoff=0.1, downshift_on_retry=False, abandonment=False,
        )
        # One failure per segment, then clean retries at the original rung.
        plan = FaultPlan(
            FaultSpec(failure_rate=1.0, max_consecutive_failures=1), seed=0
        )
        result = simulate_session(
            FixedController(3), trace, ladder, cfg, faults=plan
        )
        assert all(q == 3 for q in result.qualities)
        assert result.retries == 10

    def test_download_timeout_aborts_slow_attempts(self, ladder):
        slow = ThroughputTrace.constant(0.4, 600.0)
        cfg = PlayerConfig(
            num_segments=5, live_delay=None, max_retries=3,
            retry_backoff=0.1, download_timeout=4.0,
        )
        result = simulate_session(
            FixedController(ladder.levels - 1), slow, ladder, cfg
        )
        assert result.retries > 0
        assert result.num_segments == 5

    def test_corrupt_samples_reach_controller_not_qoe(self, ladder, trace):
        cfg = PlayerConfig(num_segments=30, live_delay=None)
        plan = FaultPlan(FaultSpec(corrupt_rate=1.0), seed=2)
        controller = RecordingController()
        result = simulate_session(controller, trace, ladder, cfg, faults=plan)
        observed = [s.throughput for s in controller.samples]
        assert any(not math.isfinite(v) or v <= 0 for v in observed)
        # The QoE record keeps the true measured throughputs.
        assert all(math.isfinite(v) and v > 0 for v in result.throughputs)

    def test_fault_free_run_identical_to_baseline(self, ladder, trace, config):
        plain = simulate_session(BolaController(), trace, ladder, config)
        with_plan = simulate_session(
            BolaController(), trace, ladder, config,
            faults=FaultPlan.of_intensity(0.0, seed=1),
        )
        assert plain.qualities == with_plan.qualities
        assert plain.rebuffer_time == with_plan.rebuffer_time
        assert with_plan.faults_injected == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlayerConfig(max_retries=-1)
        with pytest.raises(ValueError):
            PlayerConfig(retry_backoff=-0.5)
        with pytest.raises(ValueError):
            PlayerConfig(download_timeout=0.0)

    def test_livelock_error_names_controller_and_segment(
        self, ladder, trace, config
    ):
        with pytest.raises(LivelockError) as excinfo:
            simulate_session(DeferForeverController(), trace, ladder, config)
        assert excinfo.value.controller == "deferforever"
        assert excinfo.value.segment_index == 0
        assert "deferforever" in str(excinfo.value)
        assert "segment 0" in str(excinfo.value)


# ----------------------------------------------------------------------
# Shared link under faults
# ----------------------------------------------------------------------
class TestSharedLinkFaults:
    def test_completes_with_per_client_plans(self, ladder):
        link = ThroughputTrace.constant(20.0, 600.0)
        cfg = PlayerConfig(num_segments=15, live_delay=None)
        controllers = [BolaController(), BolaController()]
        plans = [FaultPlan.of_intensity(0.5, seed=4), None]
        outcome = simulate_shared_link(
            controllers, link, ladder, cfg, faults=plans
        )
        faulted, clean = outcome.results
        assert faulted.num_segments == 15 and clean.num_segments == 15
        assert faulted.faults_injected > 0
        assert clean.faults_injected == 0
        for r in outcome.results:
            assert r.rebuffer_time >= 0.0
            assert min(r.buffer_levels) >= 0.0

    def test_faults_length_must_match_clients(self, ladder):
        link = ThroughputTrace.constant(20.0, 600.0)
        with pytest.raises(ValueError, match="per client"):
            simulate_shared_link(
                [BolaController()], link, ladder,
                PlayerConfig(num_segments=2),
                faults=[None, None],
            )

    def test_livelock_error_in_shared_link(self, ladder):
        link = ThroughputTrace.constant(20.0, 600.0)
        cfg = PlayerConfig(num_segments=3, live_delay=None)
        with pytest.raises(LivelockError):
            simulate_shared_link([DeferForeverController()], link, ladder, cfg)


# ----------------------------------------------------------------------
# ResilientController
# ----------------------------------------------------------------------
class TestResilientController:
    def survives(self, inner, ladder, trace, config, plan=None):
        controller = ResilientController(inner)
        result = simulate_session(
            controller, trace, ladder, config, faults=plan
        )
        assert result.num_segments == config.num_segments
        assert min(result.buffer_levels) >= 0.0
        return controller, result

    def test_crashing_inner_completes_under_20pct_failures(
        self, ladder, trace, config
    ):
        plan = FaultPlan.failures_only(0.2, seed=13)
        controller, result = self.survives(
            CrashingController(), ladder, trace, config, plan
        )
        assert controller.caught_exceptions == config.num_segments
        assert result.fallback_decisions == config.num_segments
        assert result.faults_injected > 0

    def test_invalid_rung_inner_falls_back(self, ladder, trace, config):
        controller, result = self.survives(
            BadRungController(), ladder, trace, config
        )
        assert result.fallback_decisions == config.num_segments
        assert controller.caught_exceptions == 0

    def test_nan_rung_inner_falls_back(self, ladder, trace, config):
        controller, result = self.survives(
            NanRungController(), ladder, trace, config
        )
        assert result.fallback_decisions == config.num_segments

    def test_defer_storm_guard_prevents_livelock(self, ladder, trace):
        cfg = PlayerConfig(num_segments=5, live_delay=None)
        controller = ResilientController(
            DeferForeverController(), max_consecutive_defers=10
        )
        result = simulate_session(controller, trace, ladder, cfg)
        assert result.num_segments == 5
        assert result.fallback_decisions == 5

    def test_watchdog_retires_slow_inner(self, ladder, trace):
        cfg = PlayerConfig(num_segments=10, live_delay=None)
        controller = ResilientController(
            SlowController(), solve_timeout=0.001, max_watchdog_trips=3
        )
        result = simulate_session(controller, trace, ladder, cfg)
        assert controller.watchdog_trips == 3
        assert result.fallback_decisions == 10

    def test_nan_predictions_are_clamped(self, ladder, trace, config):
        from repro.abr import HybController

        inner = HybController(predictor=NanPredictor())
        controller, result = self.survives(inner, ladder, trace, config)
        # The safe predictor collapses NaN to 0, HYB's own floor handles 0.
        assert all(0 <= q < ladder.levels for q in result.qualities)

    def test_sanitizes_corrupted_samples(self, ladder, trace, config):
        plan = FaultPlan(FaultSpec(corrupt_rate=1.0), seed=5)
        inner = RecordingController()
        controller = ResilientController(inner)
        simulate_session(controller, trace, ladder, config, faults=plan)
        # Whatever reached the inner controller is finite and positive.
        for sample in inner.samples:
            assert math.isfinite(sample.throughput)
            assert sample.throughput > 0
        for obs in inner.observations:
            for sample in obs.history:
                assert math.isfinite(sample.throughput)
        assert controller.sanitized_observations > 0

    def test_healthy_inner_is_untouched(self, ladder, trace, config):
        plain = simulate_session(BolaController(), trace, ladder, config)
        wrapped = simulate_session(
            ResilientController(BolaController()), trace, ladder, config
        )
        assert plain.qualities == wrapped.qualities
        assert wrapped.fallback_decisions == 0

    def test_counters_reset_between_sessions(self, ladder, trace, config):
        controller = ResilientController(BadRungController())
        simulate_session(controller, trace, ladder, config)
        result = simulate_session(controller, trace, ladder, config)
        assert result.fallback_decisions == config.num_segments

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResilientController(BolaController(), solve_timeout=0.0)
        with pytest.raises(ValueError):
            ResilientController(BolaController(), max_watchdog_trips=0)
        with pytest.raises(ValueError):
            ResilientController(BolaController(), max_consecutive_defers=0)

    def test_oracle_attach_passes_through_safe_predictor(self, trace):
        from repro.prediction.oracle import OraclePredictor

        inner = BolaController()
        inner.predictor = OraclePredictor()
        wrapped = ResilientController(inner)
        assert hasattr(wrapped.predictor, "attach_trace")
        wrapped.predictor.attach_trace(trace)


# ----------------------------------------------------------------------
# Robustness sweep
# ----------------------------------------------------------------------
class TestRobustnessSweep:
    def test_sweep_structure_and_baseline(self, ladder):
        traces = [
            ThroughputTrace.from_samples(
                [5.0 + (i % 4) for i in range(90)], 1.0
            )
            for _ in range(2)
        ]
        profile = EvaluationProfile(
            name="test",
            ladder=ladder,
            player=PlayerConfig(num_segments=20, live_delay=None),
        )
        factories = {"bola": BolaController, "fixed": lambda: FixedController(1)}
        report = sweep_fault_intensity(
            traces, profile, factories=factories,
            intensities=[0.0, 0.5], seed=3,
        )
        assert set(report.curves) == {"bola", "fixed"}
        for curve in report.curves.values():
            assert curve.intensities == [0.0, 0.5]
            assert curve.points[0].faults_injected == 0
            assert curve.points[1].faults_injected > 0
        rendered = report.render()
        assert "bola" in rendered and "qoe@0.50" in rendered

    def test_sweep_rejects_unsorted_intensities(self, ladder):
        profile = EvaluationProfile(
            name="test", ladder=ladder,
            player=PlayerConfig(num_segments=5, live_delay=None),
        )
        trace = ThroughputTrace.constant(5.0, 60.0)
        with pytest.raises(ValueError, match="ascending"):
            sweep_fault_intensity(
                [trace], profile, factories={"bola": BolaController},
                intensities=[0.5, 0.0],
            )
