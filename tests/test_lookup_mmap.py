"""The memory-mapped decision-table file format.

Sharded serving publishes one :class:`DecisionTable` to N forked workers
through a single mapped file (``save_mmap`` / ``load_mmap``), so the
format carries real operational weight: a loaded table must answer
cell-for-cell identically to the in-memory original, and any structural
damage — bad magic, mangled header, truncation, out-of-range cells —
must fail loudly with a one-line :class:`TableFormatError` instead of
serving garbage rungs.
"""

import json
import struct
import zlib

import numpy as np
import pytest

from repro.core.lookup import DecisionTable, TableFormatError, TablePublisher
from repro.core.objective import SodaConfig
from repro.sim.video import BitrateLadder

LADDER = BitrateLadder([1.0, 2.5, 5.0, 8.0], segment_duration=2.0,
                       name="mmap-test")
MAX_BUFFER = 25.0


@pytest.fixture(scope="module")
def table():
    return DecisionTable(
        LADDER,
        MAX_BUFFER,
        config=SodaConfig(solver_backend="fast"),
        throughput_points=12,
        buffer_points=10,
    )


@pytest.fixture()
def table_path(table, tmp_path):
    path = tmp_path / "table.sodatbl"
    table.save_mmap(str(path))
    return path


class TestRoundTrip:
    def test_every_cell_survives(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert loaded.shape == table.shape
        np.testing.assert_array_equal(
            np.asarray(loaded._table), np.asarray(table._table)
        )
        np.testing.assert_allclose(loaded.tput_grid, table.tput_grid)
        np.testing.assert_allclose(loaded.buffer_grid, table.buffer_grid)

    def test_lookups_agree_off_grid(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        rng = np.random.default_rng(7)
        for _ in range(200):
            tput = float(rng.uniform(0.1, 40.0))
            buf = float(rng.uniform(0.0, MAX_BUFFER))
            prev_axis = int(rng.integers(0, LADDER.levels + 1))
            prev = None if prev_axis == 0 else prev_axis - 1
            assert loaded.lookup(tput, buf, prev) == table.lookup(
                tput, buf, prev
            )

    def test_metadata_survives(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert loaded.ladder.bitrates == LADDER.bitrates
        assert loaded.ladder.name == LADDER.name
        assert loaded.max_buffer == MAX_BUFFER
        assert loaded.config == table.config
        assert loaded.stats.cells == table.stats.cells
        assert loaded.stats.build_seconds == pytest.approx(
            table.stats.build_seconds
        )

    def test_loaded_array_is_read_only_mapping(self, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert isinstance(loaded._table, np.memmap)
        with pytest.raises(ValueError):
            loaded._table[0, 0, 0] = 3


class TestCorruption:
    """Every damage mode fails with a one-line TableFormatError."""

    def _assert_rejects(self, path, needle):
        with pytest.raises(TableFormatError) as err:
            DecisionTable.load_mmap(str(path))
        message = str(err.value)
        assert needle in message
        assert "\n" not in message  # one line, CLI-printable as-is

    def test_missing_file(self, tmp_path):
        self._assert_rejects(tmp_path / "nope.sodatbl", "cannot read")

    def test_bad_magic(self, table_path):
        blob = table_path.read_bytes()
        table_path.write_bytes(b"NOTATBL!" + blob[8:])
        self._assert_rejects(table_path, "bad magic")

    def test_header_length_past_eof(self, table_path):
        blob = bytearray(table_path.read_bytes())
        blob[8:16] = struct.pack(">Q", 2**40)
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "header length")

    def test_unparsable_header(self, table_path):
        blob = bytearray(table_path.read_bytes())
        (hlen,) = struct.unpack(">Q", blob[8:16])
        blob[16:16 + hlen] = b"{" * hlen
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "corrupt decision-table header")

    def test_truncated_array(self, table_path):
        blob = table_path.read_bytes()
        table_path.write_bytes(blob[:-17])
        self._assert_rejects(table_path, "truncated")

    def test_shape_grid_mismatch(self, table_path):
        blob = table_path.read_bytes()
        (hlen,) = struct.unpack(">Q", blob[8:16])
        header = json.loads(blob[16:16 + hlen])
        header["tput_grid"] = header["tput_grid"][:-1]
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        table_path.write_bytes(
            blob[:8] + struct.pack(">Q", len(new_header)) + new_header
            + blob[16 + hlen:]
        )
        self._assert_rejects(table_path, "does not match")

    def test_payload_checksum_mismatch(self, table_path):
        blob = bytearray(table_path.read_bytes())
        blob[-1] ^= 0x01  # one flipped bit in the decision array
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "checksum mismatch")

    def test_out_of_range_cells_pass_checksum(self, table_path):
        # Re-stamp the checksum after the damage: the range check must
        # catch a table whose bytes are intact but semantically invalid.
        blob = bytearray(table_path.read_bytes())
        blob[-1] = LADDER.levels + 3  # a rung the ladder does not have
        (hlen,) = struct.unpack(">Q", blob[8:16])
        header = json.loads(blob[16:16 + hlen])
        header["crc32"] = zlib.crc32(bytes(blob[16 + hlen:])) & 0xFFFFFFFF
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        table_path.write_bytes(
            bytes(blob[:8]) + struct.pack(">Q", len(new_header))
            + new_header + bytes(blob[16 + hlen:])
        )
        self._assert_rejects(table_path, "out-of-range")


@pytest.fixture()
def fresh(table):
    """A function-scoped copy: ``save_mmap(version=...)`` stamps the
    instance, and the module-scoped table must stay pristine."""
    import copy

    return copy.copy(table)


class TestVersioning:
    def test_default_version_is_one(self, table, table_path):
        assert DecisionTable.load_mmap(str(table_path)).version == 1
        assert DecisionTable.peek_version(str(table_path)) == 1

    def test_save_stamps_requested_version(self, fresh, tmp_path):
        path = tmp_path / "v9.sodatbl"
        fresh.save_mmap(str(path), version=9)
        assert DecisionTable.peek_version(str(path)) == 9
        assert DecisionTable.load_mmap(str(path)).version == 9

    def test_save_rejects_non_positive_version(self, fresh, tmp_path):
        with pytest.raises(ValueError):
            fresh.save_mmap(str(tmp_path / "bad.sodatbl"), version=0)

    def test_peek_rejects_non_table(self, tmp_path):
        junk = tmp_path / "junk.sodatbl"
        junk.write_bytes(b"definitely not a table")
        with pytest.raises(TableFormatError):
            DecisionTable.peek_version(str(junk))

    def test_probe_cells_deterministic_and_in_table(self, table,
                                                    table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        cells = loaded.probe_cells(seed=17, count=64)
        assert cells == loaded.probe_cells(seed=17, count=64)
        assert cells == table.probe_cells(seed=17, count=64)
        assert len(cells) == 64
        assert all(-1 <= c < LADDER.levels for c in cells)
        assert loaded.probe_cells(seed=17, count=0) == []

    def test_probe_cells_see_payload_differences(self, table, tmp_path):
        import copy

        other = copy.copy(table)
        other._table = np.full_like(np.asarray(table._table), -1)
        assert other.probe_cells(17, 64) != table.probe_cells(17, 64)


class TestPublisher:
    def test_validation(self):
        with pytest.raises(ValueError):
            TablePublisher("")

    def test_missing_live_file_starts_at_version_one(self, fresh,
                                                     tmp_path):
        publisher = TablePublisher(str(tmp_path / "live.sodatbl"))
        assert publisher.live_version() == 0
        path, version = publisher.publish(fresh)
        assert version == 1
        assert path.endswith(".v1")
        assert DecisionTable.peek_version(path) == 1

    def test_publish_is_monotonic_and_leaves_live_alone(self, fresh,
                                                        table_path):
        publisher = TablePublisher(str(table_path))
        before = table_path.read_bytes()
        path2, v2 = publisher.publish(fresh)
        path3, v3 = publisher.publish(fresh)
        assert (v2, v3) == (2, 3)
        assert publisher.published() == {2: path2, 3: path3}
        assert table_path.read_bytes() == before
        assert publisher.live_version() == 1

    def test_promote_swaps_live_and_survives_restarted_readers(
        self, fresh, table_path
    ):
        publisher = TablePublisher(str(table_path))
        old = DecisionTable.load_mmap(str(table_path))  # maps old inode
        path, version = publisher.publish(fresh)
        publisher.promote(path)
        assert DecisionTable.peek_version(str(table_path)) == version
        # The already-open mapping keeps serving the old pages.
        assert old.version == 1
        assert int(old._table[0, 0, 0]) == int(fresh._table[0, 0, 0])

    def test_promote_refuses_non_table(self, table_path, tmp_path):
        junk = tmp_path / "junk"
        junk.write_bytes(b"nope")
        with pytest.raises(TableFormatError):
            TablePublisher(str(table_path)).promote(str(junk))

    def test_unpublish_removes_and_tolerates_missing(self, fresh,
                                                     table_path):
        publisher = TablePublisher(str(table_path))
        path, _ = publisher.publish(fresh)
        publisher.unpublish(path)
        assert publisher.published() == {}
        publisher.unpublish(path)  # second removal is a no-op

    def test_published_skips_leftover_garbage(self, fresh, table_path):
        publisher = TablePublisher(str(table_path))
        path, version = publisher.publish(fresh)
        garbage = str(table_path) + ".v99"
        with open(garbage, "wb") as f:
            f.write(b"crashed publisher leftovers")
        assert publisher.published() == {version: path}
        assert publisher.next_version() == version + 1
