"""The memory-mapped decision-table file format.

Sharded serving publishes one :class:`DecisionTable` to N forked workers
through a single mapped file (``save_mmap`` / ``load_mmap``), so the
format carries real operational weight: a loaded table must answer
cell-for-cell identically to the in-memory original, and any structural
damage — bad magic, mangled header, truncation, out-of-range cells —
must fail loudly with a one-line :class:`TableFormatError` instead of
serving garbage rungs.
"""

import json
import struct

import numpy as np
import pytest

from repro.core.lookup import DecisionTable, TableFormatError
from repro.core.objective import SodaConfig
from repro.sim.video import BitrateLadder

LADDER = BitrateLadder([1.0, 2.5, 5.0, 8.0], segment_duration=2.0,
                       name="mmap-test")
MAX_BUFFER = 25.0


@pytest.fixture(scope="module")
def table():
    return DecisionTable(
        LADDER,
        MAX_BUFFER,
        config=SodaConfig(solver_backend="fast"),
        throughput_points=12,
        buffer_points=10,
    )


@pytest.fixture()
def table_path(table, tmp_path):
    path = tmp_path / "table.sodatbl"
    table.save_mmap(str(path))
    return path


class TestRoundTrip:
    def test_every_cell_survives(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert loaded.shape == table.shape
        np.testing.assert_array_equal(
            np.asarray(loaded._table), np.asarray(table._table)
        )
        np.testing.assert_allclose(loaded.tput_grid, table.tput_grid)
        np.testing.assert_allclose(loaded.buffer_grid, table.buffer_grid)

    def test_lookups_agree_off_grid(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        rng = np.random.default_rng(7)
        for _ in range(200):
            tput = float(rng.uniform(0.1, 40.0))
            buf = float(rng.uniform(0.0, MAX_BUFFER))
            prev_axis = int(rng.integers(0, LADDER.levels + 1))
            prev = None if prev_axis == 0 else prev_axis - 1
            assert loaded.lookup(tput, buf, prev) == table.lookup(
                tput, buf, prev
            )

    def test_metadata_survives(self, table, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert loaded.ladder.bitrates == LADDER.bitrates
        assert loaded.ladder.name == LADDER.name
        assert loaded.max_buffer == MAX_BUFFER
        assert loaded.config == table.config
        assert loaded.stats.cells == table.stats.cells
        assert loaded.stats.build_seconds == pytest.approx(
            table.stats.build_seconds
        )

    def test_loaded_array_is_read_only_mapping(self, table_path):
        loaded = DecisionTable.load_mmap(str(table_path))
        assert isinstance(loaded._table, np.memmap)
        with pytest.raises(ValueError):
            loaded._table[0, 0, 0] = 3


class TestCorruption:
    """Every damage mode fails with a one-line TableFormatError."""

    def _assert_rejects(self, path, needle):
        with pytest.raises(TableFormatError) as err:
            DecisionTable.load_mmap(str(path))
        message = str(err.value)
        assert needle in message
        assert "\n" not in message  # one line, CLI-printable as-is

    def test_missing_file(self, tmp_path):
        self._assert_rejects(tmp_path / "nope.sodatbl", "cannot read")

    def test_bad_magic(self, table_path):
        blob = table_path.read_bytes()
        table_path.write_bytes(b"NOTATBL!" + blob[8:])
        self._assert_rejects(table_path, "bad magic")

    def test_header_length_past_eof(self, table_path):
        blob = bytearray(table_path.read_bytes())
        blob[8:16] = struct.pack(">Q", 2**40)
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "header length")

    def test_unparsable_header(self, table_path):
        blob = bytearray(table_path.read_bytes())
        (hlen,) = struct.unpack(">Q", blob[8:16])
        blob[16:16 + hlen] = b"{" * hlen
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "corrupt decision-table header")

    def test_truncated_array(self, table_path):
        blob = table_path.read_bytes()
        table_path.write_bytes(blob[:-17])
        self._assert_rejects(table_path, "truncated")

    def test_shape_grid_mismatch(self, table_path):
        blob = table_path.read_bytes()
        (hlen,) = struct.unpack(">Q", blob[8:16])
        header = json.loads(blob[16:16 + hlen])
        header["tput_grid"] = header["tput_grid"][:-1]
        new_header = json.dumps(header, sort_keys=True).encode("utf-8")
        table_path.write_bytes(
            blob[:8] + struct.pack(">Q", len(new_header)) + new_header
            + blob[16 + hlen:]
        )
        self._assert_rejects(table_path, "does not match")

    def test_out_of_range_cells(self, table_path):
        blob = bytearray(table_path.read_bytes())
        blob[-1] = LADDER.levels + 3  # a rung the ladder does not have
        table_path.write_bytes(bytes(blob))
        self._assert_rejects(table_path, "out-of-range")
