"""Property tests: the degradation ladder under adversarial solvers.

Satellite of the serving PR — Hypothesis drives the ladder with tier-0
solvers that are slow, raise, emit NaN, defer, or answer out of range,
under arbitrary remaining deadline budgets, and asserts the two serving
invariants that everything else is built on:

* the ladder **always** returns a rung inside the ladder, and
* the deadline budget is honored — tier 0 is only ever *started* when at
  least ``tier0_budget`` seconds remain, so any time burned past the
  deadline is attributable to a single in-flight solve (which the
  breaker then charges), never to the ladder descending.

Time is a fake monotonic clock, so "slow" is deterministic: a solver
that advances the clock by more than the remaining budget has overrun.
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    TIER_SOLVER,
    CircuitBreaker,
    DegradationLadder,
)
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder

# Hypothesis examples can't use function-scoped fixtures; one immutable
# module-level ladder is shared by every example.
LADDER = BitrateLadder([1.0, 3.0, 6.0, 12.0], segment_duration=2.0,
                       name="prop")
DEADLINE = 0.05


class FakeClock:
    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# --- adversarial tier-0 behaviours -----------------------------------
# Each example draws a *behaviour spec*; the solver is rebuilt fresh so
# examples never share state.
solver_behaviours = st.one_of(
    st.tuples(st.just("answer"), st.integers(min_value=-6, max_value=9)),
    st.tuples(st.just("nan"), st.just(0)),
    st.tuples(st.just("inf"), st.just(0)),
    st.tuples(st.just("raise"), st.just(0)),
    st.tuples(st.just("defer"), st.just(0)),
    st.tuples(
        st.just("slow"),
        st.floats(min_value=0.0, max_value=4.0 * DEADLINE,
                  allow_nan=False, allow_infinity=False),
    ),
)

previous_qualities = st.one_of(
    st.none(), st.integers(min_value=-3, max_value=LADDER.levels + 2)
)

remaining_budgets = st.floats(
    min_value=-DEADLINE, max_value=2.0 * DEADLINE,
    allow_nan=False, allow_infinity=False,
)


def make_solver(spec, clock):
    kind, value = spec
    calls = []

    def solver(obs):
        calls.append(1)
        if kind == "answer":
            return value
        if kind == "nan":
            return float("nan")
        if kind == "inf":
            return float("inf")
        if kind == "raise":
            raise RuntimeError("adversarial solver")
        if kind == "defer":
            return None
        clock.advance(value)  # "slow"
        return 1

    return solver, calls


def make_obs(prev, buffer_level):
    return PlayerObservation(
        wall_time=50.0,
        segment_index=7,
        buffer_level=buffer_level,
        max_buffer=20.0,
        previous_quality=prev,
        ladder=LADDER,
        history=(),
    )


@settings(max_examples=300, deadline=None)
@given(
    spec=solver_behaviours,
    prev=previous_qualities,
    remaining=remaining_budgets,
    buffer_level=st.floats(min_value=0.0, max_value=20.0,
                           allow_nan=False, allow_infinity=False),
    tier1_kind=st.sampled_from(["table", "raise", "defer", "disabled"]),
)
def test_ladder_always_returns_in_range_and_honors_budget(
    spec, prev, remaining, buffer_level, tier1_kind
):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
    if tier1_kind == "table":
        tier1 = lambda obs: 1  # noqa: E731
    elif tier1_kind == "raise":
        tier1 = lambda obs: (_ for _ in ()).throw(KeyError("x"))  # noqa: E731
    elif tier1_kind == "defer":
        tier1 = lambda obs: None  # noqa: E731
    else:
        tier1 = None
    ladder = DegradationLadder(
        tier1=tier1,
        tier2=lambda obs: 0,
        breaker=breaker,
        deadline=DEADLINE,
        clock=clock,
    )
    solver, calls = make_solver(spec, clock)
    obs = make_obs(prev, buffer_level)
    started = clock()
    deadline_at = started + remaining

    decision = ladder.decide(obs, solver, deadline_at)

    # Invariant 1: always an in-range rung, whatever tier 0 did.
    assert isinstance(decision.quality, int)
    assert 0 <= decision.quality < LADDER.levels
    assert not isinstance(decision.quality, bool)
    assert math.isfinite(decision.quality)

    # Invariant 2: tier 0 is started only with at least tier0_budget left.
    if calls:
        assert remaining >= ladder.tier0_budget
    if remaining < ladder.tier0_budget:
        assert not calls
        assert decision.tier != TIER_SOLVER

    # Anything served from tier 0 past the deadline is flagged as an
    # overrun and charged to the breaker; the ladder itself never burns
    # time (only the 'slow' solver advances the fake clock), so time
    # past the deadline implies the solver ran slow.
    if calls and clock() > deadline_at:
        assert spec[0] == "slow"
        assert decision.overran or decision.tier != TIER_SOLVER
        assert breaker.failures_recorded >= 1

    # Breaker accounting is consistent: failures only from errors,
    # overruns, or adversarial answers — never from clean fast answers.
    if spec[0] == "answer" and 0 <= spec[1] < LADDER.levels and calls:
        assert breaker.failures_recorded == 0
        assert decision.quality == spec[1]
        assert decision.tier == TIER_SOLVER


@settings(max_examples=200, deadline=None)
@given(
    prev=previous_qualities,
    buffer_level=st.floats(min_value=-5.0, max_value=40.0,
                           allow_nan=False, allow_infinity=False),
)
def test_floor_quality_is_total(prev, buffer_level):
    """Tier 2 never raises and always lands inside the ladder."""
    clock = FakeClock()
    breaker = CircuitBreaker(clock=clock)
    ladder = DegradationLadder(
        tier1=None,
        tier2=lambda obs: (_ for _ in ()).throw(RuntimeError("rule down")),
        breaker=breaker,
        deadline=DEADLINE,
        clock=clock,
    )
    rung = ladder.floor_quality(make_obs(prev, max(0.0, buffer_level)))
    assert 0 <= rung < LADDER.levels


@settings(max_examples=100, deadline=None)
@given(
    specs=st.lists(solver_behaviours, min_size=5, max_size=40),
)
def test_breaker_eventually_shields_a_failing_solver(specs):
    """A run of consecutive tier-0 failures stops reaching the solver."""
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)
    ladder = DegradationLadder(
        tier1=lambda obs: 1,
        tier2=lambda obs: 0,
        breaker=breaker,
        deadline=DEADLINE,
        clock=clock,
    )
    obs = make_obs(1, 8.0)
    opened_at_call = None
    for i, spec in enumerate(specs):
        solver, calls = make_solver(spec, clock)
        was_open = breaker.times_opened > 0 and not breaker.allow()
        decision = ladder.decide(obs, solver, clock() + DEADLINE)
        assert 0 <= decision.quality < LADDER.levels
        if was_open:
            # While open (within the cooldown) tier 0 is never probed.
            assert not calls
            assert decision.tier != TIER_SOLVER
        if breaker.times_opened and opened_at_call is None:
            opened_at_call = i
        clock.advance(1.0)  # step wall time, < cooldown
    # Three consecutive hard failures anywhere in the run must trip it.
    streak = 0
    for spec in specs[: opened_at_call + 1 if opened_at_call is not None
                      else len(specs)]:
        streak = streak + 1 if spec[0] == "raise" else 0
        if streak >= 3:
            assert breaker.times_opened >= 1
            break


class TestHalfOpenContention:
    """True thread contention at the open → half-open edge.

    The state machine promises that when N threads race ``allow()`` the
    instant the cooldown elapses, exactly ``half_open_successes`` of
    them win probe slots and everyone else keeps degrading.  A barrier
    releases all racers at once so the race is real, not sequential.
    """

    THREADS = 12
    ROUNDS = 20

    @staticmethod
    def _tripped_breaker(clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=1.0, clock=clock
        )
        breaker.record_failure()  # closed -> open
        clock.advance(1.5)  # cooldown elapsed; next allow() half-opens
        return breaker

    def _race_allow(self, breaker):
        barrier = threading.Barrier(self.THREADS)
        admitted = []
        admitted_lock = threading.Lock()

        def racer():
            barrier.wait()
            if breaker.allow():
                with admitted_lock:
                    admitted.append(threading.get_ident())

        threads = [
            threading.Thread(target=racer) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return admitted

    def test_exactly_one_probe_admitted_under_contention(self):
        for _ in range(self.ROUNDS):
            clock = FakeClock()
            breaker = self._tripped_breaker(clock)
            admitted = self._race_allow(breaker)
            # Exactly one racer holds the probe slot; the rest degrade.
            assert len(admitted) == 1
            assert breaker.state.value == "half-open"
            # Until the probe reports back, nobody else gets through.
            assert not breaker.allow()
            # The winning probe's success closes the breaker for all.
            breaker.record_success()
            assert breaker.state.value == "closed"
            assert breaker.allow()
            assert breaker.full_cycles() == 1

    def test_probe_failure_reopens_and_relocks_under_contention(self):
        clock = FakeClock()
        breaker = self._tripped_breaker(clock)
        admitted = self._race_allow(breaker)
        assert len(admitted) == 1
        breaker.record_failure()  # the probe failed: back to open
        assert breaker.state.value == "open"
        # A second stampede inside the new cooldown is fully refused.
        assert self._race_allow(breaker) == []
        # ... and after the next cooldown, again exactly one wins.
        clock.advance(1.5)
        assert len(self._race_allow(breaker)) == 1


# ----------------------------------------------------------------------
# AdaptiveGate AIMD invariants
# ----------------------------------------------------------------------
from repro.service import AdaptiveGate  # noqa: E402


latency_stream = st.lists(
    st.floats(min_value=0.0, max_value=4 * DEADLINE,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=400,
)


def _driven_gate(latencies, max_in_flight=16, window=8):
    gate = AdaptiveGate(
        max_in_flight, DEADLINE, min_in_flight=2, window=window
    )
    for latency in latencies:
        gate.observe(latency)
    return gate


class TestAdaptiveGateAimdProperties:
    """Hypothesis: the AIMD limit trajectory honors its contract under
    arbitrary latency streams."""

    @settings(max_examples=200, deadline=None)
    @given(latencies=latency_stream)
    def test_limit_stays_within_floor_and_ceiling(self, latencies):
        gate = _driven_gate(latencies)
        snap = gate.snapshot()
        assert 2 <= snap["limit"] <= gate.max_in_flight
        assert 2 <= snap["min_limit_seen"] <= gate.max_in_flight
        assert snap["min_limit_seen"] <= snap["limit"]

    @settings(max_examples=200, deadline=None)
    @given(latencies=latency_stream)
    def test_decrease_only_on_p99_breach(self, latencies):
        """The limit is cut multiplicatively only in windows whose p99
        reached high_ratio * deadline; replaying the stream window by
        window predicts the gate's counters exactly."""
        window = 8
        gate = _driven_gate(latencies, window=window)
        expected_decreases = 0
        expected_increases = 0
        level = float(gate.max_in_flight)
        for start in range(0, len(latencies) - window + 1, window):
            chunk = sorted(latencies[start:start + window])
            p99 = chunk[min(len(chunk) - 1, int(0.99 * len(chunk)))]
            if p99 >= gate.high_ratio * DEADLINE:
                level = max(float(gate.min_in_flight), level * gate.decrease)
                expected_decreases += 1
            elif p99 < gate.low_ratio * DEADLINE:
                if level < gate.max_in_flight:
                    level = min(
                        float(gate.max_in_flight), level + gate.increase
                    )
                    expected_increases += 1
        assert gate.limit_decreases == expected_decreases
        assert gate.limit_increases == expected_increases
        assert gate.limit == max(gate.min_in_flight, int(level))

    @settings(max_examples=200, deadline=None)
    @given(latencies=latency_stream)
    def test_all_healthy_windows_never_decrease(self, latencies):
        """A stream that never breaches the deadline can only hold or
        grow the limit back toward the ceiling — never shrink it."""
        healthy = [min(lat, 0.4 * DEADLINE) for lat in latencies]
        gate = _driven_gate(healthy)
        assert gate.limit_decreases == 0
        assert gate.limit == gate.max_in_flight
        assert gate.snapshot()["min_limit_seen"] == gate.max_in_flight

    @settings(max_examples=200, deadline=None)
    @given(latencies=latency_stream)
    def test_new_arrival_headroom_never_exceeds_established(self, latencies):
        gate = _driven_gate(latencies)
        established = gate._limit_for(established=True)
        fresh = gate._limit_for(established=False)
        assert fresh <= established
        assert fresh >= gate.min_in_flight

    @settings(max_examples=100, deadline=None)
    @given(
        latencies=latency_stream,
        probes=st.integers(min_value=0, max_value=24),
    )
    def test_admission_respects_the_live_limit(self, latencies, probes):
        """try_acquire never admits past the current limit, and new
        arrivals stop at the headroom fraction of it."""
        gate = _driven_gate(latencies)
        admitted_new = 0
        for _ in range(probes):
            if not gate.try_acquire(established=False):
                break
            admitted_new += 1
        assert admitted_new <= gate._limit_for(established=False)
        for _ in range(admitted_new):
            gate.release()
        admitted = 0
        for _ in range(probes):
            if not gate.try_acquire(established=True):
                break
            admitted += 1
        assert admitted <= gate.limit
        for _ in range(admitted):
            gate.release()
