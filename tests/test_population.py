"""Tests for the population-scale fleet simulator (repro.sim.population).

Covers the arrival process (diurnal shape, flash-crowd burst mass,
device-mix proportions — seeded statistical sanity), correlated fault
storms (determinism, masking, SLO degradation), conservation and
shedding invariants, and the headline robustness property: a run
SIGKILLed mid-sweep resumes from its last atomic checkpoint to fleet
aggregates bit-identical to an uninterrupted run.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.faults.storm import (
    StormEvent,
    StormKind,
    StormSchedule,
    StormSpec,
)
from repro.runner import ConfigMismatchError
from repro.sim.population import (
    ArrivalModel,
    CohortSpec,
    PopulationConfig,
    PopulationSim,
    ServiceBackend,
    SolverBackend,
    default_cohorts,
)


def small_config(**overrides) -> PopulationConfig:
    defaults = dict(
        sessions=8_000,
        duration_hours=0.5,
        tick_seconds=2.0,
        seed=1,
        table_points=12,
    )
    defaults.update(overrides)
    return PopulationConfig(**defaults)


# ----------------------------------------------------------------------
# arrival process
# ----------------------------------------------------------------------
class TestArrivalModel:
    def test_expected_mass_matches_sessions(self):
        cfg = small_config()
        model = ArrivalModel(cfg)
        assert model.expected.sum() == pytest.approx(cfg.sessions)
        assert (model.expected >= 0).all()

    def test_diurnal_shape_trough_to_peak(self):
        # One full cycle over the run: trough at the start, peak mid-run.
        cfg = small_config(flash_crowds=0, diurnal_amplitude=0.6)
        model = ArrivalModel(cfg)
        n = len(model.expected)
        start = model.expected[: n // 10].mean()
        middle = model.expected[4 * n // 10 : 6 * n // 10].mean()
        assert middle > 2.0 * start

    def test_flat_when_amplitude_zero(self):
        cfg = small_config(flash_crowds=0, diurnal_amplitude=0.0)
        model = ArrivalModel(cfg)
        assert model.expected.std() < 1e-9

    def test_flash_crowd_burst_mass(self):
        cfg = small_config(flash_crowds=3, flash_crowd_mass=0.3)
        model = ArrivalModel(cfg)
        assert len(model.burst_windows) == 3
        # Windows carry their dedicated mass plus the base curve under them.
        assert model.burst_fraction() >= 0.3

    def test_no_bursts_without_flash_crowds(self):
        model = ArrivalModel(small_config(flash_crowds=0))
        assert model.burst_windows == []
        assert model.burst_fraction() == 0.0

    def test_burst_windows_deterministic_per_seed(self):
        cfg = small_config(seed=9)
        assert (
            ArrivalModel(cfg).burst_windows == ArrivalModel(cfg).burst_windows
        )
        other = small_config(seed=10)
        assert ArrivalModel(cfg).burst_windows != ArrivalModel(other).burst_windows

    def test_device_mix_proportions(self):
        cfg = small_config(seed=4)
        sim = PopulationSim(cfg)
        sim.run()
        arrivals = sim.agg.counters["arrivals"].astype(float)
        observed = arrivals / arrivals.sum()
        weights = np.asarray([c.weight for c in sim.cohorts])
        expected = weights / weights.sum()
        assert np.abs(observed - expected).max() < 0.03

    def test_default_cohorts_are_fig13_families(self):
        names = [c.name for c in default_cohorts()]
        assert names == ["html5", "smart-tv", "set-top-box"]

    def test_cohort_validation(self):
        with pytest.raises(ValueError):
            CohortSpec("x", weight=0.0, mean_mbps=10.0, rsd=0.5)
        with pytest.raises(ValueError):
            CohortSpec("x", weight=1.0, mean_mbps=-1.0, rsd=0.5)


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"sessions": 0},
        {"tick_seconds": 0.0},
        {"diurnal_amplitude": 1.5},
        {"flash_crowd_mass": 1.0},
        {"ar_coefficient": 1.0},
        {"rebuffer_slo": 2.0},
        {"storm_intensity": -1.0},
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            small_config(**overrides)


# ----------------------------------------------------------------------
# correlated fault storms
# ----------------------------------------------------------------------
class TestStorms:
    def test_generation_is_deterministic(self):
        a = StormSchedule.generate(3600.0, regions=8, cdns=3,
                                   intensity=4.0, seed=7)
        b = StormSchedule.generate(3600.0, regions=8, cdns=3,
                                   intensity=4.0, seed=7)
        assert [
            (e.kind, e.start, e.duration, e.targets, e.magnitude)
            for e in a.events
        ] == [
            (e.kind, e.start, e.duration, e.targets, e.magnitude)
            for e in b.events
        ]

    def test_zero_intensity_is_empty(self):
        assert len(StormSchedule.generate(3600.0, 8, 3, intensity=0.0)) == 0

    def test_regional_collapse_masks_only_targets(self):
        event = StormEvent(StormKind.REGIONAL_COLLAPSE, start=0.0,
                           duration=60.0, targets=(1,), magnitude=0.1)
        schedule = StormSchedule([event])
        regions = np.array([0, 1, 1, 2])
        cdns = np.zeros(4, dtype=int)
        factors = schedule.throughput_factors(30.0, regions, cdns)
        assert factors == pytest.approx([1.0, 0.1, 0.1, 1.0])
        assert schedule.throughput_factors(120.0, regions, cdns) is None

    def test_overlapping_events_compound(self):
        schedule = StormSchedule([
            StormEvent(StormKind.REGIONAL_COLLAPSE, 0.0, 60.0,
                       targets=(0,), magnitude=0.5),
            StormEvent(StormKind.CDN_OUTAGE, 0.0, 60.0,
                       targets=(0,), magnitude=0.2),
        ])
        factors = schedule.throughput_factors(
            10.0, np.array([0, 1]), np.array([0, 0])
        )
        assert factors == pytest.approx([0.1, 0.2])

    def test_flash_crowd_scales_arrivals(self):
        schedule = StormSchedule([
            StormEvent(StormKind.FLASH_CROWD, 100.0, 50.0, magnitude=3.0)
        ])
        assert schedule.arrival_factor(120.0) == pytest.approx(3.0)
        assert schedule.arrival_factor(200.0) == pytest.approx(1.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            StormEvent(StormKind.FLASH_CROWD, 0.0, 10.0, magnitude=0.5)
        with pytest.raises(ValueError):
            StormEvent(StormKind.CDN_OUTAGE, 0.0, -1.0)
        with pytest.raises(ValueError):
            StormSpec(crowd_magnitude=0.5)

    def test_storm_degrades_fleet_slo(self):
        clean = PopulationSim(small_config(storm_intensity=0.0)).run()
        stormy = PopulationSim(small_config(storm_intensity=4.0)).run()
        c = clean.fleet["fleet"]["slo_attainment"]
        s = stormy.fleet["fleet"]["slo_attainment"]
        assert s < c


# ----------------------------------------------------------------------
# event core invariants
# ----------------------------------------------------------------------
class TestEventCore:
    def test_session_conservation(self):
        report = PopulationSim(small_config(seed=2)).run()
        fleet = report.fleet["fleet"]
        assert fleet["arrivals"] == (
            fleet["finished"] + fleet["shed"] + fleet["censored"]
        )
        assert fleet["finished"] == fleet["completed"] + fleet["abandoned"]

    def test_same_seed_same_report(self):
        cfg = small_config(seed=6, storm_intensity=2.0)
        a = PopulationSim(cfg).run()
        b = PopulationSim(cfg).run()
        assert json.dumps(a.fleet, sort_keys=True) == json.dumps(
            b.fleet, sort_keys=True
        )
        assert a.decisions == b.decisions

    def test_tiny_capacity_sheds(self):
        cfg = small_config(capacity=64)
        report = PopulationSim(cfg).run()
        fleet = report.fleet["fleet"]
        assert fleet["shed"] > 0
        assert fleet["arrivals"] == (
            fleet["finished"] + fleet["shed"] + fleet["censored"]
        )

    def test_decisions_counted_and_concurrency_tracked(self):
        report = PopulationSim(small_config()).run()
        assert report.decisions > 0
        assert report.concurrency["p95"] > 0
        assert report.backend == "table"

    def test_solver_backend_runs(self):
        cfg = PopulationConfig(
            sessions=200, duration_hours=0.05, tick_seconds=4.0, seed=2
        )
        sim = PopulationSim(cfg)
        sim.backend = SolverBackend(sim.ladder, cfg.max_buffer)
        report = sim.run()
        assert report.decisions > 0
        assert report.fleet["fleet"]["arrivals"] > 0


# ----------------------------------------------------------------------
# crash-survivable execution
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_partial_run_resume_is_bit_identical(self, tmp_path):
        cfg = small_config(storm_intensity=3.0)
        uninterrupted = PopulationSim(cfg).run()

        ck = str(tmp_path / "pop.npz")
        first_leg = PopulationSim(cfg, checkpoint_path=ck)
        assert first_leg.run(until=cfg.n_ticks // 3) is None
        first_leg.save_checkpoint()

        second_leg = PopulationSim.resume(ck, cfg)
        assert second_leg.tick == cfg.n_ticks // 3
        resumed = second_leg.run()

        assert json.dumps(resumed.fleet, sort_keys=True) == json.dumps(
            uninterrupted.fleet, sort_keys=True
        )
        assert resumed.concurrency == uninterrupted.concurrency
        assert resumed.decisions == uninterrupted.decisions
        assert resumed.resumed_from_tick == cfg.n_ticks // 3

    def test_resume_refuses_config_mismatch(self, tmp_path):
        cfg = small_config()
        ck = str(tmp_path / "pop.npz")
        sim = PopulationSim(cfg, checkpoint_path=ck)
        sim.run(until=10)
        sim.save_checkpoint()
        with pytest.raises(ConfigMismatchError):
            PopulationSim.resume(ck, small_config(seed=99))

    def test_checkpoint_requires_path(self):
        sim = PopulationSim(small_config())
        with pytest.raises(ValueError):
            sim.save_checkpoint()

    def test_sigkill_mid_run_then_resume_matches_uninterrupted(self, tmp_path):
        """The acceptance property, end-to-end through the CLI.

        A run is SIGKILLed right after its second checkpoint lands
        (REPRO_POP_KILL_AFTER hook); resuming it must produce a fleet
        report identical to a never-interrupted run of the same config.
        """
        base = [
            sys.executable, "-m", "repro.cli", "population",
            "--sessions", "6000", "--duration-hours", "0.25",
            "--seed", "5", "--storm-intensity", "2",
            "--table-points", "10", "--checkpoint-every", "60", "--quiet",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )

        clean_report = str(tmp_path / "clean.json")
        subprocess.run(
            base + ["--checkpoint", str(tmp_path / "clean.npz"),
                    "--report", clean_report],
            check=True, env=env, cwd=str(tmp_path),
        )

        ck = str(tmp_path / "killed.npz")
        kill_env = dict(env)
        kill_env["REPRO_POP_KILL_AFTER"] = "2"
        proc = subprocess.run(
            base + ["--checkpoint", ck], env=kill_env, cwd=str(tmp_path)
        )
        assert proc.returncode == -9 or proc.returncode == 137
        assert os.path.exists(ck)

        resumed_report = str(tmp_path / "resumed.json")
        subprocess.run(
            base + ["--checkpoint", ck, "--resume",
                    "--report", resumed_report],
            check=True, env=env, cwd=str(tmp_path),
        )

        with open(clean_report) as f:
            clean = json.load(f)
        with open(resumed_report) as f:
            resumed = json.load(f)
        assert resumed["resumed_from_tick"] > 0
        assert json.dumps(clean["fleet"], sort_keys=True) == json.dumps(
            resumed["fleet"], sort_keys=True
        )
        assert clean["concurrency"] == resumed["concurrency"]


# ----------------------------------------------------------------------
# serve mode: decisions through the live sharded service
# ----------------------------------------------------------------------
class TestServeMode:
    def test_population_through_sharded_service(self):
        from repro.service import ShardedDecisionService

        cfg = PopulationConfig(
            sessions=300, duration_hours=0.05, tick_seconds=4.0, seed=3
        )
        sim = PopulationSim(cfg)
        service = ShardedDecisionService(
            sim.ladder, cfg.max_buffer, shards=2, deadline=0.25,
            table_points=10, max_sessions=1 << 16,
        )
        sim.backend = ServiceBackend(service, sim.ladder, cfg.max_buffer)
        report = sim.run()
        assert report.backend == "service"
        assert report.decisions > 0
        assert report.service is not None
        health = report.service["fleet_health"]
        assert health["shards"] == 2
        fleet = report.fleet["fleet"]
        assert fleet["arrivals"] == (
            fleet["finished"] + fleet["shed"] + fleet["censored"]
        )
