"""Tests for the supervised experiment runner (repro.runner).

Covers the journal (atomic flushes, resume, config-hash refusal), the
executor (crash containment for raising / hanging / dying workers), the
invariant auditor, the rewired harness paths, and the headline acceptance
property: a run SIGKILLed halfway through and resumed via the journal
produces aggregates identical to an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.abr.bba import BbaController
from repro.abr.bola import BolaController
from repro.abr.resilient import ResilientController
from repro.analysis import run_suite, sweep_fault_intensity
from repro.faults.plan import FaultPlan
from repro.qoe.metrics import qoe_from_session
from repro.runner import (
    ConfigMismatchError,
    Journal,
    JournalError,
    SessionKey,
    SessionRecord,
    SessionTask,
    audit_session,
    config_hash,
    execute,
    iter_records,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.profiles import EvaluationProfile
from repro.sim.session import run_dataset, run_session

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def make_key(controller="c", trace="t", seed=0, chash="h" * 16):
    return SessionKey(
        controller=controller, dataset="d", trace=trace, seed=seed,
        config_hash=chash,
    )


def make_output(qoe=0.5):
    return {
        "metrics": {
            "utility": 0.6,
            "rebuffer_ratio": 0.0,
            "switching_rate": 0.1,
            "qoe": qoe,
            "beta": 10.0,
            "gamma": 1.0,
            "controller": "c",
            "trace": "t",
            "seed": 0,
        },
        "counters": {"retries": 0},
        "violations": [],
    }


def ok_thunk():
    return make_output()


def raising_thunk():
    raise RuntimeError("boom")


def hanging_thunk():  # pragma: no cover - killed by the supervisor
    time.sleep(60)
    return make_output()


def suicidal_thunk():  # pragma: no cover - dies before returning
    os.kill(os.getpid(), signal.SIGKILL)


def tiny_profile(ladder, segments=12):
    return EvaluationProfile(
        name="tiny",
        ladder=ladder,
        player=PlayerConfig(num_segments=segments, live_delay=None),
    )


def tiny_traces(n=4):
    return [
        ThroughputTrace.from_samples(
            [4.0 + (i + j) % 3 for i in range(60)], 1.0, name=f"tt-{j}"
        )
        for j in range(n)
    ]


def suite_qoes(suite):
    return {
        name: [m.qoe for m in metrics]
        for name, metrics in suite.per_controller.items()
    }


# ----------------------------------------------------------------------
# Config hash & journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_config_hash_stable_and_sensitive(self):
        spec = {"a": 1, "b": [1, 2], "c": {"x": 0.5}}
        same = {"c": {"x": 0.5}, "b": [1, 2], "a": 1}  # key order irrelevant
        assert config_hash(spec) == config_hash(same)
        assert config_hash(spec) != config_hash({**spec, "a": 2})
        assert len(config_hash(spec)) == 16

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = Journal.fresh(path, {"kind": "test", "seed": 3})
        record = SessionRecord(key=make_key(), metrics={"qoe": 1.0})
        journal.record(record.to_dict())
        manifest, records = Journal.load(path)
        assert manifest["config_hash"] == config_hash({"kind": "test", "seed": 3})
        assert manifest["version"]
        assert manifest["spec"]["seed"] == 3
        assert len(records) == 1
        loaded = SessionRecord.from_dict(records[0])
        assert loaded.key == make_key()
        assert loaded.status == "ok"

    def test_every_flush_is_a_complete_file(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = Journal.fresh(path, {"k": 1})
        for i in range(5):
            journal.record(
                SessionRecord(key=make_key(seed=i)).to_dict()
            )
            # After every flush the on-disk file parses completely: the
            # atomic rename never exposes a torn line.
            with open(path) as handle:
                lines = handle.read().splitlines()
            parsed = [json.loads(line) for line in lines]
            assert parsed[0]["kind"] == "manifest"
            assert len(parsed) == i + 2

    def test_record_replaces_same_key(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = Journal.fresh(path, {"k": 1})
        journal.record(
            SessionRecord(key=make_key(), status="failed").to_dict()
        )
        journal.record(SessionRecord(key=make_key(), status="ok").to_dict())
        _, records = Journal.load(path)
        assert len(records) == 1
        assert records[0]["status"] == "ok"

    def test_resume_refuses_config_mismatch(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        Journal.fresh(path, {"sessions": 4})
        with pytest.raises(ConfigMismatchError, match="refusing to resume"):
            Journal.open(path, {"sessions": 8}, resume=True)

    def test_gzip_roundtrip(self, tmp_path):
        """A .gz journal compresses on flush and reads transparently."""
        import gzip

        path = str(tmp_path / "run.jsonl.gz")
        journal = Journal.fresh(path, {"kind": "test", "seed": 3})
        assert journal.compress
        for i in range(3):
            journal.record(SessionRecord(key=make_key(seed=i)).to_dict())
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        manifest, records = Journal.load(path)
        assert manifest["config_hash"] == config_hash(
            {"kind": "test", "seed": 3}
        )
        assert len(records) == 3
        # The payload inside is the same JSONL a plain journal writes.
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert json.loads(lines[0])["kind"] == "manifest"

    def test_gzip_resume_and_format_stickiness(self, tmp_path):
        path = str(tmp_path / "run.jsonl.gz")
        journal = Journal.fresh(path, {"k": 1})
        journal.record(SessionRecord(key=make_key()).to_dict())
        resumed = Journal.open(path, {"k": 1}, resume=True)
        assert resumed.compress  # keeps writing gzip after resume
        assert len(resumed.records) == 1
        resumed.record(SessionRecord(key=make_key(seed=9)).to_dict())
        _, records = Journal.load(path)
        assert len(records) == 2

    def test_gzip_detected_without_suffix(self, tmp_path):
        """Reads key off the magic bytes, not the file name."""
        path = str(tmp_path / "run.jsonl")  # no .gz suffix
        journal = Journal.fresh(path, {"k": 2}, compress=True)
        journal.record(SessionRecord(key=make_key()).to_dict())
        _, records = Journal.load(path)
        assert len(records) == 1
        resumed = Journal.open(path, {"k": 2}, resume=True)
        assert resumed.compress

    def test_corrupt_gzip_raises_journal_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl.gz")
        with open(path, "wb") as handle:
            handle.write(b"\x1f\x8b" + b"\x00" * 16)  # magic, garbage body
        with pytest.raises(JournalError, match="gzip"):
            Journal.load(path)

    def test_resume_requires_manifest(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "session"}\n')
        with pytest.raises(JournalError, match="no manifest"):
            Journal.open(path, {"a": 1}, resume=True)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = Journal.fresh(path, {"k": 1})
        journal.record(SessionRecord(key=make_key()).to_dict())
        with open(path, "a") as handle:
            handle.write('{"kind": "session", "tr')  # torn write
        manifest, records = Journal.load(path)
        assert manifest is not None
        assert len(records) == 1

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        journal = Journal.fresh(path, {"k": 1})
        journal.record(SessionRecord(key=make_key()).to_dict())
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines.insert(1, "not json {")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            Journal.load(path)


# ----------------------------------------------------------------------
# Executor: containment
# ----------------------------------------------------------------------
class TestExecutor:
    def test_serial_matches_thunk_output(self):
        tasks = [SessionTask(key=make_key(seed=i), thunk=ok_thunk)
                 for i in range(3)]
        records = execute(tasks, jobs=1)
        assert [r.status for r in records] == ["ok"] * 3
        assert records[0].to_metrics().qoe == 0.5

    def test_serial_uncontained_propagates(self):
        tasks = [SessionTask(key=make_key(), thunk=raising_thunk)]
        with pytest.raises(RuntimeError, match="boom"):
            execute(tasks, jobs=1, contain=False)

    def test_serial_contained_records_failure(self):
        tasks = [
            SessionTask(key=make_key(seed=0), thunk=raising_thunk),
            SessionTask(key=make_key(seed=1), thunk=ok_thunk),
        ]
        records = execute(tasks, jobs=1, contain=True)
        assert records[0].status == "failed"
        assert records[0].error["type"] == "RuntimeError"
        assert records[0].error["message"] == "boom"
        assert "boom" in records[0].error["traceback"]
        assert records[1].status == "ok"

    def test_pool_contains_raising_worker(self):
        tasks = [SessionTask(key=make_key(seed=i), thunk=ok_thunk)
                 for i in range(4)]
        tasks[1] = SessionTask(key=make_key(seed=1), thunk=raising_thunk)
        records = execute(tasks, jobs=2)
        assert [r.status for r in records] == ["ok", "failed", "ok", "ok"]
        assert records[1].error["phase"] == "exception"
        assert records[1].error["type"] == "RuntimeError"
        assert records[1].key.seed == 1

    def test_pool_kills_hanging_worker(self):
        tasks = [
            SessionTask(key=make_key(seed=0), thunk=ok_thunk),
            SessionTask(key=make_key(seed=1), thunk=hanging_thunk),
            SessionTask(key=make_key(seed=2), thunk=ok_thunk),
        ]
        records = execute(tasks, jobs=2, timeout=1.0)
        assert records[1].status == "failed"
        assert records[1].error["phase"] == "timeout"
        assert "wall-clock budget" in records[1].error["message"]
        assert records[0].status == "ok"
        assert records[2].status == "ok"

    def test_pool_contains_dying_worker(self):
        tasks = [
            SessionTask(key=make_key(seed=0), thunk=suicidal_thunk),
            SessionTask(key=make_key(seed=1), thunk=ok_thunk),
        ]
        records = execute(tasks, jobs=2)
        assert records[0].status == "failed"
        assert records[0].error["phase"] == "crash"
        assert records[1].status == "ok"

    def test_journal_skips_completed_keys(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        spec = {"k": "exec"}
        tasks = [SessionTask(key=make_key(seed=i), thunk=ok_thunk)
                 for i in range(3)]
        journal = Journal.open(path, spec)
        execute(tasks, jobs=1, journal=journal)

        calls = []

        def counting_thunk():
            calls.append(1)
            return make_output()

        resumed = Journal.open(path, spec, resume=True)
        tasks2 = [SessionTask(key=make_key(seed=i), thunk=counting_thunk)
                  for i in range(3)]
        records = execute(tasks2, jobs=1, journal=resumed)
        assert not calls  # everything came from the journal
        assert all(r.cached for r in records)

    def test_failed_sessions_are_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        spec = {"k": "retry"}
        journal = Journal.open(path, spec)
        execute(
            [SessionTask(key=make_key(), thunk=raising_thunk)],
            jobs=1, contain=True, journal=journal,
        )
        resumed = Journal.open(path, spec, resume=True)
        records = execute(
            [SessionTask(key=make_key(), thunk=ok_thunk)],
            jobs=1, journal=resumed,
        )
        assert records[0].status == "ok"
        assert not records[0].cached

    def test_metrics_dict_roundtrip_is_exact(self, ladder, steady_trace):
        result = run_session(
            BolaController(), steady_trace, ladder,
            PlayerConfig(num_segments=10, live_delay=None),
        )
        metrics = qoe_from_session(result, seed=7)
        rebuilt = metrics_from_dict(
            json.loads(json.dumps(metrics_to_dict(metrics)))
        )
        assert rebuilt == metrics


# ----------------------------------------------------------------------
# Invariant auditor
# ----------------------------------------------------------------------
class TestAudit:
    def run_one(self, ladder, trace, faults=None):
        config = PlayerConfig(num_segments=15, live_delay=None)
        result = simulate_session(
            BolaController(), trace, ladder, config, faults=faults
        )
        metrics = qoe_from_session(result)
        return result, metrics, config

    def test_clean_session_passes(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        assert audit_session(result, metrics, config=config) == []

    def test_clean_faulted_session_passes(self, ladder, steady_trace):
        plan = FaultPlan.of_intensity(0.4, seed=5)
        result, metrics, config = self.run_one(
            ladder, steady_trace, faults=plan
        )
        assert audit_session(
            result, metrics, config=config, faults=plan
        ) == []

    def test_negative_buffer_is_caught(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        result.buffer_levels[3] = -2.0
        violations = audit_session(result, metrics, config=config)
        assert any("negative buffer" in v for v in violations)

    def test_time_conservation_violation_is_caught(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        result.rebuffer_time += 5.0
        result.rebuffer_events += 1
        violations = audit_session(result, config=config)
        assert any("time conservation" in v for v in violations)

    def test_qoe_mismatch_is_caught(self, ladder, steady_trace):
        import dataclasses

        result, metrics, config = self.run_one(ladder, steady_trace)
        tampered = dataclasses.replace(metrics, qoe=metrics.qoe + 0.5)
        violations = audit_session(result, tampered, config=config)
        assert any("QoE" in v for v in violations)

    def test_fault_counter_mismatch_is_caught(self, ladder, steady_trace):
        plan = FaultPlan.of_intensity(0.4, seed=5)
        result, metrics, config = self.run_one(
            ladder, steady_trace, faults=plan
        )
        result.faults_injected += 3
        violations = audit_session(
            result, metrics, config=config, faults=plan
        )
        assert any("fault plan" in v for v in violations)

    def test_phantom_faults_without_plan_are_caught(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        result.faults_injected = 2
        violations = audit_session(result, metrics, config=config)
        assert any("without a fault plan" in v for v in violations)

    def test_invalid_rung_is_caught(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        result.qualities[0] = 99
        violations = audit_session(result, config=config)
        assert any("ladder" in v for v in violations)

    def test_series_length_mismatch_is_caught(self, ladder, steady_trace):
        result, metrics, config = self.run_one(ladder, steady_trace)
        result.download_times.pop()
        violations = audit_session(result, config=config)
        assert any("length mismatch" in v for v in violations)


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
class TestHarnessIntegration:
    def factories(self):
        return {"bola": BolaController, "bba": BbaController}

    def test_parallel_equals_serial(self, ladder):
        traces = tiny_traces(3)
        profile = tiny_profile(ladder)
        serial = run_suite(self.factories(), traces, profile, "tiny")
        pooled = run_suite(
            self.factories(), traces, profile, "tiny", jobs=2
        )
        assert suite_qoes(serial) == suite_qoes(pooled)
        assert not pooled.failures and not pooled.flagged

    def test_crashing_controller_yields_failure_record(self, ladder):
        class CrashingController(BolaController):
            name = "crasher"

            def select_quality(self, obs):
                raise ValueError("controller exploded")

        factories = {"bola": BolaController, "crash": CrashingController}
        suite = run_suite(
            factories, tiny_traces(2), tiny_profile(ladder), "tiny", jobs=2
        )
        assert len(suite.per_controller["bola"]) == 2
        assert suite.per_controller["crash"] == []
        assert len(suite.failures["crash"]) == 2
        first = suite.failures["crash"][0]
        assert first.error["type"] == "ValueError"
        assert first.key.trace == "tt-0"  # names the exact session
        lines = suite.failure_lines()
        assert any("crash" in line and "ValueError" in line for line in lines)
        # summaries() still works for the healthy controllers
        assert "bola" in suite.summaries()
        assert "crash" not in suite.summaries()

    def test_run_dataset_attaches_identity(self, ladder):
        traces = tiny_traces(2)
        metrics = run_dataset(
            BolaController, traces, ladder,
            PlayerConfig(num_segments=8, live_delay=None),
            seeds=[11, 22],
        )
        assert [m.trace for m in metrics] == ["tt-0", "tt-1"]
        assert [m.seed for m in metrics] == [11, 22]
        assert all(m.controller == "bola" for m in metrics)

    def test_run_dataset_default_seed_is_index(self, ladder):
        metrics = run_dataset(
            BolaController, tiny_traces(2), ladder,
            PlayerConfig(num_segments=8, live_delay=None),
        )
        assert [m.seed for m in metrics] == [0, 1]

    def test_sweep_parallel_equals_serial(self, ladder):
        traces = tiny_traces(2)
        profile = tiny_profile(ladder)
        serial = sweep_fault_intensity(
            traces, profile, factories=self.factories(),
            intensities=[0.0, 0.4], seed=2,
        )
        pooled = sweep_fault_intensity(
            traces, profile, factories=self.factories(),
            intensities=[0.0, 0.4], seed=2, jobs=2,
        )
        for name in serial.curves:
            assert serial.curves[name].qoe_means == pooled.curves[name].qoe_means

    def test_resume_rejects_changed_config(self, ladder, tmp_path):
        path = str(tmp_path / "suite.jsonl")
        traces = tiny_traces(2)
        profile = tiny_profile(ladder)
        run_suite(self.factories(), traces, profile, "tiny", journal=path)
        with pytest.raises(ConfigMismatchError):
            run_suite(
                self.factories(), traces[:1], profile, "tiny",
                journal=path, resume=True,
            )


# ----------------------------------------------------------------------
# Acceptance: SIGKILL halfway, resume, identical aggregates
# ----------------------------------------------------------------------
_KILL_SCRIPT = textwrap.dedent(
    """
    from repro.abr.bba import BbaController
    from repro.abr.bola import BolaController
    from repro.analysis import run_suite
    from repro.sim.network import ThroughputTrace
    from repro.sim.player import PlayerConfig
    from repro.sim.profiles import EvaluationProfile
    from repro.sim.video import BitrateLadder

    ladder = BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0, name="test")
    traces = [
        ThroughputTrace.from_samples(
            [4.0 + (i + j) % 3 for i in range(60)], 1.0, name=f"tt-{j}"
        )
        for j in range(4)
    ]
    profile = EvaluationProfile(
        name="tiny",
        ladder=ladder,
        player=PlayerConfig(num_segments=12, live_delay=None),
    )
    factories = {"bola": BolaController, "bba": BbaController}
    run_suite(factories, traces, profile, "tiny",
              jobs=JOBS, journal=JOURNAL, resume=RESUME)
    print("COMPLETED")
    """
)


class TestKillAndResume:
    def run_script(self, journal, jobs, resume, kill_after=None):
        script = (
            _KILL_SCRIPT
            .replace("JOURNAL", repr(str(journal)))
            .replace("JOBS", str(jobs))
            .replace("RESUME", str(resume))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        if kill_after is not None:
            env["REPRO_JOURNAL_KILL_AFTER"] = str(kill_after)
        else:
            env.pop("REPRO_JOURNAL_KILL_AFTER", None)
        return subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=300,
        )

    def test_sigkill_midrun_then_resume_matches_serial(self, ladder, tmp_path):
        journal = tmp_path / "killed.jsonl"

        # 1. Run with the test hook that SIGKILLs the process after the
        #    4th journal flush — a hard mid-run crash (8 sessions total).
        proc = self.run_script(journal, jobs=2, resume=False, kill_after=4)
        assert proc.returncode == -signal.SIGKILL
        assert "COMPLETED" not in proc.stdout

        manifest, records = Journal.load(str(journal))
        assert manifest is not None
        assert len(records) == 4  # exactly the flushed prefix survived

        # 2. Resume: completes the run, reusing the journaled prefix.
        proc = self.run_script(journal, jobs=2, resume=True)
        assert proc.returncode == 0, proc.stderr
        assert "COMPLETED" in proc.stdout
        _, records = Journal.load(str(journal))
        assert len(records) == 8

        # 3. The resumed aggregates are identical to an uninterrupted
        #    jobs=1 serial run.
        traces = tiny_traces(4)
        profile = tiny_profile(ladder)
        factories = {"bola": BolaController, "bba": BbaController}
        fresh = run_suite(factories, traces, profile, "tiny")

        resumed = run_suite(
            factories, traces, profile, "tiny",
            journal=str(journal), resume=True,
        )
        assert suite_qoes(fresh) == suite_qoes(resumed)
        for name, summary in fresh.summaries().items():
            other = resumed.summary(name)
            assert summary.qoe == other.qoe
            assert summary.rebuffer_ratio == other.rebuffer_ratio
            assert summary.switching_rate == other.switching_rate


# ----------------------------------------------------------------------
# ResilientController: injectable watchdog clock
# ----------------------------------------------------------------------
class FakeClock:
    """A clock advancing a fixed amount per call — no real sleeps."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


class TestWatchdogClock:
    def obs(self, ladder):
        from repro.abr.base import PlayerObservation

        return PlayerObservation(
            wall_time=0.0, segment_index=0, buffer_level=5.0,
            max_buffer=20.0, previous_quality=None, ladder=ladder,
            history=(),
        )

    def test_default_clock_is_monotonic(self):
        import time as time_mod

        wrapper = ResilientController(BolaController())
        assert wrapper.clock is time_mod.monotonic

    def test_slow_solver_trips_watchdog_deterministically(self, ladder):
        clock = FakeClock(step=2.0)  # every decision "takes" 2 s
        wrapper = ResilientController(
            BolaController(), solve_timeout=1.0, max_watchdog_trips=3,
            clock=clock,
        )
        wrapper.reset()
        obs = self.obs(ladder)
        for _ in range(3):
            assert wrapper.select_quality(obs) is not None
        assert wrapper.watchdog_trips == 3
        assert wrapper._inner_retired
        assert wrapper.fallback_decisions == 3

    def test_fast_solver_never_trips(self, ladder):
        clock = FakeClock(step=0.001)
        wrapper = ResilientController(
            BolaController(), solve_timeout=1.0, clock=clock
        )
        wrapper.reset()
        for _ in range(5):
            wrapper.select_quality(self.obs(ladder))
        assert wrapper.watchdog_trips == 0


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCliRunner:
    def test_compare_with_jobs_and_journal(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "cli.jsonl"
        argv = ["compare", "--dataset", "puffer", "--sessions", "2",
                "--duration", "60", "--jobs", "2",
                "--journal", str(journal)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "soda" in out
        assert journal.exists()
        manifest, records = Journal.load(str(journal))
        assert manifest is not None
        assert len(records) == 10  # 5 controllers x 2 sessions

        # Resume is a no-op replay with identical output.
        assert main(argv + ["--resume"]) == 0
        out2 = capsys.readouterr().out
        assert out == out2

    def test_resume_without_journal_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["compare", "--dataset", "puffer", "--sessions", "1",
                     "--duration", "60", "--resume"]) == 2
        assert "requires --journal" in capsys.readouterr().err

    def test_resume_with_changed_config_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "cli.jsonl"
        base = ["robustness", "--dataset", "puffer", "--duration", "60",
                "--intensities", "0,0.2", "--journal", str(journal)]
        assert main(base + ["--sessions", "1"]) == 0
        capsys.readouterr()
        assert main(base + ["--sessions", "2", "--resume"]) == 2
        assert "refusing to resume" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Streaming reader (iter_records)
# ----------------------------------------------------------------------
class TestIterRecords:
    """The streaming journal reader the learning pipeline extracts from."""

    @staticmethod
    def _synthetic_journal(path, sessions, pad=0):
        """Hand-write a journal: manifest plus ``sessions`` session lines,
        each optionally padded to grow the file into the multi-MB range."""
        lines = [json.dumps({
            "kind": "manifest", "config_hash": "a" * 16, "spec": {"n": 1},
        })]
        for i in range(sessions):
            record = {
                "kind": "session", "controller": "soda", "dataset": "d",
                "trace": f"t{i}", "seed": i, "config_hash": "a" * 16,
                "status": "ok", "metrics": {"qoe": float(i)},
            }
            if pad:
                record["padding"] = "x" * pad
            lines.append(json.dumps(record))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

    def test_streams_a_multi_megabyte_journal_in_order(self, tmp_path):
        path = str(tmp_path / "big.jsonl")
        self._synthetic_journal(path, sessions=4000, pad=1024)
        assert os.path.getsize(path) > 4 * 1024 * 1024
        seeds = []
        for i, record in enumerate(iter_records(path)):
            if i == 0:
                assert record["kind"] == "manifest"
                continue
            assert record["kind"] == "session"
            seeds.append(record["seed"])
        assert seeds == list(range(4000))

    def test_kind_filter(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        self._synthetic_journal(path, sessions=5)
        records = list(iter_records(path, kind="session"))
        assert len(records) == 5
        assert all(r["kind"] == "session" for r in records)
        assert list(iter_records(path, kind="manifest"))[0]["spec"] == {"n": 1}

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        import gzip as _gzip

        plain = tmp_path / "plain.jsonl"
        self._synthetic_journal(str(plain), sessions=50)
        squeezed = tmp_path / "nosuffix.jsonl"  # deliberately not .gz
        squeezed.write_bytes(_gzip.compress(plain.read_bytes()))
        assert [r["kind"] for r in iter_records(str(squeezed))] \
            == [r["kind"] for r in iter_records(str(plain))]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        self._synthetic_journal(path, sessions=3)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "session", "tr')  # mid-flush crash
        records = list(iter_records(path))
        assert len(records) == 4  # manifest + 3 intact sessions

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "corrupt.jsonl")
        self._synthetic_journal(path, sessions=3)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[2] = lines[2][:20]  # truncate a non-final line
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            list(iter_records(path))

    def test_corrupt_gzip_raises_journal_error(self, tmp_path):
        import gzip as _gzip

        path = tmp_path / "bad.jsonl.gz"
        payload = _gzip.compress(b'{"kind": "manifest"}\n' * 40)
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(JournalError, match="gzip"):
            list(iter_records(str(path)))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"kind": "manifest"}\n\n\n{"kind": "session"}\n')
        assert len(list(iter_records(str(path)))) == 2


class TestSessionRecordDecisions:
    """The opt-in demonstration rows ride the journal wire format."""

    def test_roundtrip_preserves_rows(self):
        rows = [[0.0, -1.0, -1.0, 0.0], [4.5, 3.25, 0.0, 1.0]]
        record = SessionRecord(
            key=make_key(), metrics={"qoe": 1.0}, decisions=rows,
        )
        data = record.to_dict()
        assert data["decisions"] == rows
        back = SessionRecord.from_dict(data)
        assert back.decisions == rows

    def test_absent_by_default_so_old_journals_hash_unchanged(self):
        record = SessionRecord(key=make_key(), metrics={"qoe": 1.0})
        data = record.to_dict()
        assert "decisions" not in data
        assert SessionRecord.from_dict(data).decisions is None

    def test_run_suite_only_journals_decisions_when_asked(self, tmp_path):
        from repro.sim.profiles import live_profile

        profile = live_profile(session_seconds=60.0)
        traces = tiny_traces(1)
        from repro.core.controller import SodaController

        factories = {"soda": lambda: SodaController()}
        plain = str(tmp_path / "plain.jsonl")
        run_suite(factories, traces, profile, "d", journal=plain, jobs=1)
        _, records = Journal.load(plain)
        assert all(r.get("decisions") is None for r in records)

        logged = str(tmp_path / "logged.jsonl")
        run_suite(factories, traces, profile, "d", journal=logged, jobs=1,
                  log_decisions=True)
        _, records = Journal.load(logged)
        assert records and all(r.get("decisions") for r in records)
        for row in records[0]["decisions"]:
            assert len(row) == 4

    def test_log_decisions_changes_the_config_hash_only_when_on(
            self, tmp_path):
        from repro.analysis.harness import suite_spec
        from repro.sim.profiles import live_profile

        from repro.core.controller import SodaController

        profile = live_profile(session_seconds=60.0)
        traces = tiny_traces(1)
        factories = {"soda": lambda: SodaController()}
        base = suite_spec(factories, traces, profile, "d", 10.0, 1.0)
        off = suite_spec(factories, traces, profile, "d", 10.0, 1.0,
                         log_decisions=False)
        on = suite_spec(factories, traces, profile, "d", 10.0, 1.0,
                        log_decisions=True)
        assert config_hash(base) == config_hash(off)
        assert config_hash(base) != config_hash(on)
