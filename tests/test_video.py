"""Unit and property tests for ladders, sizes, and quality curves."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.video import (
    BitrateLadder,
    SsimModel,
    prime_video_live_ladder,
    puffer_news_ladder,
    youtube_4k_ladder,
    youtube_hd_ladder,
)


class TestLadderConstruction:
    def test_sorted(self):
        ladder = BitrateLadder([6.0, 1.0, 3.0])
        assert ladder.bitrates == [1.0, 3.0, 6.0]
        assert ladder.min_bitrate == 1.0
        assert ladder.max_bitrate == 6.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BitrateLadder([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BitrateLadder([0.0, 1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            BitrateLadder([1.0, 1.0])

    def test_rejects_bad_segment_duration(self):
        with pytest.raises(ValueError):
            BitrateLadder([1.0], segment_duration=0.0)

    def test_rejects_bad_size_variation(self):
        with pytest.raises(ValueError):
            BitrateLadder([1.0], size_variation=1.0)

    def test_len(self):
        assert len(BitrateLadder([1.0, 2.0])) == 2


class TestSizesAndLookups:
    def test_segment_size_cbr(self):
        ladder = BitrateLadder([2.0], segment_duration=2.0)
        assert ladder.segment_size(0) == pytest.approx(4.0)

    def test_segment_size_vbr_bounded(self):
        ladder = BitrateLadder([2.0], segment_duration=2.0, size_variation=0.2)
        for i in range(50):
            size = ladder.segment_size(0, i)
            assert 4.0 * 0.8 - 1e-9 <= size <= 4.0 * 1.2 + 1e-9

    def test_vbr_affects_rungs_identically(self):
        ladder = BitrateLadder([1.0, 4.0], size_variation=0.3)
        for i in range(10):
            ratio = ladder.segment_size(1, i) / ladder.segment_size(0, i)
            assert ratio == pytest.approx(4.0)

    def test_bitrate_out_of_range(self):
        ladder = BitrateLadder([1.0, 2.0])
        with pytest.raises(IndexError):
            ladder.bitrate(2)
        with pytest.raises(IndexError):
            ladder.bitrate(-1)

    def test_quality_for_bitrate(self):
        ladder = BitrateLadder([1.0, 3.0, 6.0])
        assert ladder.quality_for_bitrate(0.5) == 0
        assert ladder.quality_for_bitrate(1.0) == 0
        assert ladder.quality_for_bitrate(3.5) == 1
        assert ladder.quality_for_bitrate(100.0) == 2

    def test_ceil_quality_for_bitrate(self):
        ladder = BitrateLadder([1.0, 3.0, 6.0])
        assert ladder.ceil_quality_for_bitrate(0.5) == 0
        assert ladder.ceil_quality_for_bitrate(3.0) == 1
        assert ladder.ceil_quality_for_bitrate(3.5) == 2
        assert ladder.ceil_quality_for_bitrate(100.0) == 2


class TestUtilities:
    def test_log_utility_endpoints(self):
        ladder = BitrateLadder([1.0, 3.0, 6.0])
        assert ladder.log_utility(0) == pytest.approx(0.0)
        assert ladder.log_utility(2) == pytest.approx(1.0)
        assert 0.0 < ladder.log_utility(1) < 1.0

    def test_single_rung_utility(self):
        assert BitrateLadder([2.0]).log_utility(0) == 1.0

    def test_utilities_increasing(self):
        utils = youtube_4k_ladder().utilities()
        assert all(a < b for a, b in zip(utils, utils[1:]))

    def test_without_top(self):
        hd = youtube_4k_ladder().without_top(2)
        assert hd.bitrates == youtube_hd_ladder().bitrates

    def test_without_top_rejects_all(self):
        with pytest.raises(ValueError):
            BitrateLadder([1.0, 2.0]).without_top(2)


class TestStandardLadders:
    def test_youtube_4k(self):
        ladder = youtube_4k_ladder()
        assert ladder.bitrates == [1.5, 4.0, 7.5, 12.0, 24.0, 60.0]
        assert ladder.segment_duration == 2.0

    def test_prime_video_ladder(self):
        ladder = prime_video_live_ladder()
        assert ladder.levels == 10
        assert ladder.min_bitrate == 0.2
        assert ladder.max_bitrate == 8.0

    def test_puffer_news_ladder(self):
        ladder = puffer_news_ladder()
        assert ladder.levels == 5
        assert ladder.max_bitrate == pytest.approx(2.0)


class TestSsimModel:
    def test_monotone_increasing(self):
        model = SsimModel()
        values = [model.ssim(r) for r in (0.1, 0.5, 1.0, 2.0, 8.0)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_bounded(self):
        model = SsimModel()
        assert model.ssim(0.0) == pytest.approx(model.ssim_max - model.span)
        assert model.ssim(1e9) <= model.ssim_max + 1e-9

    def test_normalized_at_most_one(self):
        model = SsimModel()
        assert model.normalized(1e9) <= 1.0 + 1e-9

    def test_rejects_negative_bitrate(self):
        with pytest.raises(ValueError):
            SsimModel().ssim(-1.0)


@st.composite
def ladders(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    rates = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return BitrateLadder(rates)


class TestProperties:
    @given(ladders())
    @settings(max_examples=60, deadline=None)
    def test_utilities_in_unit_interval(self, ladder):
        for q in range(ladder.levels):
            u = ladder.log_utility(q)
            assert -1e-9 <= u <= 1.0 + 1e-9

    @given(ladders(), st.floats(min_value=0.01, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_floor_ceil_bracket(self, ladder, bw):
        lo = ladder.quality_for_bitrate(bw)
        hi = ladder.ceil_quality_for_bitrate(bw)
        assert 0 <= lo <= hi or ladder.bitrate(hi) == ladder.max_bitrate
        # Floor rung is at most the bandwidth unless nothing fits.
        if ladder.bitrate(lo) > bw:
            assert lo == 0
        # Ceil rung is at least the bandwidth unless everything is below.
        if ladder.bitrate(hi) < bw:
            assert hi == ladder.levels - 1
