"""Tests for Algorithm 1 (monotonic search) vs the brute-force solver."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objective import SodaConfig
from repro.core.solver import (
    plan_cost,
    solve_brute_force,
    solve_monotonic,
)
from repro.sim.video import BitrateLadder


@pytest.fixture
def cfg():
    return SodaConfig(horizon=3, beta=0.1, gamma=2.0, target_buffer=10.0,
                      switch_event_cost=0.0)


def is_monotonic(seq, anchor=None):
    full = list(seq) if anchor is None else [anchor] + list(seq)
    return all(a <= b for a, b in zip(full, full[1:])) or all(
        a >= b for a, b in zip(full, full[1:])
    )


class TestMonotonicSolver:
    def test_returns_feasible_plan(self, ladder, cfg):
        plan = solve_monotonic(4.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        assert plan.feasible
        assert len(plan.sequence) == cfg.horizon
        assert plan.quality == plan.sequence[0]

    def test_sequence_is_monotonic(self, ladder, cfg):
        plan = solve_monotonic(4.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        assert is_monotonic(plan.sequence, anchor=1)

    def test_objective_matches_plan_cost(self, ladder, cfg):
        plan = solve_monotonic(4.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        recomputed = plan_cost(
            plan.sequence, 4.0, 8.0, 1, ladder, cfg, max_buffer=20.0
        )
        assert plan.objective == pytest.approx(recomputed)

    def test_no_previous_quality(self, ladder, cfg):
        plan = solve_monotonic(4.0, 8.0, None, ladder, cfg, max_buffer=20.0)
        assert plan.feasible
        assert is_monotonic(plan.sequence)

    def test_infeasible_when_bandwidth_zero_and_empty_buffer(self, ladder, cfg):
        # With zero throughput, any plan underflows the buffer.
        plan = solve_monotonic(0.0, 1.0, 0, ladder, cfg, max_buffer=20.0)
        assert not plan.feasible
        assert plan.objective == math.inf
        assert plan.sequence == ()

    def test_infeasible_on_overflow(self, ladder, cfg):
        # Throughput so high that even the top rung overflows a full buffer.
        plan = solve_monotonic(1000.0, 19.0, 2, ladder, cfg, max_buffer=20.0)
        assert not plan.feasible

    def test_first_cap_respected(self, ladder, cfg):
        free = solve_monotonic(5.0, 10.0, 0, ladder, cfg, max_buffer=50.0)
        capped = solve_monotonic(
            5.0, 10.0, 0, ladder, cfg, max_buffer=50.0, first_cap=0
        )
        assert capped.quality == 0
        assert free.objective <= capped.objective + 1e-12

    def test_per_interval_predictions(self, ladder, cfg):
        plan = solve_monotonic(
            [6.0, 3.0, 1.0], 8.0, 1, ladder, cfg, max_buffer=20.0
        )
        assert plan.feasible

    def test_prediction_length_mismatch(self, ladder, cfg):
        with pytest.raises(ValueError):
            solve_monotonic([1.0, 2.0], 8.0, 1, ladder, cfg, max_buffer=20.0)

    def test_negative_prediction_rejected(self, ladder, cfg):
        with pytest.raises(ValueError):
            solve_monotonic(-1.0, 8.0, 1, ladder, cfg, max_buffer=20.0)

    def test_terminal_weight_steers_to_target(self, ladder, cfg):
        # With a huge terminal weight the plan must land near the target.
        strong = solve_monotonic(
            6.0, 2.0, 0, ladder, cfg, max_buffer=20.0, terminal_weight=100.0
        )
        weak = solve_monotonic(
            6.0, 2.0, 0, ladder, cfg, max_buffer=20.0, terminal_weight=0.0
        )
        def landing(seq):
            x = 2.0
            for q in seq:
                x += 6.0 * 2.0 / ladder.bitrate(q) - 2.0
            return x
        target = cfg.resolve_target(20.0)
        assert abs(landing(strong.sequence) - target) <= abs(
            landing(weak.sequence) - target
        ) + 1e-9


class TestBruteForce:
    def test_at_least_as_good_as_monotonic(self, ladder, cfg):
        mono = solve_monotonic(4.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        brute = solve_brute_force(4.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        assert brute.objective <= mono.objective + 1e-9

    def test_enumerates_exhaustively(self, ladder, cfg):
        """Cross-check the brute-force solver against explicit enumeration."""
        omega, x0, prev = 4.0, 8.0, 1
        best = math.inf
        for seq in itertools.product(range(ladder.levels), repeat=cfg.horizon):
            c = plan_cost(seq, omega, x0, prev, ladder, cfg, max_buffer=20.0)
            best = min(best, c)
        plan = solve_brute_force(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        assert plan.objective == pytest.approx(best)

    def test_evaluation_counts(self, ladder):
        cfg = SodaConfig(horizon=4, switch_event_cost=0.0)
        mono = solve_monotonic(4.0, 10.0, 1, ladder, cfg, max_buffer=40.0)
        brute = solve_brute_force(4.0, 10.0, 1, ladder, cfg, max_buffer=40.0)
        # Monotone search scores far fewer candidates than |R|^K expansion.
        assert mono.evaluations < brute.evaluations


class TestPlanCost:
    def test_infeasible_plan_is_inf(self, ladder, cfg):
        # Quality 2 at zero throughput drains the buffer below zero.
        cost = plan_cost([2, 2, 2], 0.0, 1.0, 0, ladder, cfg, max_buffer=20.0)
        assert cost == math.inf

    def test_wrong_length_raises(self, ladder, cfg):
        with pytest.raises(ValueError):
            plan_cost([0], 4.0, 8.0, 0, ladder, cfg, max_buffer=20.0)

    def test_switch_costs_anchor_on_prev(self, ladder, cfg):
        flat = plan_cost([1, 1, 1], 6.0, 8.0, 1, ladder, cfg, max_buffer=20.0)
        anchored = plan_cost([1, 1, 1], 6.0, 8.0, 0, ladder, cfg, max_buffer=20.0)
        assert anchored > flat


situation = st.tuples(
    st.floats(min_value=0.5, max_value=40.0),   # omega
    st.floats(min_value=0.0, max_value=20.0),   # buffer
    st.integers(min_value=0, max_value=2),      # prev quality
)


class TestSolverProperties:
    @given(situation)
    @settings(max_examples=120, deadline=None)
    def test_monotonic_never_beats_brute_force(self, sit):
        omega, x0, prev = sit
        ladder = BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0)
        cfg = SodaConfig(horizon=3, beta=0.1, gamma=2.0, target_buffer=10.0)
        mono = solve_monotonic(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        brute = solve_brute_force(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        if mono.feasible:
            assert brute.feasible
            assert brute.objective <= mono.objective + 1e-9
            # The monotone optimum is a valid plan under the true objective.
            assert plan_cost(
                mono.sequence, omega, x0, prev, ladder, cfg, max_buffer=20.0
            ) == pytest.approx(mono.objective)

    @given(situation, st.floats(min_value=10.0, max_value=5000.0))
    @settings(max_examples=60, deadline=None)
    def test_high_gamma_recovers_brute_force_decision(self, sit, gamma):
        """Theorem 4.3: with large γ the approximation matches brute force."""
        omega, x0, prev = sit
        ladder = BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0)
        cfg = SodaConfig(
            horizon=3, beta=0.05, gamma=gamma, target_buffer=10.0,
            switch_event_cost=0.0,
        )
        mono = solve_monotonic(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        brute = solve_brute_force(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        if brute.feasible and gamma >= 1000.0:
            assert mono.quality == brute.quality

    @given(situation)
    @settings(max_examples=60, deadline=None)
    def test_feasible_plans_respect_buffer_bounds(self, sit):
        omega, x0, prev = sit
        ladder = BitrateLadder([1.0, 3.0, 6.0], segment_duration=2.0)
        cfg = SodaConfig(horizon=3, beta=0.1, gamma=2.0, target_buffer=10.0)
        plan = solve_monotonic(omega, x0, prev, ladder, cfg, max_buffer=20.0)
        if plan.feasible:
            x = x0
            for k, q in enumerate(plan.sequence):
                x += omega * 2.0 / ladder.bitrate(q) - 2.0
                assert -1e-6 <= x <= 20.0 + 1e-6
