"""Tests for the player simulator: dynamics, accounting, edge cases."""

import math

import pytest

from repro.abr.base import AbrController
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, simulate_session
from repro.sim.video import BitrateLadder


class FixedController(AbrController):
    """Always picks the same rung."""

    name = "fixed"

    def __init__(self, quality: int = 0):
        super().__init__()
        self.quality = quality

    def select_quality(self, obs):
        return self.quality


class DeferNTimesController(AbrController):
    """Defers a fixed number of times before picking rung 0."""

    name = "defer"

    def __init__(self, defers: int):
        super().__init__()
        self.defers = defers
        self._count = 0

    def reset(self):
        super().reset()
        self._count = 0

    def select_quality(self, obs):
        if self._count < self.defers:
            self._count += 1
            return None
        self._count = 0
        return 0


class BadController(AbrController):
    name = "bad"

    def select_quality(self, obs):
        return 99


class TestConfigValidation:
    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            PlayerConfig(max_buffer=0.0)

    def test_rejects_no_segments(self):
        with pytest.raises(ValueError):
            PlayerConfig(num_segments=0)

    def test_rejects_negative_startup(self):
        with pytest.raises(ValueError):
            PlayerConfig(startup_threshold=-1.0)

    def test_rejects_zero_live_delay(self):
        with pytest.raises(ValueError):
            PlayerConfig(live_delay=0.0)

    def test_rejects_bad_abandon_fraction(self):
        with pytest.raises(ValueError):
            PlayerConfig(abandon_check_fraction=0.0)

    def test_rejects_negative_abandon_threshold(self):
        with pytest.raises(ValueError):
            PlayerConfig(abandon_threshold=-0.5)


class TestBasicDynamics:
    def test_fast_network_no_rebuffering(self, ladder, steady_trace, vod_config):
        result = simulate_session(
            FixedController(0), steady_trace, ladder, vod_config
        )
        assert result.num_segments == 30
        assert result.rebuffer_time == pytest.approx(0.0)
        assert result.rebuffer_events == 0

    def test_qualities_recorded(self, ladder, steady_trace, vod_config):
        result = simulate_session(
            FixedController(1), steady_trace, ladder, vod_config
        )
        assert result.qualities == [1] * 30
        assert result.switch_count == 0
        assert result.bitrates == [3.0] * 30

    def test_slow_network_rebuffers(self, ladder, slow_trace, vod_config):
        # 0.5 Mb/s < lowest rung 1.0 Mb/s: every download outpaces playback.
        result = simulate_session(
            FixedController(0), slow_trace, ladder, vod_config
        )
        assert result.rebuffer_time > 0
        assert result.rebuffer_events >= 1

    def test_download_times_match_trace(self, ladder, vod_config):
        trace = ThroughputTrace.constant(4.0, 1000.0)
        result = simulate_session(FixedController(2), trace, ladder, vod_config)
        # Each 12 Mb segment at 4 Mb/s takes 3 s.
        assert all(dt == pytest.approx(3.0) for dt in result.download_times)
        assert all(th == pytest.approx(4.0) for th in result.throughputs)

    def test_startup_delay_accounted(self, ladder, vod_config):
        trace = ThroughputTrace.constant(1.0, 1000.0)
        result = simulate_session(FixedController(0), trace, ladder, vod_config)
        # First segment (2 Mb at 1 Mb/s) takes 2 s; playback starts after it.
        assert result.startup_delay == pytest.approx(2.0)

    def test_wall_duration_positive(self, ladder, steady_trace, vod_config):
        result = simulate_session(
            FixedController(0), steady_trace, ladder, vod_config
        )
        assert result.wall_duration > 0
        assert result.session_duration == result.wall_duration

    def test_play_duration(self, ladder, steady_trace, vod_config):
        result = simulate_session(
            FixedController(0), steady_trace, ladder, vod_config
        )
        assert result.play_duration == pytest.approx(60.0)


class TestBufferCap:
    def test_buffer_never_exceeds_cap(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=6.0, num_segments=40)
        result = simulate_session(
            FixedController(0), steady_trace, ladder, cfg
        )
        assert max(result.buffer_levels) <= 6.0 + 1e-9

    def test_waiting_for_room_counts_idle(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=6.0, num_segments=40)
        result = simulate_session(
            FixedController(0), steady_trace, ladder, cfg
        )
        assert result.idle_time > 0


class TestLiveDelay:
    def test_live_paces_the_session(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=30, live_delay=20.0)
        result = simulate_session(
            FixedController(0), steady_trace, ladder, cfg
        )
        # The last segment becomes available at (30*2 - 20) = 40 s.
        assert result.wall_duration >= 40.0 - 1e-9

    def test_live_buffer_bounded_by_delay(self, ladder, steady_trace):
        cfg = PlayerConfig(max_buffer=50.0, num_segments=40, live_delay=10.0)
        result = simulate_session(
            FixedController(0), steady_trace, ladder, cfg
        )
        # Cannot buffer more video than the live edge has produced.
        assert max(result.buffer_levels) <= 10.0 + 1e-6


class TestDeferral:
    def test_deferring_controller_progresses(self, ladder, steady_trace, vod_config):
        result = simulate_session(
            DeferNTimesController(3), steady_trace, ladder, vod_config
        )
        assert result.num_segments == 30
        assert result.idle_time >= 30 * 3 * 0.1 - 1e-6

    def test_infinite_deferral_raises(self, ladder, steady_trace, vod_config):
        with pytest.raises(RuntimeError, match="deferred"):
            simulate_session(
                DeferNTimesController(10**9), steady_trace, ladder, vod_config
            )


class TestInvalidControllers:
    def test_invalid_rung_raises(self, ladder, steady_trace, vod_config):
        with pytest.raises(ValueError, match="invalid rung"):
            simulate_session(BadController(), steady_trace, ladder, vod_config)

    def test_all_zero_trace_raises(self, ladder, vod_config):
        trace = ThroughputTrace.constant(0.0, 10.0)
        with pytest.raises(RuntimeError, match="never deliver"):
            simulate_session(FixedController(0), trace, ladder, vod_config)


class TestAbandonment:
    def _outage_trace(self):
        # Good for 30 s, then near-dead for 30 s, repeating.
        return ThroughputTrace([30.0, 30.0] * 8, [10.0, 0.2] * 8)

    def test_abandonment_triggers_on_outage(self, ladder):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=40, abandonment=True)
        result = simulate_session(
            FixedController(2), self._outage_trace(), ladder, cfg
        )
        assert result.abandonments > 0

    def test_abandonment_reduces_rebuffering(self, ladder):
        trace = self._outage_trace()
        on = PlayerConfig(max_buffer=20.0, num_segments=40, abandonment=True)
        off = PlayerConfig(max_buffer=20.0, num_segments=40, abandonment=False)
        with_ab = simulate_session(FixedController(2), trace, ladder, on)
        without = simulate_session(FixedController(2), trace, ladder, off)
        assert with_ab.rebuffer_time < without.rebuffer_time

    def test_lowest_rung_never_abandons(self, ladder):
        cfg = PlayerConfig(max_buffer=20.0, num_segments=40, abandonment=True)
        result = simulate_session(
            FixedController(0), self._outage_trace(), ladder, cfg
        )
        assert result.abandonments == 0


class TestDeterminism:
    def test_same_inputs_same_result(self, ladder, step_trace, short_config):
        a = simulate_session(FixedController(1), step_trace, ladder, short_config)
        b = simulate_session(FixedController(1), step_trace, ladder, short_config)
        assert a.qualities == b.qualities
        assert a.rebuffer_time == b.rebuffer_time
        assert a.wall_duration == b.wall_duration


class TestSessionResultDerived:
    def test_switch_count(self, ladder, steady_trace, vod_config):
        class Alternating(AbrController):
            name = "alt"

            def select_quality(self, obs):
                return obs.segment_index % 2

        result = simulate_session(Alternating(), steady_trace, ladder, vod_config)
        assert result.switch_count == 29
