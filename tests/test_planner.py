"""Tests for the continuous-action theory planner (Equation 3)."""

import numpy as np
import pytest

from repro.core.planner import (
    ContinuousPlan,
    ContinuousProblem,
    solve_continuous,
    trajectory_distance,
)
from repro.core.theory import fit_decay_rate


@pytest.fixture
def problem():
    return ContinuousProblem(
        r_min=1.5, r_max=12.0, max_buffer=20.0, target=12.0,
        beta=1.0, gamma=1.0, epsilon=0.25,
    )


class TestProblemValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"r_min": 0.0},
            {"r_min": 12.0},
            {"target": 0.0},
            {"target": 25.0},
            {"beta": -1.0},
            {"epsilon": 0.0},
        ],
    )
    def test_rejects(self, kwargs):
        base = dict(
            r_min=1.5, r_max=12.0, max_buffer=20.0, target=12.0,
            beta=1.0, gamma=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            ContinuousProblem(**base)

    def test_action_bounds(self, problem):
        assert problem.u_min == pytest.approx(1.0 / 12.0)
        assert problem.u_max == pytest.approx(1.0 / 1.5)


class TestSolve:
    def test_steady_state_holds_rate(self, problem):
        """At target buffer with feasible 1/ω, actions stay near 1/ω."""
        omega = np.full(8, 6.0)
        plan = solve_continuous(omega, problem.target, 1.0 / 6.0, problem)
        assert plan.converged
        # The tail of the horizon drifts (no terminal cost); the interior
        # holds the rate and the buffer.
        assert np.allclose(plan.actions[:-2], 1.0 / 6.0, atol=0.02)
        assert np.allclose(plan.buffers[:-2], problem.target, atol=0.2)

    def test_actions_within_bounds(self, problem):
        omega = np.linspace(3.0, 9.0, 10)
        plan = solve_continuous(omega, 5.0, 0.2, problem)
        assert np.all(plan.actions >= problem.u_min - 1e-9)
        assert np.all(plan.actions <= problem.u_max + 1e-9)

    def test_buffers_within_constraints(self, problem):
        omega = np.full(10, 4.0)
        plan = solve_continuous(omega, 2.0, 0.25, problem)
        assert plan.converged
        assert np.all(plan.buffers >= -1e-6)
        assert np.all(plan.buffers <= problem.max_buffer + 1e-6)

    def test_low_buffer_recovers_toward_target(self, problem):
        omega = np.full(12, 8.0)
        plan = solve_continuous(omega, 1.0, 1.0 / 8.0, problem)
        assert plan.converged
        assert plan.buffers[-1] > plan.buffers[0]

    def test_terminal_buffer_constraint(self, problem):
        omega = np.full(8, 8.0)
        plan = solve_continuous(
            omega, 6.0, 1.0 / 8.0, problem, terminal_buffer=12.0
        )
        assert plan.converged
        assert plan.buffers[-1] == pytest.approx(12.0, abs=1e-3)

    def test_bitrates_property(self, problem):
        omega = np.full(4, 6.0)
        plan = solve_continuous(omega, 12.0, 1.0 / 6.0, problem)
        assert np.allclose(plan.bitrates, 1.0 / plan.actions)

    def test_validates_omega(self, problem):
        with pytest.raises(ValueError):
            solve_continuous([], 5.0, 0.2, problem)
        with pytest.raises(ValueError):
            solve_continuous([0.0, 1.0], 5.0, 0.2, problem)


class TestSwitchingOnly:
    def test_monotone_actions(self, problem):
        """Lemma A.10: switching-cost-only optima are monotone in u."""
        omega = np.full(10, 6.0)
        for u_prev in (problem.u_min, 1.0 / 6.0, problem.u_max):
            plan = solve_continuous(
                omega, 10.0, u_prev, problem, switching_only=True
            )
            seq = np.concatenate(([u_prev], plan.actions))
            diffs = np.diff(seq)
            assert np.all(diffs >= -1e-6) or np.all(diffs <= 1e-6)

    def test_steady_when_matching(self, problem):
        """u_prev = 1/ω is already optimal: stay put (Lemma A.10 case 3)."""
        omega = np.full(6, 6.0)
        plan = solve_continuous(
            omega, 10.0, 1.0 / 6.0, problem, switching_only=True
        )
        assert np.allclose(plan.actions, 1.0 / 6.0, atol=1e-4)
        assert plan.cost == pytest.approx(0.0, abs=1e-6)


class TestDecayProperty:
    def test_perturbation_decays_exponentially(self, problem):
        """Figure 6: trajectories from different starts converge fast."""
        omega = np.full(12, 6.0)
        a = solve_continuous(omega, 4.0, 1.0 / 6.0, problem)
        b = solve_continuous(omega, 18.0, 1.0 / 3.0, problem)
        assert a.converged and b.converged
        d = trajectory_distance(a, b)
        assert d[0] > d[-1]
        rho = fit_decay_rate(d)
        assert 0.0 < rho < 0.95

    def test_distance_requires_same_horizon(self, problem):
        a = solve_continuous(np.full(4, 6.0), 4.0, 0.2, problem)
        b = solve_continuous(np.full(5, 6.0), 4.0, 0.2, problem)
        with pytest.raises(ValueError):
            trajectory_distance(a, b)
