"""Tests for the baseline ABR controllers."""

import pytest

from repro.abr import (
    BolaController,
    DynamicController,
    FuguController,
    HybController,
    MpcController,
    PlayerObservation,
    QTableController,
    RateController,
    RobustMpcController,
    rate_rule_quality,
    train_q_controller,
)
from repro.abr.bola import BolaParameters
from repro.prediction import MovingAveragePredictor, ThroughputSample
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.session import run_session
from repro.sim.video import BitrateLadder


def make_obs(
    ladder,
    buffer_level=10.0,
    prev=1,
    throughput=4.0,
    playing=True,
    max_buffer=20.0,
    wall_time=50.0,
    segment_index=10,
):
    history = ()
    if throughput is not None:
        history = (
            ThroughputSample(
                start=wall_time - 1.0,
                duration=1.0,
                size=throughput,
                throughput=throughput,
            ),
        )
    return PlayerObservation(
        wall_time=wall_time,
        segment_index=segment_index,
        buffer_level=buffer_level,
        max_buffer=max_buffer,
        previous_quality=prev,
        ladder=ladder,
        history=history,
        playing=playing,
    )


class TestRateRule:
    def test_follows_throughput(self, ladder):
        assert rate_rule_quality(10.0, ladder) == 2
        assert rate_rule_quality(4.0, ladder) == 1
        assert rate_rule_quality(0.5, ladder) == 0

    def test_safety_factor(self, ladder):
        assert rate_rule_quality(3.0, ladder, safety_factor=0.9) == 0
        assert rate_rule_quality(3.0, ladder, safety_factor=1.0) == 1

    def test_rejects_bad_safety(self, ladder):
        with pytest.raises(ValueError):
            rate_rule_quality(3.0, ladder, safety_factor=0.0)

    def test_controller(self, ladder):
        c = RateController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 7.0, 7.0))
        assert c.select_quality(make_obs(ladder)) == 2

    def test_cold_start_uses_last_sample(self, ladder):
        c = RateController(MovingAveragePredictor())
        obs = make_obs(ladder, throughput=5.0)
        assert c.select_quality(obs) in (1, 2)


class TestHyb:
    def test_limits_by_buffer(self, ladder):
        c = HybController(MovingAveragePredictor(), discount=0.5)
        c.on_download(ThroughputSample(0.0, 1.0, 6.0, 6.0))
        # With 10 s buffer: size(q)/6 <= 5 -> all rungs fit.
        assert c.select_quality(make_obs(ladder, buffer_level=10.0)) == 2
        # With 1 s buffer: size must download in 0.5 s -> only rung 0 (2 Mb).
        assert c.select_quality(make_obs(ladder, buffer_level=1.0)) == 0

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError):
            HybController(discount=0.0)

    def test_empty_buffer_falls_back_to_rate_rule(self, ladder):
        c = HybController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 6.0, 6.0))
        q = c.select_quality(make_obs(ladder, buffer_level=0.0))
        assert 0 <= q < ladder.levels


class TestBolaParameters:
    def test_derivation(self, ladder):
        params = BolaParameters.derive(ladder, buffer_low=5.0, buffer_target=15.0)
        assert params.vp > 0
        assert params.gp > 0
        assert params.utilities[0] == pytest.approx(1.0)

    def test_lowest_rung_at_low_buffer(self, ladder):
        params = BolaParameters.derive(ladder, 5.0, 15.0)
        scores = [params.score(q, 2.0, ladder) for q in range(3)]
        assert max(range(3), key=lambda q: scores[q]) == 0

    def test_highest_rung_at_target(self, ladder):
        params = BolaParameters.derive(ladder, 5.0, 15.0)
        scores = [params.score(q, 15.0, ladder) for q in range(3)]
        assert max(range(3), key=lambda q: scores[q]) == 2

    def test_rejects_bad_thresholds(self, ladder):
        with pytest.raises(ValueError):
            BolaParameters.derive(ladder, 10.0, 5.0)

    def test_single_rung_degenerate(self):
        one = BitrateLadder([2.0])
        params = BolaParameters.derive(one, 5.0, 15.0)
        assert params.vp > 0


class TestBola:
    def test_decision_monotone_in_buffer(self, ladder):
        c = BolaController()
        decisions = []
        for buf in (1.0, 4.0, 8.0, 12.0, 14.9):
            d = c.decision_at_buffer(buf, ladder, max_buffer=20.0)
            if d is not None:
                decisions.append(d)
        assert decisions == sorted(decisions)

    def test_defers_at_very_high_buffer(self, ladder):
        c = BolaController()
        assert c.decision_at_buffer(19.9, ladder, max_buffer=20.0) is None

    def test_no_deferral_when_disabled(self, ladder):
        c = BolaController(allow_deferral=False)
        assert c.decision_at_buffer(19.9, ladder, max_buffer=20.0) is not None

    def test_startup_without_history(self, ladder):
        c = BolaController()
        obs = make_obs(ladder, prev=None, playing=False, throughput=None)
        assert c.select_quality(obs) == 0

    def test_threshold_spacing_shrinks_for_live(self, fourk_ladder):
        """Figure 2: decision bands compress when the buffer cap shrinks."""
        def band_width(max_buffer):
            c = BolaController()
            boundaries = []
            prev = None
            buf = 0.0
            while buf < max_buffer:
                d = c.decision_at_buffer(buf, fourk_ladder, max_buffer)
                if d is not None and prev is not None and d != prev:
                    boundaries.append(buf)
                if d is not None:
                    prev = d
                buf += max_buffer / 400.0
            if len(boundaries) < 2:
                return 0.0
            gaps = [b - a for a, b in zip(boundaries, boundaries[1:])]
            return sum(gaps) / len(gaps)

        assert band_width(20.0) < band_width(120.0)

    def test_full_session(self, ladder, steady_trace, short_config):
        result = run_session(BolaController(), steady_trace, ladder, short_config)
        assert result.num_segments == 30


class TestDynamic:
    def test_low_buffer_safety(self, ladder):
        c = DynamicController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 6.0, 6.0))
        assert c.select_quality(make_obs(ladder, buffer_level=1.0)) == 0

    def test_throughput_mode_at_low_buffer(self, ladder):
        c = DynamicController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 7.0, 7.0))
        q = c.select_quality(make_obs(ladder, buffer_level=5.0))
        assert q == 2  # 0.9 * 7 = 6.3 >= 6

    def test_buffer_mode_at_high_buffer(self, ladder):
        c = DynamicController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 1.0, 1.0))
        # Buffer mode: BOLA can choose above the throughput rung when the
        # buffer is near its cap.
        q = c.select_quality(make_obs(ladder, buffer_level=14.0, prev=2))
        assert q is None or q >= 1

    def test_hysteresis_state(self, ladder):
        c = DynamicController(MovingAveragePredictor())
        c.reset()
        c.on_download(ThroughputSample(0.0, 1.0, 6.0, 6.0))
        c.select_quality(make_obs(ladder, buffer_level=12.0))
        assert c._buffer_mode
        c.select_quality(make_obs(ladder, buffer_level=6.0))
        assert not c._buffer_mode

    def test_full_session(self, ladder, step_trace, short_config):
        result = run_session(
            DynamicController(), step_trace, ladder, short_config
        )
        assert result.num_segments == 30


class TestMpc:
    def test_prefers_low_rung_on_slow_network(self, ladder):
        c = MpcController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 0.8, 0.8))
        assert c.select_quality(make_obs(ladder, buffer_level=2.0)) == 0

    def test_prefers_high_rung_on_fast_network(self, ladder):
        c = MpcController(MovingAveragePredictor())
        c.on_download(ThroughputSample(0.0, 1.0, 30.0, 30.0))
        assert c.select_quality(make_obs(ladder, buffer_level=15.0, prev=2)) == 2

    def test_switch_penalty_holds_rate(self, ladder):
        # With a large switch penalty MPC sticks to the previous rung.
        c = MpcController(MovingAveragePredictor(), switch_penalty=100.0)
        c.on_download(ThroughputSample(0.0, 1.0, 30.0, 30.0))
        assert c.select_quality(make_obs(ladder, buffer_level=15.0, prev=0)) == 0

    def test_robust_discount_reduces_estimate(self, ladder):
        c = RobustMpcController(MovingAveragePredictor())
        # Feed a wrong prediction history: predicted high, measured low.
        c._last_prediction = 10.0
        c.on_download(ThroughputSample(0.0, 1.0, 2.0, 2.0))
        assert len(c._errors) == 1
        assert c._errors[0] == pytest.approx(4.0)

    def test_reset_clears_errors(self, ladder):
        c = RobustMpcController()
        c._errors.append(1.0)
        c.reset()
        assert len(c._errors) == 0

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            MpcController(horizon=0)

    def test_full_session(self, ladder, step_trace, short_config):
        result = run_session(
            RobustMpcController(), step_trace, ladder, short_config
        )
        assert result.num_segments == 30


class TestFugu:
    def test_full_session(self, ladder, step_trace, short_config):
        result = run_session(FuguController(), step_trace, ladder, short_config)
        assert result.num_segments == 30

    def test_hedges_against_uncertainty(self, ladder):
        from repro.prediction import StochasticPredictor

        certain = FuguController(StochasticPredictor(min_std_fraction=0.0))
        uncertain = FuguController(StochasticPredictor(min_std_fraction=0.0))
        for v in (6.0, 6.0, 6.0, 6.0):
            certain.on_download(ThroughputSample(0.0, 1.0, v, v))
        for v in (1.0, 11.0, 2.0, 10.0):
            uncertain.on_download(ThroughputSample(0.0, 1.0, v, v))
        obs = make_obs(ladder, buffer_level=3.0, prev=None)
        assert uncertain.select_quality(obs) <= certain.select_quality(obs)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            FuguController(horizon=0)


class TestQLearning:
    def test_training_populates_table(self, ladder):
        traces = [ThroughputTrace.constant(5.0, 120.0)]
        cfg = PlayerConfig(max_buffer=20.0, num_segments=30)
        agent = train_q_controller(ladder, traces, cfg, episodes=5)
        assert len(agent.q_table) > 0
        assert not agent.training

    def test_frozen_agent_is_deterministic(self, ladder, steady_trace, short_config):
        traces = [ThroughputTrace.constant(5.0, 120.0)]
        agent = train_q_controller(ladder, traces, short_config, episodes=5)
        a = run_session(agent, steady_trace, ladder, short_config)
        b = run_session(agent, steady_trace, ladder, short_config)
        assert a.qualities == b.qualities

    def test_encode_buckets(self, ladder):
        agent = QTableController()
        low = agent.encode(make_obs(ladder, buffer_level=0.0))
        high = agent.encode(make_obs(ladder, buffer_level=19.9))
        assert low[0] == 0
        assert high[0] == agent.buffer_buckets - 1

    def test_train_requires_traces(self, ladder):
        with pytest.raises(ValueError):
            train_q_controller(ladder, [], episodes=1)

    def test_learns_to_avoid_rebuffering(self, ladder):
        """On a slow link the trained agent picks lower rungs than max."""
        traces = [ThroughputTrace.constant(1.5, 120.0)]
        cfg = PlayerConfig(max_buffer=20.0, num_segments=40)
        agent = train_q_controller(ladder, traces, cfg, episodes=40, seed=1)
        result = run_session(agent, traces[0], ladder, cfg)
        assert sum(result.qualities) / len(result.qualities) < 2.0
