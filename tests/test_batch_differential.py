"""Differential tests: cross-session batched solving vs the single path.

The batched tier-0 stack has three layers, each proven equivalent to the
code it replaces by direct comparison, not by construction:

* ``solve_sessions_batch`` (kernel) — randomized populations of live
  session states, mixed across bundles (ladders, configs, anchors,
  horizons, backends), must return **bit-identical** plans to calling
  ``solve_monotonic_fast`` / ``solve_brute_force_fast`` per session;
* ``select_quality_batch`` (controller glue) — twin controllers fed
  identical histories must commit the same rungs with the same
  plan-cache counters and ``last_plan`` side effects;
* ``DecisionService.decide_many`` / ``decide_columns`` (service) — a
  service with ``tier0_chunk > 1`` must answer exactly like a service
  with batching disabled (``tier0_chunk=1``) on the same request stream.

Degenerate shapes — infeasible states, K=1, single-rung ladders,
non-finite predictions and buffers — ride inside the randomized
populations *and* get dedicated cases, because those are precisely the
rows where a vectorized kernel is tempted to diverge (0·inf² poisoning,
empty candidate masks, argmin over all-inf rows).
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import SodaController, select_quality_batch
from repro.core.fastpath import (
    SessionSolveRequest,
    solve_brute_force_fast,
    solve_monotonic_fast,
    solve_sessions_batch,
)
from repro.core.objective import SodaConfig
from repro.prediction.base import ThroughputSample
from repro.service import DecisionService
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder, youtube_4k_ladder

_LADDERS = [
    BitrateLadder([1.0, 3.0, 6.0], 2.0, name="three"),
    BitrateLadder([0.3, 0.8, 1.5, 2.8, 5.0, 9.0, 16.0], 2.0, name="seven"),
    BitrateLadder([2.5], 2.0, name="single"),
    youtube_4k_ladder(),
]


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _single_solver(cfg):
    return solve_brute_force_fast if cfg.use_brute_force else solve_monotonic_fast


def _random_request(rng, ladder=None):
    """One random live session state, biased toward shared bundles."""
    if ladder is None:
        ladder = rng.choice(_LADDERS)
    levels = ladder.levels
    horizon = rng.choice([1, 2, 3, 5])
    cfg = SodaConfig(
        horizon=horizon,
        beta=rng.choice([0.01, 0.3]),
        gamma=rng.choice([10.0, 150.0]),
        epsilon=rng.choice([0.05, 1.0]),
        switch_event_cost=rng.choice([0.0, 0.08]),
        use_brute_force=(rng.random() < 0.25 and levels ** horizon <= 20_000),
    )
    buffer_level = rng.uniform(0.0, 30.0)
    if rng.random() < 0.05:
        buffer_level = rng.choice([float("nan"), float("inf")])
    max_buffer = rng.uniform(5.0, 40.0)
    prev = rng.choice([None] + list(range(levels)))
    if rng.random() < 0.5:
        omega = float(rng.uniform(0.05, 25.0))
    elif rng.random() < 0.1:
        omega = np.full(horizon, rng.choice([float("nan"), float("inf")]))
    else:
        omega = np.array([rng.uniform(0.05, 25.0) for _ in range(horizon)])
    return SessionSolveRequest(
        omega=omega,
        buffer_level=buffer_level,
        prev_quality=prev,
        ladder=ladder,
        cfg=cfg,
        max_buffer=max_buffer,
        first_cap=rng.choice([None, rng.randrange(levels)]),
        terminal_weight=rng.choice([0.0, 0.5]),
    )


def _assert_bit_identical(ref, got, context):
    assert ref.quality == got.quality, context
    assert ref.sequence == got.sequence, context
    assert ref.evaluations == got.evaluations, context
    if math.isinf(ref.objective):
        assert math.isinf(got.objective), context
    else:
        # exact, not approx: the batched kernel runs the same float ops
        # in the same order, so anything short of equality is a bug
        assert ref.objective == got.objective, context


def _check_batch_matches_singles(requests):
    batch = solve_sessions_batch(requests)
    assert len(batch) == len(requests)
    for i, (req, got) in enumerate(zip(requests, batch)):
        ref = _single_solver(req.cfg)(
            req.omega, req.buffer_level, req.prev_quality, req.ladder,
            req.cfg, req.max_buffer, dt=req.dt, first_cap=req.first_cap,
            terminal_weight=req.terminal_weight,
        )
        _assert_bit_identical(ref, got, f"request {i}")


# ----------------------------------------------------------------------
class TestKernelDifferential:
    def test_randomized_mixed_population(self):
        """One big heterogeneous fleet: many bundles, both backends,
        scalar and vector predictions, edge states mixed in."""
        rng = random.Random(20240)
        for trial in range(12):
            requests = [
                _random_request(rng) for _ in range(rng.randrange(1, 40))
            ]
            _check_batch_matches_singles(requests)

    def test_single_bundle_large_population(self):
        """Many sessions sharing one bundle (the service's hot case)."""
        rng = random.Random(7)
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=4)
        requests = [
            SessionSolveRequest(
                omega=(
                    float(rng.uniform(0.1, 20.0))
                    if rng.random() < 0.5
                    else np.array([rng.uniform(0.1, 20.0) for _ in range(4)])
                ),
                buffer_level=rng.uniform(0.0, 25.0),
                prev_quality=3,
                ladder=ladder,
                cfg=cfg,
                max_buffer=25.0,
                first_cap=rng.choice([None, 1, 5]),
                terminal_weight=rng.choice([0.0, 0.5]),
            )
            for _ in range(200)
        ]
        _check_batch_matches_singles(requests)

    def test_infeasible_k1_single_rung_nonfinite_edges(self):
        """The dedicated edge-state batch: every degenerate shape at once."""
        three, seven, single = _LADDERS[0], _LADDERS[1], _LADDERS[2]
        k5 = SodaConfig(horizon=5)
        requests = [
            # overflow-infeasible (Figure 5 blank region)
            SessionSolveRequest(200.0, 19.5, 1, three, k5, 20.0),
            SessionSolveRequest(np.full(5, 500.0), 19.5, 1, three, k5, 20.0),
            # underflow-infeasible
            SessionSolveRequest(0.01, 0.2, None, seven, k5, 25.0),
            # K = 1
            SessionSolveRequest(4.0, 6.0, None, three, SodaConfig(horizon=1), 20.0),
            # single-rung ladder, K = 1 and K = 5
            SessionSolveRequest(4.0, 6.0, None, single, SodaConfig(horizon=1), 20.0),
            SessionSolveRequest(4.0, 6.0, 0, single, k5, 20.0),
            # non-finite predictions
            SessionSolveRequest(np.full(5, float("nan")), 8.0, 2, seven, k5, 25.0),
            SessionSolveRequest(np.full(5, float("inf")), 8.0, 2, seven, k5, 25.0),
            # non-finite buffer
            SessionSolveRequest(4.0, float("nan"), 2, seven, k5, 25.0),
            # a healthy row, so the batch mixes feasible with infeasible
            SessionSolveRequest(4.0, 8.0, 2, seven, k5, 25.0),
        ]
        _check_batch_matches_singles(requests)

    def test_terminal_weight_rows_do_not_poison_neighbours(self):
        """A zero-terminal-weight session batched next to an infeasible
        weighted one must keep its finite objective (0 * inf**2 guard)."""
        ladder = _LADDERS[0]
        cfg = SodaConfig(horizon=3)
        requests = [
            SessionSolveRequest(4.0, 8.0, 1, ladder, cfg, 20.0,
                                terminal_weight=0.0),
            SessionSolveRequest(500.0, 19.9, 2, ladder, cfg, 20.0,
                                terminal_weight=2.0),
            SessionSolveRequest(4.0, 8.0, 1, ladder, cfg, 20.0,
                                terminal_weight=2.0),
        ]
        _check_batch_matches_singles(requests)
        assert math.isfinite(solve_sessions_batch(requests)[0].objective)

    def test_per_session_caps_and_buffers_within_one_bundle(self):
        ladder = _LADDERS[1]
        cfg = SodaConfig(horizon=3)
        requests = [
            SessionSolveRequest(5.0, b, 3, ladder, cfg, mb, first_cap=cap)
            for b, mb, cap in [
                (2.0, 20.0, None), (8.0, 25.0, 0), (15.0, 18.0, 4),
                (0.0, 30.0, 6), (24.9, 25.0, 2),
            ]
        ]
        _check_batch_matches_singles(requests)

    def test_chunked_session_axis_is_equivalent(self, monkeypatch):
        """Shrinking the element budget forces multi-chunk scoring; the
        results must not change."""
        rng = random.Random(99)
        requests = [_random_request(rng, _LADDERS[1]) for _ in range(60)]
        baseline = solve_sessions_batch(requests)
        monkeypatch.setattr(
            "repro.core.fastpath._BATCH_ELEMENT_BUDGET", 500
        )
        chunked = solve_sessions_batch(requests)
        for ref, got in zip(baseline, chunked):
            _assert_bit_identical(ref, got, "chunked")

    def test_empty_batch(self):
        assert solve_sessions_batch([]) == []

    def test_request_order_preserved_across_groups(self):
        """Interleaved bundles come back in request order, not group order."""
        a = SessionSolveRequest(4.0, 8.0, 1, _LADDERS[0], SodaConfig(horizon=2), 20.0)
        b = SessionSolveRequest(4.0, 8.0, 2, _LADDERS[1], SodaConfig(horizon=3), 25.0)
        batch = solve_sessions_batch([a, b, a, b, a])
        singles = [
            _single_solver(r.cfg)(
                r.omega, r.buffer_level, r.prev_quality, r.ladder, r.cfg,
                r.max_buffer,
            )
            for r in (a, b, a, b, a)
        ]
        for ref, got in zip(singles, batch):
            _assert_bit_identical(ref, got, "interleaved")

    def test_invalid_prediction_raises_like_single_entry_points(self):
        ladder = _LADDERS[0]
        cfg = SodaConfig(horizon=3)
        bad = [
            SessionSolveRequest(np.array([1.0, 2.0]), 5.0, None, ladder, cfg, 20.0),
            SessionSolveRequest(np.array([1.0, -2.0, 1.0]), 5.0, None, ladder, cfg, 20.0),
        ]
        for req in bad:
            with pytest.raises(ValueError):
                solve_sessions_batch([req])

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_property_batched_equals_single(self, data):
        """Hypothesis-driven population: batched == sequential, exactly."""
        ladder = data.draw(st.sampled_from(_LADDERS[:3]))
        horizon = data.draw(st.sampled_from([1, 2, 3]))
        cfg = SodaConfig(
            horizon=horizon,
            beta=data.draw(st.sampled_from([0.01, 0.3])),
            epsilon=data.draw(st.sampled_from([0.05, 1.0])),
        )
        n = data.draw(st.integers(min_value=1, max_value=10))
        requests = []
        for _ in range(n):
            scalar = data.draw(st.booleans())
            tput = st.floats(
                min_value=0.01, max_value=50.0,
                allow_nan=False, allow_infinity=False,
            )
            omega = (
                data.draw(tput)
                if scalar
                else np.array(
                    data.draw(
                        st.lists(tput, min_size=horizon, max_size=horizon)
                    )
                )
            )
            requests.append(
                SessionSolveRequest(
                    omega=omega,
                    buffer_level=data.draw(
                        st.floats(min_value=0.0, max_value=40.0,
                                  allow_nan=False)
                    ),
                    prev_quality=data.draw(
                        st.sampled_from([None] + list(range(ladder.levels)))
                    ),
                    ladder=ladder,
                    cfg=cfg,
                    max_buffer=data.draw(
                        st.floats(min_value=5.0, max_value=40.0,
                                  allow_nan=False)
                    ),
                    first_cap=data.draw(
                        st.sampled_from([None] + list(range(ladder.levels)))
                    ),
                    terminal_weight=data.draw(st.sampled_from([0.0, 0.5])),
                )
            )
        _check_batch_matches_singles(requests)


# ----------------------------------------------------------------------
def _make_obs(ladder, rng, wall, prev):
    history = []
    t = wall
    for _ in range(rng.randrange(0, 5)):
        dur = 0.4 + rng.random()
        tput = rng.uniform(0.3, 12.0)
        history.append(
            ThroughputSample(start=t, duration=dur, size=tput * dur,
                             throughput=tput)
        )
        t += dur
    return PlayerObservation(
        wall_time=t,
        segment_index=0,
        buffer_level=rng.uniform(0.0, 20.0),
        max_buffer=20.0,
        previous_quality=prev,
        ladder=ladder,
        history=tuple(history),
    )


def _feed_twin(ctrl, obs):
    """Replicate the service's history feed for a standalone controller."""
    for sample in obs.history:
        ctrl.on_download(sample)


class TestControllerBatch:
    def test_matches_sequential_controllers(self):
        """Twin controllers, identical histories: batch == one-at-a-time,
        including cache counters and last_plan."""
        rng = random.Random(31)
        ladder = _LADDERS[1]
        for trial in range(25):
            seed = rng.randrange(1 << 30)
            r1, r2 = random.Random(seed), random.Random(seed)
            n = rng.randrange(1, 9)
            seq_ctrls = [SodaController() for _ in range(n)]
            bat_ctrls = [SodaController() for _ in range(n)]
            seq_answers, pairs = [], []
            for sc, bc in zip(seq_ctrls, bat_ctrls):
                prev = rng.choice([None, 2])
                obs1 = _make_obs(ladder, r1, 0.0, prev)
                obs2 = _make_obs(ladder, r2, 0.0, prev)
                _feed_twin(sc, obs1)
                _feed_twin(bc, obs2)
                seq_answers.append(sc.select_quality(obs1))
                pairs.append((bc, obs2))
            bat_answers = select_quality_batch(pairs)
            assert bat_answers == seq_answers, f"trial {trial}"
            for sc, bc in zip(seq_ctrls, bat_ctrls):
                assert bc.plan_cache_hits == sc.plan_cache_hits
                assert bc.plan_cache_misses == sc.plan_cache_misses
                if sc.last_plan is None:
                    assert bc.last_plan is None
                else:
                    _assert_bit_identical(sc.last_plan, bc.last_plan, trial)

    def test_duplicate_cache_key_counts_a_hit(self):
        """The same controller asked twice in one batch must account the
        second request as a cache hit, like the sequential path would."""
        ladder = _LADDERS[1]
        rng = random.Random(5)
        obs = _make_obs(ladder, rng, 0.0, 2)

        seq = SodaController()
        _feed_twin(seq, obs)
        a1 = seq.select_quality(obs)
        a2 = seq.select_quality(obs)

        bat = SodaController()
        _feed_twin(bat, obs)
        b1, b2 = select_quality_batch([(bat, obs), (bat, obs)])
        assert (b1, b2) == (a1, a2)
        assert bat.plan_cache_hits == seq.plan_cache_hits == 1
        assert bat.plan_cache_misses == seq.plan_cache_misses == 1

    def test_reference_backend_falls_back_inline(self):
        ladder = _LADDERS[0]
        rng = random.Random(8)
        obs = _make_obs(ladder, rng, 0.0, 1)
        ref_seq = SodaController(config=SodaConfig(solver_backend="reference"))
        ref_bat = SodaController(config=SodaConfig(solver_backend="reference"))
        fast_seq = SodaController()
        fast_bat = SodaController()
        for ctrl in (ref_seq, ref_bat, fast_seq, fast_bat):
            _feed_twin(ctrl, obs)
        got = select_quality_batch([(ref_bat, obs), (fast_bat, obs)])
        assert got[0] == ref_seq.select_quality(obs)
        assert got[1] == fast_seq.select_quality(obs)
        # the reference backend keeps its no-cache contract through the batch
        assert ref_bat.plan_cache_misses == 0

    def test_exception_is_isolated_per_session(self):
        class Exploding(SodaController):
            def _predict_vector(self, obs, horizon):
                raise RuntimeError("boom")

        ladder = _LADDERS[1]
        rng = random.Random(4)
        obs = _make_obs(ladder, rng, 0.0, 2)
        good = SodaController()
        _feed_twin(good, obs)
        twin = SodaController()
        _feed_twin(twin, obs)
        results = select_quality_batch(
            [(good, obs), (Exploding(), obs), (twin, obs)]
        )
        assert isinstance(results[1], RuntimeError)
        assert results[0] == results[2]
        assert not isinstance(results[0], BaseException)

    def test_empty_batch(self):
        assert select_quality_batch([]) == []


# ----------------------------------------------------------------------
def _fresh_service(chunk, clock, table_points=6):
    return DecisionService(
        _LADDERS[1],
        20.0,
        deadline=0.05,
        max_in_flight=8,
        table_points=table_points,
        tier0_chunk=chunk,
        clock=clock,
    )


def _request_stream(seed, sessions=10, rounds=3):
    rng = random.Random(seed)
    ladder = _LADDERS[1]
    stream = []
    for round_no in range(rounds):
        batch = []
        for s in range(sessions):
            prev = rng.choice([None] + list(range(ladder.levels)))
            batch.append(
                (f"s{s}", _make_obs(ladder, rng, float(round_no), prev))
            )
        stream.append(batch)
    return stream


class TestServiceBatchDifferential:
    def test_decide_many_batched_equals_unbatched(self):
        """tier0_chunk=16 answers the exact stream tier0_chunk=1 does."""
        for seed in (0, 1, 2):
            single = _fresh_service(1, FakeClock())
            batched = _fresh_service(16, FakeClock())
            for batch in _request_stream(seed):
                a = single.decide_many(batch)
                b = batched.decide_many(batch)
                for da, db in zip(a, b):
                    assert (da.quality, da.tier, da.deferred) == (
                        db.quality, db.tier, db.deferred
                    ), seed
            assert batched.stats().tier0_decisions == (
                single.stats().tier0_decisions
            )
            snap = batched.batches.snapshot()
            assert snap["batches"] > 0
            assert snap["max_batch"] > 1
            assert single.batches.snapshot()["batches"] == 0

    def test_decide_columns_batched_equals_unbatched(self):
        rng = np.random.default_rng(12)
        n = 40
        ids = [f"c{i % 13}" for i in range(n)]
        tputs = rng.uniform(-1.0, 15.0, size=n)
        bufs = rng.uniform(0.0, 20.0, size=n)
        prevs = rng.integers(-1, 7, size=n)
        single = _fresh_service(1, FakeClock())
        batched = _fresh_service(8, FakeClock())
        r1 = single.decide_columns(ids, tputs, bufs, prevs)
        r2 = batched.decide_columns(ids, tputs, bufs, prevs)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)

    def test_custom_tier0_factory_disables_batching(self):
        calls = []

        def factory(session_id, controller):
            def tier0(obs):
                calls.append(session_id)
                return controller.select_quality(obs)

            return tier0

        service = DecisionService(
            _LADDERS[1], 20.0, deadline=0.05, table_points=0,
            tier0_factory=factory, tier0_chunk=16, clock=FakeClock(),
        )
        stream = _request_stream(3, sessions=6, rounds=1)[0]
        service.decide_many(stream)
        assert not service._batchable
        assert service.batches.snapshot()["batches"] == 0
        assert len(calls) == len(stream)  # every request went through it

    def test_mid_stream_sessions_keep_history_state(self):
        """Batched and unbatched services evolve identical per-session
        predictor state across rounds (the monotone feed invariant)."""
        single = _fresh_service(1, FakeClock())
        batched = _fresh_service(16, FakeClock())
        for batch in _request_stream(9, sessions=4, rounds=6):
            single.decide_many(batch)
            batched.decide_many(batch)
        for sid in ("s0", "s1", "s2", "s3"):
            e1, _ = single.sessions.checkout(sid, lambda: None)
            e2, _ = batched.sessions.checkout(sid, lambda: None)
            assert e1.state.last_fed == e2.state.last_fed
            assert e1.state.decisions == e2.state.decisions
            single.sessions.checkin(e1)
            batched.sessions.checkin(e2)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 20),
        chunk=st.sampled_from([2, 5, 16]),
        n=st.integers(min_value=1, max_value=24),
    )
    def test_property_columns_chunk_invariant(self, seed, chunk, n):
        """decide_columns output is invariant to the tier-0 chunk size."""
        rng = np.random.default_rng(seed)
        ids = [f"h{i % 7}" for i in range(n)]
        tputs = rng.uniform(-1.0, 15.0, size=n)
        bufs = rng.uniform(0.0, 20.0, size=n)
        prevs = rng.integers(-1, 7, size=n)
        base = _fresh_service(1, FakeClock())
        test = _fresh_service(chunk, FakeClock())
        r1 = base.decide_columns(ids, tputs, bufs, prevs)
        r2 = test.decide_columns(ids, tputs, bufs, prevs)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)
