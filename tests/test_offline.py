"""Tests for the offline optimal DP and the time-based rollout."""

import itertools
import math

import numpy as np
import pytest

from repro.core.objective import SodaConfig
from repro.core.offline import offline_optimal, rollout_time_based
from repro.core.solver import plan_cost
from repro.sim.video import BitrateLadder


@pytest.fixture
def cfg():
    return SodaConfig(
        horizon=3, beta=0.1, gamma=2.0, target_buffer=10.0,
        switch_event_cost=0.0,
    )


class TestOfflineOptimal:
    def test_returns_plan_of_right_length(self, ladder, cfg):
        omega = [4.0] * 10
        sol = offline_optimal(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
        assert len(sol.qualities) == 10
        assert len(sol.buffers) == 10
        assert math.isfinite(sol.cost)

    def test_never_beaten_by_explicit_plans(self, ladder, cfg):
        """DP cost <= cost of any explicit plan (up to grid snapping)."""
        omega = [5.0, 2.0, 6.0, 4.0]
        sol = offline_optimal(
            omega, ladder, cfg, max_buffer=20.0, x0=10.0, buffer_grid=801
        )
        best_explicit = math.inf
        for seq in itertools.product(range(ladder.levels), repeat=4):
            c = plan_cost(
                seq, omega, 10.0, None, ladder, cfg.with_(horizon=4),
                max_buffer=20.0,
            )
            best_explicit = min(best_explicit, c)
        assert sol.cost <= best_explicit + 0.15

    def test_matches_exhaustive_on_tiny_instance(self, ladder, cfg):
        """With grid-aligned dynamics the DP is exact."""
        # omega chosen so every transition lands exactly on the 0.1 grid.
        omega = [3.0, 3.0, 3.0]
        sol = offline_optimal(
            omega, ladder, cfg, max_buffer=20.0, x0=10.0, buffer_grid=2001
        )
        best = math.inf
        for seq in itertools.product(range(ladder.levels), repeat=3):
            c = plan_cost(
                seq, omega, 10.0, None, ladder, cfg, max_buffer=20.0
            )
            best = min(best, c)
        assert sol.cost == pytest.approx(best, rel=1e-2, abs=5e-2)

    def test_infeasible_sequence(self, ladder, cfg):
        # Zero bandwidth forever: the buffer must underflow.
        sol = offline_optimal([0.0] * 6, ladder, cfg, max_buffer=20.0, x0=1.0)
        assert sol.cost == math.inf
        assert sol.qualities == ()

    def test_validates_inputs(self, ladder, cfg):
        with pytest.raises(ValueError):
            offline_optimal([], ladder, cfg, max_buffer=20.0, x0=10.0)
        with pytest.raises(ValueError):
            offline_optimal([1.0], ladder, cfg, max_buffer=20.0, x0=1.0,
                            buffer_grid=1)

    def test_buffers_within_bounds(self, ladder, cfg):
        rng = np.random.default_rng(1)
        omega = rng.uniform(2.0, 8.0, 20)
        sol = offline_optimal(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
        assert all(0.0 <= b <= 20.0 for b in sol.buffers)


class TestRollout:
    def test_rollout_completes(self, ladder, cfg):
        rng = np.random.default_rng(0)
        omega = rng.uniform(2.0, 8.0, 30)
        roll = rollout_time_based(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
        assert len(roll.qualities) == 30
        assert math.isfinite(roll.cost)
        assert all(0.0 <= b <= 20.0 for b in roll.buffers)

    def test_rollout_cost_at_least_opt(self, ladder, cfg):
        rng = np.random.default_rng(2)
        omega = rng.uniform(2.0, 8.0, 40)
        opt = offline_optimal(
            omega, ladder, cfg, max_buffer=20.0, x0=10.0, buffer_grid=401
        )
        roll = rollout_time_based(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
        # Small negative slack allowed for DP grid snapping.
        assert roll.cost >= opt.cost - 0.5

    def test_exact_predictions_beat_bad_predictions(self, ladder, cfg):
        rng = np.random.default_rng(3)
        omega = rng.uniform(2.0, 8.0, 60)

        def bad_predictions(n, k):
            return np.full(k, 5.0)  # constant, ignores reality

        exact = rollout_time_based(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
        noisy = rollout_time_based(
            omega, ladder, cfg, max_buffer=20.0, x0=10.0,
            predictions=bad_predictions,
        )
        assert exact.cost <= noisy.cost * 1.05

    def test_longer_horizon_helps_brute_force(self, ladder, cfg):
        """Theorem 4.1's regime: with the exact solver, more look-ahead
        (plus the terminal steering of Algorithm 2) improves the cost."""
        rng = np.random.default_rng(4)
        omega = rng.uniform(2.0, 8.0, 60)
        exact = cfg.with_(use_brute_force=True)
        short = rollout_time_based(
            omega, ladder, exact.with_(horizon=1), max_buffer=20.0, x0=10.0
        )
        long = rollout_time_based(
            omega, ladder, exact.with_(horizon=6), max_buffer=20.0, x0=10.0
        )
        assert long.cost <= short.cost * 1.02

    def test_monotone_matches_brute_force_at_high_gamma(self, ladder, cfg):
        """Theorem 4.3's regime: with a large switching weight the monotone
        rollout tracks the brute-force rollout closely."""
        rng = np.random.default_rng(5)
        omega = rng.uniform(2.0, 8.0, 40)
        heavy = cfg.with_(gamma=200.0)
        mono = rollout_time_based(
            omega, ladder, heavy, max_buffer=20.0, x0=10.0
        )
        brute = rollout_time_based(
            omega, ladder, heavy.with_(use_brute_force=True),
            max_buffer=20.0, x0=10.0,
        )
        assert mono.cost <= brute.cost * 1.1

    def test_violations_counted_with_wild_predictions(self, ladder, cfg):
        # Predictions say the network is slow (controller picks rung 0),
        # but the real bandwidth is enormous: the realised buffer overflows
        # the model constraint and must be clipped.
        omega = np.full(5, 50.0)

        def pessimistic(n, k):
            return np.full(k, 1.0)

        roll = rollout_time_based(
            omega, ladder, cfg, max_buffer=20.0, x0=2.0,
            predictions=pessimistic,
        )
        assert roll.violations >= 1

    def test_brute_force_rollout(self, ladder, cfg):
        omega = np.full(10, 4.0)
        roll = rollout_time_based(
            omega, ladder, cfg.with_(use_brute_force=True),
            max_buffer=20.0, x0=10.0,
        )
        assert len(roll.qualities) == 10
