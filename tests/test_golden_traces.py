"""Golden-trace regression fixtures.

Each golden pins the full per-interval decision sequence and the QoE
summary of one (controller, deterministic synthetic trace) pair.  Any
refactor that changes controller behaviour — however slightly — shows up
as a failing diff here instead of silently shifting benchmark numbers.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-goldens

then review the JSON diff like any other code change.
"""

import json
import math
from pathlib import Path

import pytest

from repro.abr.bola import BolaController
from repro.abr.mpc import RobustMpcController
from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.qoe import qoe_from_session
from repro.sim.player import PlayerConfig
from repro.sim.session import run_session
from repro.sim.video import BitrateLadder
from repro.traces import scenarios

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: decisions are exact; float metrics tolerate cross-platform rounding
_METRIC_TOL = 1e-6

_LADDER = BitrateLadder(
    [0.5, 1.2, 2.5, 4.0, 8.0, 16.0], segment_duration=2.0, name="golden"
)
_PLAYER = PlayerConfig(
    max_buffer=25.0,
    num_segments=40,
    startup_threshold=2.0,
    live_delay=None,
)

_CONTROLLERS = {
    "soda": lambda: SodaController(),
    "bola": lambda: BolaController(),
    "mpc": lambda: RobustMpcController(),
}

_TRACES = {
    "step_down": lambda: scenarios.step_down(
        high=9.0, low=1.5, at=30.0, duration=120.0
    ),
    "oscillation": lambda: scenarios.oscillation(
        period=20.0, low=1.0, high=7.0, duration=120.0
    ),
}


def _case_id(controller_name: str, trace_name: str) -> str:
    return f"{controller_name}__{trace_name}"


def _run_case(controller_name: str, trace_name: str) -> dict:
    controller = _CONTROLLERS[controller_name]()
    trace = _TRACES[trace_name]()
    result = run_session(controller, trace, _LADDER, _PLAYER)
    metrics = qoe_from_session(result)
    return {
        "controller": controller_name,
        "trace": trace_name,
        "qualities": list(result.qualities),
        "rebuffer_time": round(result.rebuffer_time, 9),
        "startup_delay": round(result.startup_delay, 9),
        "switches": result.switch_count,
        "qoe": round(metrics.qoe, 9),
        "utility": round(metrics.utility, 9),
        "rebuffer_ratio": round(metrics.rebuffer_ratio, 9),
        "switching_rate": round(metrics.switching_rate, 9),
    }


_CASES = [
    (c, t) for c in sorted(_CONTROLLERS) for t in sorted(_TRACES)
]


@pytest.mark.parametrize(
    "controller_name,trace_name", _CASES,
    ids=[_case_id(c, t) for c, t in _CASES],
)
def test_golden_trace(request, controller_name, trace_name):
    path = GOLDEN_DIR / f"{_case_id(controller_name, trace_name)}.json"
    actual = _run_case(controller_name, trace_name)

    if request.config.getoption("--regen-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2) + "\n", encoding="utf-8")
        pytest.skip(f"regenerated {path.name}")

    assert path.exists(), (
        f"missing golden {path.name}; run with --regen-goldens to create it"
    )
    expected = json.loads(path.read_text(encoding="utf-8"))

    assert actual["qualities"] == expected["qualities"], (
        f"{controller_name} on {trace_name}: decision sequence changed"
    )
    assert actual["switches"] == expected["switches"]
    for key in (
        "rebuffer_time", "startup_delay", "qoe", "utility",
        "rebuffer_ratio", "switching_rate",
    ):
        assert math.isclose(
            actual[key], expected[key], rel_tol=0, abs_tol=_METRIC_TOL
        ), f"{controller_name} on {trace_name}: {key} drifted"


def test_goldens_cover_every_case():
    """A stale goldens directory (deleted case, renamed controller) fails
    loudly rather than silently shrinking coverage."""
    expected = {f"{_case_id(c, t)}.json" for c, t in _CASES}
    actual = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert actual == expected


def test_soda_golden_matches_reference_backend():
    """The checked-in SODA goldens are backend-independent: replaying with
    the recursive reference solver commits the identical rung sequence."""
    controller = SodaController(config=SodaConfig(solver_backend="reference"))
    for trace_name, make_trace in _TRACES.items():
        trace = make_trace()
        result = run_session(controller, trace, _LADDER, _PLAYER)
        golden = json.loads(
            (GOLDEN_DIR / f"{_case_id('soda', trace_name)}.json").read_text(
                encoding="utf-8"
            )
        )
        assert list(result.qualities) == golden["qualities"]
        controller.reset()


def test_soda_golden_matches_batched_solver():
    """Routing every decision through the cross-session batched kernel
    (``select_quality_batch``) replays the checked-in golden rung
    sequences exactly — the batch path is not a new backend, it is the
    same arithmetic with a session axis."""
    from repro.core.controller import select_quality_batch

    class BatchedSoda(SodaController):
        def select_quality(self, obs):
            result = select_quality_batch([(self, obs)])[0]
            if isinstance(result, BaseException):
                raise result
            return result

    for trace_name, make_trace in _TRACES.items():
        controller = BatchedSoda()
        result = run_session(controller, make_trace(), _LADDER, _PLAYER)
        golden = json.loads(
            (GOLDEN_DIR / f"{_case_id('soda', trace_name)}.json").read_text(
                encoding="utf-8"
            )
        )
        assert list(result.qualities) == golden["qualities"], trace_name
