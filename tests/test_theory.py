"""Tests for the theoretical constants and bound calculators."""

import math

import numpy as np
import pytest

from repro.core.theory import (
    DecayConstants,
    StreamingModel,
    check_assumption_a1,
    competitive_ratio_bound,
    decay_constants,
    error_aggregate,
    fit_decay_rate,
    horizon_requirement,
    monotonic_gamma_requirement,
    regret_bound_exact,
    regret_bound_inexact,
)


@pytest.fixture
def model():
    """A small, Assumption-A.1-compliant model."""
    return StreamingModel(
        omega_min=6.0,
        omega_max=10.0,
        r_min=1.5,
        r_max=12.0,
        x_max=3.5,
        target=2.0,
        beta=1.0,
        gamma=1.0,
        epsilon=0.25,
    )


class TestStreamingModel:
    def test_delta(self, model):
        assert model.delta == pytest.approx(1.0 - 10.0 / 12.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"omega_min": 0.0},
            {"omega_min": 11.0},  # > omega_max
            {"r_min": 12.0},      # = r_max
            {"x_max": 0.0},
            {"target": 4.0},      # > x_max
            {"beta": 0.0},
            {"epsilon": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            omega_min=6.0, omega_max=10.0, r_min=1.5, r_max=12.0,
            x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            StreamingModel(**base)


class TestAssumptionA1:
    def test_holds(self, model):
        ok, reason = check_assumption_a1(model)
        assert ok
        assert "holds" in reason

    def test_fill_fails(self, model):
        bad = StreamingModel(
            omega_min=1.0, omega_max=10.0, r_min=1.5, r_max=12.0,
            x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
        )
        ok, reason = check_assumption_a1(bad)
        assert not ok
        assert "refill" in reason

    def test_drain_fails(self):
        bad = StreamingModel(
            omega_min=6.0, omega_max=15.0, r_min=1.5, r_max=12.0,
            x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
        )
        ok, reason = check_assumption_a1(bad)
        assert not ok
        assert "drain" in reason


class TestDecayConstants:
    def test_rho_in_unit_interval(self, model):
        dc = decay_constants(model)
        assert 0.0 < dc.rho < 1.0
        assert dc.c_state > 0
        assert dc.c_action > 0

    def test_raises_when_drain_impossible(self):
        bad = StreamingModel(
            omega_min=6.0, omega_max=20.0, r_min=1.5, r_max=12.0,
            x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
        )
        with pytest.raises(ValueError):
            decay_constants(bad)

    def test_larger_beta_shrinks_rho(self, model):
        small = decay_constants(model)
        steep = decay_constants(
            StreamingModel(
                omega_min=6.0, omega_max=10.0, r_min=1.5, r_max=12.0,
                x_max=3.5, target=2.0, beta=100.0, gamma=1.0, epsilon=0.25,
            )
        )
        assert steep.rho < small.rho

    def test_larger_gamma_grows_rho(self, model):
        base = decay_constants(model)
        sticky = decay_constants(
            StreamingModel(
                omega_min=6.0, omega_max=10.0, r_min=1.5, r_max=12.0,
                x_max=3.5, target=2.0, beta=1.0, gamma=50.0, epsilon=0.25,
            )
        )
        assert sticky.rho > base.rho


class TestBounds:
    def test_horizon_requirement_finite(self, model):
        k = horizon_requirement(decay_constants(model))
        assert math.isfinite(k)
        assert k > 0

    def test_regret_decays_in_k(self, model):
        dc = decay_constants(model)
        r5 = regret_bound_exact(model, dc, horizon=5, opt_cost=100.0)
        r10 = regret_bound_exact(model, dc, horizon=10, opt_cost=100.0)
        assert r10 < r5

    def test_regret_scales_with_opt(self, model):
        dc = decay_constants(model)
        assert regret_bound_exact(model, dc, 5, 200.0) == pytest.approx(
            2 * regret_bound_exact(model, dc, 5, 100.0)
        )

    def test_cr_approaches_one(self, model):
        dc = decay_constants(model)
        crs = [competitive_ratio_bound(model, dc, k) for k in (2, 20, 200)]
        assert crs[0] > crs[1] > crs[2] > 1.0

    def test_bound_validation(self, model):
        dc = decay_constants(model)
        with pytest.raises(ValueError):
            regret_bound_exact(model, dc, 0, 1.0)
        with pytest.raises(ValueError):
            regret_bound_exact(model, dc, 1, -1.0)
        with pytest.raises(ValueError):
            competitive_ratio_bound(model, dc, 0)


class TestErrorAggregate:
    def test_formula(self):
        e = error_aggregate([4.0, 2.0], rho=0.5, horizon=2, n_steps=100)
        assert e == pytest.approx(0.5**4 * 100 + 0.5 * 4.0 + 0.25 * 2.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            error_aggregate([1.0], rho=0.5, horizon=2, n_steps=10)
        with pytest.raises(ValueError):
            error_aggregate([-1.0], rho=0.5, horizon=1, n_steps=10)

    def test_inexact_regret_monotone_in_error(self, model):
        dc = decay_constants(model)
        small = regret_bound_inexact(model, dc, 1.0, 100.0)
        large = regret_bound_inexact(model, dc, 10.0, 100.0)
        assert 0 < small < large


class TestMonotonicGamma:
    def test_threshold_shrinks_with_tolerance(self, model):
        tight = monotonic_gamma_requirement(model, 8.0, 5, tolerance=0.01)
        loose = monotonic_gamma_requirement(model, 8.0, 5, tolerance=0.1)
        assert tight > loose

    def test_threshold_grows_with_horizon(self, model):
        short = monotonic_gamma_requirement(model, 8.0, 2, tolerance=0.05)
        long = monotonic_gamma_requirement(model, 8.0, 8, tolerance=0.05)
        assert long > short

    def test_validates(self, model):
        with pytest.raises(ValueError):
            monotonic_gamma_requirement(model, 8.0, 5, tolerance=0.0)
        with pytest.raises(ValueError):
            monotonic_gamma_requirement(model, 8.0, 0, tolerance=0.1)


class TestFitDecayRate:
    def test_recovers_synthetic_rate(self):
        rho = 0.6
        distances = [5.0 * rho**t for t in range(12)]
        assert fit_decay_rate(distances) == pytest.approx(rho, rel=1e-6)

    def test_handles_noise(self):
        rng = np.random.default_rng(0)
        rho = 0.7
        distances = [
            3.0 * rho**t * math.exp(rng.normal(0, 0.05)) for t in range(15)
        ]
        assert fit_decay_rate(distances) == pytest.approx(rho, rel=0.1)

    def test_degenerate_inputs(self):
        assert fit_decay_rate([0.0, 0.0]) == 0.0
        assert fit_decay_rate([1.0]) == 0.0
