"""Tests for the Pareto-frontier utilities and the report generator."""

import pytest

from repro.analysis.pareto import (
    OperatingPoint,
    dominates,
    pareto_front,
    sweep_operating_points,
)
from repro.analysis.report import ReportConfig, generate_report
from repro.core.controller import SodaController
from repro.core.objective import SodaConfig
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig
from repro.sim.profiles import EvaluationProfile


def point(label, utility, switching, rebuffer=0.0, qoe=0.0):
    return OperatingPoint(
        label=label, utility=utility, switching_rate=switching,
        rebuffer_ratio=rebuffer, qoe=qoe,
    )


class TestDominance:
    def test_strict_dominance(self):
        better = point("a", 0.9, 0.05)
        worse = point("b", 0.8, 0.10)
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_equal_points_do_not_dominate(self):
        a = point("a", 0.9, 0.05)
        b = point("b", 0.9, 0.05)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_points_incomparable(self):
        smooth = point("a", 0.8, 0.02)
        sharp = point("b", 0.95, 0.20)
        assert not dominates(smooth, sharp)
        assert not dominates(sharp, smooth)

    def test_rebuffering_counts(self):
        clean = point("a", 0.9, 0.05, rebuffer=0.0)
        stally = point("b", 0.9, 0.05, rebuffer=0.02)
        assert dominates(clean, stally)


class TestFront:
    def test_front_filters_dominated(self):
        points = [
            point("good", 0.9, 0.05),
            point("dominated", 0.8, 0.10),
            point("tradeoff", 0.95, 0.20),
        ]
        front = pareto_front(points)
        labels = [p.label for p in front]
        assert "good" in labels and "tradeoff" in labels
        assert "dominated" not in labels

    def test_front_sorted_by_switching(self):
        points = [point("a", 0.95, 0.2), point("b", 0.8, 0.01)]
        front = pareto_front(points)
        assert front[0].label == "b"

    def test_single_point(self):
        pts = [point("only", 0.5, 0.5)]
        assert pareto_front(pts) == pts


class TestSweep:
    def test_sweep_runs(self, ladder):
        profile = EvaluationProfile(
            name="t", ladder=ladder,
            player=PlayerConfig(max_buffer=20.0, num_segments=15),
        )
        traces = [ThroughputTrace.constant(5.0, 120.0)]
        factories = {
            "smooth": lambda: SodaController(config=SodaConfig(gamma=300.0)),
            "loose": lambda: SodaController(
                config=SodaConfig(gamma=0.0, switch_event_cost=0.0)
            ),
        }
        points = sweep_operating_points(factories, traces, profile)
        assert {p.label for p in points} == {"smooth", "loose"}

    def test_sweep_validates(self, ladder):
        profile = EvaluationProfile(
            name="t", ladder=ladder,
            player=PlayerConfig(max_buffer=20.0, num_segments=5),
        )
        with pytest.raises(ValueError):
            sweep_operating_points({}, [], profile)


class TestReport:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReportConfig(sessions=0)
        with pytest.raises(ValueError):
            ReportConfig(session_seconds=10.0)

    def test_generates_markdown(self):
        report = generate_report(
            ReportConfig(sessions=1, session_seconds=60.0, seed=2,
                         noise_levels=(0.0,))
        )
        assert "# SODA reproduction" in report
        assert "Figure 10" in report
        assert "| soda |" in report
        assert "Figure 13" in report
        # markdown tables are well-formed: header separator rows exist
        assert report.count("|---|") >= 3
