"""The sharded decision service: supervision, re-homing, drain.

These tests run the real thing — forked worker processes behind the
front end, a decision table published through a memory-mapped file, a
supervisor heartbeating the fleet — and exercise the robustness story
end to end: a worker SIGKILLed mid-serving must cost its shard only
(sessions re-home onto survivors, the supervisor restarts the corpse),
and a drained fleet must keep answering from the floor rather than
dropping requests.
"""

import os
import signal
import time

import pytest

from repro.prediction.base import ThroughputSample
from repro.service import ShardedDecisionService
from repro.service.shard import (
    FleetHealth,
    _roll_up,
    decode_observation,
    encode_observation,
)
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder

LADDER = BitrateLadder([1.0, 2.5, 5.0, 8.0], segment_duration=2.0,
                       name="shard-test")
MAX_BUFFER = 25.0
DEADLINE = 0.25


def make_obs(segment=3, buffer_level=12.0, prev=2, tput=4.0e6):
    history = ()
    if tput is not None:
        history = (
            ThroughputSample(start=0.0, duration=1.0, size=tput,
                             throughput=tput),
        )
    return PlayerObservation(
        wall_time=2.0 * segment,
        segment_index=segment,
        buffer_level=buffer_level,
        max_buffer=MAX_BUFFER,
        previous_quality=prev,
        ladder=LADDER,
        history=history,
    )


def session_homed_on(service, shard, tag="s"):
    """A session id whose CRC-32 home is the given shard."""
    for i in range(10_000):
        sid = f"{tag}-{i}"
        if service.home_shard(sid) == shard:
            return sid
    raise AssertionError(f"no session hashed onto shard {shard}")


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def fleet():
    service = ShardedDecisionService(
        ladder=LADDER,
        max_buffer=MAX_BUFFER,
        shards=2,
        deadline=DEADLINE,
        table_points=10,
        heartbeat_interval=0.05,
    )
    try:
        yield service
    finally:
        service.close()


class TestWireCodec:
    def test_observation_round_trips(self):
        obs = make_obs(segment=9, buffer_level=7.5, prev=1)
        rebuilt = decode_observation(encode_observation(obs), LADDER)
        assert rebuilt == obs

    def test_history_round_trips_as_samples(self):
        obs = make_obs()
        rebuilt = decode_observation(encode_observation(obs), LADDER)
        assert rebuilt.history == obs.history
        assert isinstance(rebuilt.history[0], ThroughputSample)


class TestServing:
    def test_decide_answers_from_the_home_shard(self, fleet):
        for shard in range(fleet.shards):
            sid = session_homed_on(fleet, shard)
            decision = fleet.decide(sid, make_obs())
            assert decision.shard == shard
            assert not decision.rehomed
            assert not decision.failover
            assert 0 <= decision.quality < LADDER.levels

    def test_decide_many_columnar_matches_full_history(self, fleet):
        requests = [
            (f"batch-{i}", make_obs(segment=i, buffer_level=4.0 + i % 15,
                                    prev=i % LADDER.levels,
                                    tput=1.0e6 + 2.0e5 * (i % 11)))
            for i in range(64)
        ]
        columnar = fleet.decide_many(requests)
        full = fleet.decide_many(requests, full_history=True)
        assert [d.quality for d in columnar] == [d.quality for d in full]
        assert [d.shard for d in columnar] == [d.shard for d in full]
        assert all(not d.failover for d in columnar)
        # Each decision went to its session's home shard.
        for (sid, _obs), decision in zip(requests, columnar):
            assert decision.shard == fleet.home_shard(sid)
            assert decision.session_id == sid

    def test_decide_many_empty_batch(self, fleet):
        assert fleet.decide_many([]) == []

    def test_fleet_counts_every_answer(self, fleet):
        fleet.decide("count-a", make_obs())
        fleet.decide_many([("count-b", make_obs()), ("count-c", make_obs())])
        assert fleet.decisions == 3
        assert fleet.failovers == 0


class TestKillAndRehome:
    def test_sigkill_rehomes_then_restarts(self, fleet):
        victim = 0
        survivor = 1
        sid = session_homed_on(fleet, victim, tag="victim")
        assert fleet.decide(sid, make_obs()).shard == victim

        os.kill(fleet.worker_pids()[victim], signal.SIGKILL)

        # The very next request for the orphaned session is re-homed onto
        # the survivor — at worst the request that discovers the death
        # makes a second routing attempt, never a floored answer.
        decision = fleet.decide(sid, make_obs())
        assert decision.shard == survivor
        assert decision.rehomed
        assert not decision.failover
        assert sid in fleet.rehomed_sessions()
        assert fleet.sessions_rehomed >= 1

        # The supervisor restarts the corpse with a fresh generation...
        assert wait_until(lambda: fleet.supervisor.is_alive(victim))
        counters = fleet.supervisor.counters()
        assert counters["worker_deaths"] >= 1
        assert counters["worker_restarts"] >= 1

        # ... and the restarted shard serves new sessions immediately,
        # while the re-homed session stays sticky on the survivor.
        fresh = session_homed_on(fleet, victim, tag="fresh")
        assert wait_until(
            lambda: fleet.decide(fresh, make_obs()).shard == victim
        )
        assert fleet.decide(sid, make_obs()).shard == survivor

    def test_batch_spanning_a_dead_shard_rehomes_it(self, fleet):
        victim = 1
        os.kill(fleet.worker_pids()[victim], signal.SIGKILL)
        requests = [(f"span-{i}", make_obs(segment=i)) for i in range(32)]
        # First batch may discover the death (those answers floor); once
        # the slot is marked dead, every batch re-homes cleanly.
        fleet.decide_many(requests)
        assert wait_until(
            lambda: not fleet.supervisor.is_alive(victim)
            or fleet.supervisor.counters()["worker_deaths"] >= 1
        )
        decisions = fleet.decide_many(requests)
        assert all(not d.failover for d in decisions)
        for (sid, _obs), decision in zip(requests, decisions):
            if fleet.home_shard(sid) == victim:
                assert decision.rehomed
                assert decision.shard != victim

    def test_all_shards_dead_serves_the_floor(self):
        service = ShardedDecisionService(
            ladder=LADDER,
            max_buffer=MAX_BUFFER,
            shards=1,
            deadline=DEADLINE,
            table_points=10,
            heartbeat_interval=0.05,
        )
        try:
            service.supervisor.stop_monitor()  # no restarts: stay dead
            os.kill(service.worker_pids()[0], signal.SIGKILL)
            decision = service.decide("orphan", make_obs())
            assert decision.failover
            assert decision.shard == -1
            assert 0 <= decision.quality < LADDER.levels
            assert service.failovers >= 1
        finally:
            service.close()


class TestDrain:
    def test_close_returns_final_fleet_health(self, fleet):
        fleet.decide("drain-a", make_obs())
        final = fleet.close()
        assert isinstance(final, FleetHealth)
        assert final.decisions >= 1
        assert not final.ready
        # Worker finals were collected over the stop handshake.
        assert sum(1 for s in final.per_shard if s.get("live")) == 2
        assert final.rollup.get("decisions", 0) >= 1

    def test_requests_after_close_hit_the_floor_not_the_void(self, fleet):
        fleet.close()
        decision = fleet.decide("late", make_obs())
        assert decision.failover
        assert 0 <= decision.quality < LADDER.levels
        batch = fleet.decide_many([("late-b", make_obs())])
        assert batch[0].failover

    def test_close_is_idempotent(self, fleet):
        first = fleet.close()
        assert fleet.close() is first

    def test_close_removes_the_published_table(self, fleet):
        path = fleet.table_path
        assert os.path.exists(path)
        fleet.close()
        assert not os.path.exists(path)


class TestFleetHealth:
    def test_snapshot_shape(self, fleet):
        fleet.decide("health-a", make_obs())
        health = fleet.health()
        assert health.shards == 2
        assert health.live_shards == 2
        assert health.ready
        assert health.decisions == 1
        assert len(health.per_shard) == 2
        assert health.rollup["decisions"] == 1
        payload = health.to_dict()
        assert payload["per_shard"][0]["live"]
        assert "latency" in payload

    def test_rollup_sums_counters_across_live_shards_only(self):
        per_shard = [
            {"live": True, "evictions": 2, "sheds": 1,
             "stats": {"decisions": 10, "tier2_decisions": 3,
                       "degraded": False}},
            {"live": True, "evictions": 1, "sheds": 4,
             "stats": {"decisions": 5, "tier2_decisions": 0,
                       "degraded": True}},
            {"live": False, "shard": 2},  # dead: contributes nothing
        ]
        rollup = _roll_up(per_shard)
        assert rollup["decisions"] == 15
        assert rollup["tier2_decisions"] == 3
        assert rollup["evictions"] == 3
        assert rollup["sheds"] == 5
        assert "degraded" not in rollup  # booleans are not counters

    def test_dead_shard_appears_as_not_live(self, fleet):
        fleet.supervisor.stop_monitor()  # hold the corpse down
        os.kill(fleet.worker_pids()[0], signal.SIGKILL)
        fleet.decide(session_homed_on(fleet, 0), make_obs())  # detect death
        health = fleet.health()
        assert health.live_shards == 1
        assert health.per_shard[0] == {"live": False, "shard": 0}
