"""The sharded decision service: supervision, re-homing, drain.

These tests run the real thing — forked worker processes behind the
front end, a decision table published through a memory-mapped file, a
supervisor heartbeating the fleet — and exercise the robustness story
end to end: a worker SIGKILLed mid-serving must cost its shard only
(sessions re-home onto survivors, the supervisor restarts the corpse),
and a drained fleet must keep answering from the floor rather than
dropping requests.
"""

import os
import signal
import time

import pytest

from repro.prediction.base import ThroughputSample
from repro.service import ShardedDecisionService
from repro.service.shard import (
    FleetHealth,
    _roll_up,
    decode_observation,
    encode_observation,
)
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder

LADDER = BitrateLadder([1.0, 2.5, 5.0, 8.0], segment_duration=2.0,
                       name="shard-test")
MAX_BUFFER = 25.0
DEADLINE = 0.25


def make_obs(segment=3, buffer_level=12.0, prev=2, tput=4.0e6):
    history = ()
    if tput is not None:
        history = (
            ThroughputSample(start=0.0, duration=1.0, size=tput,
                             throughput=tput),
        )
    return PlayerObservation(
        wall_time=2.0 * segment,
        segment_index=segment,
        buffer_level=buffer_level,
        max_buffer=MAX_BUFFER,
        previous_quality=prev,
        ladder=LADDER,
        history=history,
    )


def session_homed_on(service, shard, tag="s"):
    """A session id whose CRC-32 home is the given shard."""
    for i in range(10_000):
        sid = f"{tag}-{i}"
        if service.home_shard(sid) == shard:
            return sid
    raise AssertionError(f"no session hashed onto shard {shard}")


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def fleet():
    service = ShardedDecisionService(
        ladder=LADDER,
        max_buffer=MAX_BUFFER,
        shards=2,
        deadline=DEADLINE,
        table_points=10,
        heartbeat_interval=0.05,
    )
    try:
        yield service
    finally:
        service.close()


class TestWireCodec:
    def test_observation_round_trips(self):
        obs = make_obs(segment=9, buffer_level=7.5, prev=1)
        rebuilt = decode_observation(encode_observation(obs), LADDER)
        assert rebuilt == obs

    def test_history_round_trips_as_samples(self):
        obs = make_obs()
        rebuilt = decode_observation(encode_observation(obs), LADDER)
        assert rebuilt.history == obs.history
        assert isinstance(rebuilt.history[0], ThroughputSample)


class TestServing:
    def test_decide_answers_from_the_home_shard(self, fleet):
        for shard in range(fleet.shards):
            sid = session_homed_on(fleet, shard)
            decision = fleet.decide(sid, make_obs())
            assert decision.shard == shard
            assert not decision.rehomed
            assert not decision.failover
            assert 0 <= decision.quality < LADDER.levels

    def test_decide_many_columnar_matches_full_history(self, fleet):
        requests = [
            (f"batch-{i}", make_obs(segment=i, buffer_level=4.0 + i % 15,
                                    prev=i % LADDER.levels,
                                    tput=1.0e6 + 2.0e5 * (i % 11)))
            for i in range(64)
        ]
        columnar = fleet.decide_many(requests)
        full = fleet.decide_many(requests, full_history=True)
        assert [d.quality for d in columnar] == [d.quality for d in full]
        assert [d.shard for d in columnar] == [d.shard for d in full]
        assert all(not d.failover for d in columnar)
        # Each decision went to its session's home shard.
        for (sid, _obs), decision in zip(requests, columnar):
            assert decision.shard == fleet.home_shard(sid)
            assert decision.session_id == sid

    def test_decide_many_empty_batch(self, fleet):
        assert fleet.decide_many([]) == []

    def test_fleet_counts_every_answer(self, fleet):
        fleet.decide("count-a", make_obs())
        fleet.decide_many([("count-b", make_obs()), ("count-c", make_obs())])
        assert fleet.decisions == 3
        assert fleet.failovers == 0


class TestKillAndRehome:
    def test_sigkill_rehomes_then_restarts(self, fleet):
        victim = 0
        survivor = 1
        sid = session_homed_on(fleet, victim, tag="victim")
        assert fleet.decide(sid, make_obs()).shard == victim

        os.kill(fleet.worker_pids()[victim], signal.SIGKILL)

        # The very next request for the orphaned session is re-homed onto
        # the survivor — at worst the request that discovers the death
        # makes a second routing attempt, never a floored answer.
        decision = fleet.decide(sid, make_obs())
        assert decision.shard == survivor
        assert decision.rehomed
        assert not decision.failover
        assert sid in fleet.rehomed_sessions()
        assert fleet.sessions_rehomed >= 1

        # The supervisor restarts the corpse with a fresh generation...
        assert wait_until(lambda: fleet.supervisor.is_alive(victim))
        counters = fleet.supervisor.counters()
        assert counters["worker_deaths"] >= 1
        assert counters["worker_restarts"] >= 1

        # ... and the restarted shard serves new sessions immediately,
        # while the re-homed session stays sticky on the survivor.
        fresh = session_homed_on(fleet, victim, tag="fresh")
        assert wait_until(
            lambda: fleet.decide(fresh, make_obs()).shard == victim
        )
        assert fleet.decide(sid, make_obs()).shard == survivor

    def test_batch_spanning_a_dead_shard_rehomes_it(self, fleet):
        victim = 1
        os.kill(fleet.worker_pids()[victim], signal.SIGKILL)
        requests = [(f"span-{i}", make_obs(segment=i)) for i in range(32)]
        # First batch may discover the death (those answers floor); once
        # the slot is marked dead, every batch re-homes cleanly.
        fleet.decide_many(requests)
        assert wait_until(
            lambda: not fleet.supervisor.is_alive(victim)
            or fleet.supervisor.counters()["worker_deaths"] >= 1
        )
        decisions = fleet.decide_many(requests)
        assert all(not d.failover for d in decisions)
        for (sid, _obs), decision in zip(requests, decisions):
            if fleet.home_shard(sid) == victim:
                assert decision.rehomed
                assert decision.shard != victim

    def test_all_shards_dead_serves_the_floor(self):
        service = ShardedDecisionService(
            ladder=LADDER,
            max_buffer=MAX_BUFFER,
            shards=1,
            deadline=DEADLINE,
            table_points=10,
            heartbeat_interval=0.05,
        )
        try:
            service.supervisor.stop_monitor()  # no restarts: stay dead
            os.kill(service.worker_pids()[0], signal.SIGKILL)
            decision = service.decide("orphan", make_obs())
            assert decision.failover
            assert decision.shard == -1
            assert 0 <= decision.quality < LADDER.levels
            assert service.failovers >= 1
        finally:
            service.close()


class TestDrain:
    def test_close_returns_final_fleet_health(self, fleet):
        fleet.decide("drain-a", make_obs())
        final = fleet.close()
        assert isinstance(final, FleetHealth)
        assert final.decisions >= 1
        assert not final.ready
        # Worker finals were collected over the stop handshake.
        assert sum(1 for s in final.per_shard if s.get("live")) == 2
        assert final.rollup.get("decisions", 0) >= 1

    def test_requests_after_close_hit_the_floor_not_the_void(self, fleet):
        fleet.close()
        decision = fleet.decide("late", make_obs())
        assert decision.failover
        assert 0 <= decision.quality < LADDER.levels
        batch = fleet.decide_many([("late-b", make_obs())])
        assert batch[0].failover

    def test_close_is_idempotent(self, fleet):
        first = fleet.close()
        assert fleet.close() is first

    def test_close_removes_the_published_table(self, fleet):
        path = fleet.table_path
        assert os.path.exists(path)
        fleet.close()
        assert not os.path.exists(path)


class TestFleetHealth:
    def test_snapshot_shape(self, fleet):
        fleet.decide("health-a", make_obs())
        health = fleet.health()
        assert health.shards == 2
        assert health.live_shards == 2
        assert health.ready
        assert health.decisions == 1
        assert len(health.per_shard) == 2
        assert health.rollup["decisions"] == 1
        payload = health.to_dict()
        assert payload["per_shard"][0]["live"]
        assert "latency" in payload

    def test_rollup_sums_counters_across_live_shards_only(self):
        per_shard = [
            {"live": True, "evictions": 2, "sheds": 1,
             "stats": {"decisions": 10, "tier2_decisions": 3,
                       "degraded": False}},
            {"live": True, "evictions": 1, "sheds": 4,
             "stats": {"decisions": 5, "tier2_decisions": 0,
                       "degraded": True}},
            {"live": False, "shard": 2},  # dead: contributes nothing
        ]
        rollup = _roll_up(per_shard)
        assert rollup["decisions"] == 15
        assert rollup["tier2_decisions"] == 3
        assert rollup["evictions"] == 3
        assert rollup["sheds"] == 5
        assert "degraded" not in rollup  # booleans are not counters

    def test_dead_shard_appears_as_not_live(self, fleet):
        fleet.supervisor.stop_monitor()  # hold the corpse down
        os.kill(fleet.worker_pids()[0], signal.SIGKILL)
        fleet.decide(session_homed_on(fleet, 0), make_obs())  # detect death
        health = fleet.health()
        assert health.live_shards == 1
        assert health.per_shard[0] == {
            "live": False, "shard": 0, "restarts": 0,
        }
        assert health.table_versions[0] == -1


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestRestartBackoff:
    """The supervisor's bounded-backoff policy, driven deterministically."""

    def make(self, clock):
        from repro.service.supervisor import RestartPolicy, Supervisor

        class FakeProc:
            pid = 4242

            def __init__(self):
                self._alive = True

            def is_alive(self):
                return self._alive

            def kill(self):
                self._alive = False

            def join(self, timeout=None):
                pass

        class FakeConn:
            def close(self):
                pass

        def spawn(index, generation):
            return FakeProc(), FakeConn()

        return Supervisor(
            1,
            spawn,
            policy=RestartPolicy(
                base_delay=0.1, max_delay=2.0, min_uptime=1.0
            ),
            clock=clock,
        )

    def test_policy_validation(self):
        from repro.service.supervisor import RestartPolicy

        with pytest.raises(ValueError):
            RestartPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RestartPolicy(base_delay=1.0, max_delay=0.5)

    def test_rapid_crash_loop_doubles_backoff_to_the_cap(self):
        clock = FakeClock()
        sup = self.make(clock)
        slot = sup.slots[0]
        sup._respawn(slot)
        expected = [0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]
        for backoff in expected:
            sup._mark_dead(slot, killed=False)  # instant death
            assert slot.backoff == pytest.approx(backoff)
            assert slot.next_restart_at == pytest.approx(clock() + backoff)
            sup._respawn(slot)
        assert sup.counters()["worker_deaths"] == len(expected)
        assert sup.counters()["worker_restarts"] == len(expected)

    def test_serving_past_min_uptime_restarts_at_base_delay(self):
        clock = FakeClock()
        sup = self.make(clock)
        slot = sup.slots[0]
        sup._respawn(slot)
        for _ in range(4):  # build up a doubled backoff first
            sup._mark_dead(slot, killed=False)
            sup._respawn(slot)
        assert slot.backoff == pytest.approx(0.8)
        clock.advance(5.0)  # a healthy stretch past min_uptime
        sup._mark_dead(slot, killed=False)
        assert slot.backoff == pytest.approx(0.1)
        assert slot.next_restart_at == pytest.approx(clock() + 0.1)

    def test_death_exactly_at_min_uptime_counts_as_healthy(self):
        clock = FakeClock()
        sup = self.make(clock)
        slot = sup.slots[0]
        sup._respawn(slot)
        sup._mark_dead(slot, killed=False)
        sup._respawn(slot)
        clock.advance(1.0)  # uptime == min_uptime
        sup._mark_dead(slot, killed=False)
        assert slot.backoff == pytest.approx(0.1)


def build_table(points=10):
    from repro.core.lookup import DecisionTable
    from repro.core.objective import SodaConfig

    return DecisionTable(
        LADDER,
        MAX_BUFFER,
        config=SodaConfig(solver_backend="fast"),
        throughput_points=points,
        buffer_points=points,
    )


class TestRollout:
    def test_commit_advances_every_shard(self, fleet):
        from repro.core.lookup import DecisionTable, TablePublisher

        stages = []
        report = fleet.rollout(
            build_table(),
            probation=0.1,
            monitor=lambda stage, info: stages.append(stage),
        )
        assert report.committed and not report.rolled_back
        assert (report.previous_version, report.target_version) == (1, 2)
        assert stages[0] == "publish"
        assert "canary" in stages and "probation" in stages
        assert stages[-1] == "commit"
        assert fleet.shard_table_versions() == [2, 2]
        assert fleet.health().table_versions == [2, 2]
        # The live file was promoted (worker restarts land on v2) and
        # the published sibling was cleaned up.
        assert DecisionTable.peek_version(fleet.table_path) == 2
        assert TablePublisher(fleet.table_path).published() == {}
        assert report.final_versions == [2, 2]

    def test_poisoned_canary_rolls_back_everywhere(self, fleet):
        from repro.core.lookup import DecisionTable, TablePublisher

        poison = build_table()
        poison._table[:] = -1  # in-range cells, catastrophic answers
        stages = []
        report = fleet.rollout(
            poison,
            probation=0.1,
            monitor=lambda stage, info: stages.append(stage),
        )
        assert report.rolled_back and not report.committed
        assert "floor-rate" in report.reason
        assert stages[-1] == "rollback"
        assert "advance" not in stages  # stopped at the canary
        assert fleet.shard_table_versions() == [1, 1]
        assert DecisionTable.peek_version(fleet.table_path) == 1
        assert TablePublisher(fleet.table_path).published() == {}
        # The fleet is still serving on the old table afterwards.
        decision = fleet.decide("s-after", make_obs())
        assert 0 <= decision.quality < LADDER.levels

    def test_rollout_requires_a_published_table(self):
        service = ShardedDecisionService(
            ladder=LADDER,
            max_buffer=MAX_BUFFER,
            shards=2,
            deadline=DEADLINE,
            table_points=0,  # tier 1 disabled: nothing to roll out onto
            heartbeat_interval=0.05,
        )
        try:
            with pytest.raises(RuntimeError):
                service.rollout(build_table())
        finally:
            service.close()

    def test_fleet_health_reports_retry_budget(self, fleet):
        fleet.decide("s-0", make_obs())
        health = fleet.health()
        assert health.retries_granted == 0
        assert health.retries_denied == 0
        assert "retries_granted" in health.to_dict()
