"""Property tests: learned policies honor the tier-0/1 serving contract.

Satellite of the learning PR, mirroring ``test_service_properties.py``:
Hypothesis drives behavior-cloned, fine-tuned, and distilled policies
with arbitrary observations — buffers outside the cap, NaN/inf
throughputs (what injected faults produce), previous rungs off either
end of the ladder — and asserts the one invariant every serving layer
assumes: a policy answers with an **in-range rung or None** (defer, which
tier 1's safe fallback absorbs), and it never raises.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.rl import encode_state
from repro.learn import (
    DemoDataset,
    PolicyController,
    PolicyTable,
    TableController,
    distill_policy,
    fit_bc,
    finetune,
    policy_from_q,
)
from repro.prediction.base import ThroughputSample
from repro.sim.network import ThroughputTrace
from repro.sim.player import PlayerConfig, PlayerObservation
from repro.sim.video import BitrateLadder

# Hypothesis examples can't use function-scoped fixtures; the policies
# under test are built once at import, deterministically, and never
# mutated by an example.
LADDER = BitrateLadder([1.0, 3.0, 6.0, 12.0], segment_duration=2.0,
                       name="prop")
MAX_BUFFER = 20.0


def _build_policies():
    dataset = DemoDataset(
        ladder=LADDER, max_buffer=MAX_BUFFER, controller="soda",
        buffer_buckets=6, throughput_buckets=6,
    )
    # A sparse, lopsided demonstration set: some states defer, most of
    # the state space stays unvisited, exercising every fallback path.
    rows = [
        [0.0, -1.0, -1, 0], [2.0, 1.2, 0, 0], [5.0, 2.5, 0, 1],
        [9.0, 5.0, 1, 2], [14.0, 9.0, 2, 3], [19.0, 14.0, 3, -1],
        [19.5, 14.0, 3, -1], [7.0, 3.0, 1, 1], [11.0, 6.0, 2, 2],
    ]
    for row in rows:
        dataset.add_row(row)
    bc_policy, _ = fit_bc(dataset)

    trace = ThroughputTrace([20.0, 20.0], [8.0, 1.5], name="prop-ft")
    config = PlayerConfig(max_buffer=MAX_BUFFER, num_segments=10,
                          startup_threshold=2.0, live_delay=None)
    agent = finetune(bc_policy, [trace], player_config=config,
                     episodes=2, seed=11)
    ft_policy = policy_from_q(agent, LADDER, MAX_BUFFER)
    table = distill_policy(bc_policy, throughput_points=10, buffer_points=10)
    return bc_policy, ft_policy, table


BC_POLICY, FT_POLICY, TABLE = _build_policies()

CONTROLLERS = [
    PolicyController(BC_POLICY, name="bc"),
    PolicyController(FT_POLICY, name="ft"),
    TableController(TABLE, name="distilled"),
]

# Adversarial raw features: buffers beyond the cap and negative,
# throughputs including the NaN/inf a fault-corrupted sample carries,
# previous rungs off both ends of the ladder.
buffer_levels = st.one_of(
    st.floats(min_value=-10.0, max_value=3.0 * MAX_BUFFER,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([float("nan"), float("inf"), -float("inf")]),
)
throughputs = st.one_of(
    st.none(),
    st.floats(min_value=-5.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    st.sampled_from([float("nan"), float("inf"), -float("inf")]),
)
previous_qualities = st.one_of(
    st.none(), st.integers(min_value=-3, max_value=LADDER.levels + 3)
)


def make_obs(buffer_level, throughput, prev):
    history = ()
    if throughput is not None:
        history = (ThroughputSample(start=0.0, duration=1.0,
                                    size=throughput,
                                    throughput=throughput),)
    return PlayerObservation(
        wall_time=42.0,
        segment_index=5,
        buffer_level=buffer_level,
        max_buffer=MAX_BUFFER,
        previous_quality=prev,
        ladder=LADDER,
        history=history,
    )


@settings(max_examples=300, deadline=None)
@given(buffer_level=buffer_levels, throughput=throughputs,
       prev=previous_qualities)
def test_policies_answer_in_range_or_defer(buffer_level, throughput, prev):
    """BC, fine-tuned, and distilled policies all return an in-range
    rung or None for any observation, and never raise."""
    obs = make_obs(buffer_level, throughput, prev)
    for controller in CONTROLLERS:
        decision = controller.select_quality(obs)
        assert decision is None or (
            isinstance(decision, (int, np.integer))
            and not isinstance(decision, bool)
            and 0 <= decision < LADDER.levels
        ), f"{controller.name}: {decision!r}"


@settings(max_examples=300, deadline=None)
@given(buffer_level=buffer_levels, throughput=throughputs,
       prev=previous_qualities)
def test_encode_state_is_total_and_in_bounds(buffer_level, throughput, prev):
    """The shared state contract: every raw feature combination maps to
    a finite in-bounds state — faults can't crash discretisation."""
    state = encode_state(
        buffer_level, throughput, prev, MAX_BUFFER,
        LADDER.min_bitrate, LADDER.max_bitrate, 6, 6,
    )
    b, t, p = state
    assert 0 <= b < 6
    assert 0 <= t < 6
    if prev is None:
        assert p == -1
    else:
        assert p == int(prev)


@settings(max_examples=300, deadline=None)
@given(
    b=st.integers(min_value=-2, max_value=8),
    t=st.integers(min_value=-2, max_value=8),
    p=st.integers(min_value=-3, max_value=LADDER.levels + 3),
    prev=previous_qualities,
)
def test_decide_is_total_over_arbitrary_states(b, t, p, prev):
    """PolicyTable.decide never raises even on states outside the
    bucket ranges (a policy queried with foreign bucket sizes), and a
    defer is only ever returned with a non-empty buffer bucket."""
    for policy in (BC_POLICY, FT_POLICY):
        decision = policy.decide((b, t, p), prev)
        assert decision is None or 0 <= decision < LADDER.levels
        if b == 0:
            assert decision is not None


@settings(max_examples=200, deadline=None)
@given(
    throughput=st.floats(min_value=1e-3, max_value=100.0,
                         allow_nan=False, allow_infinity=False),
    buffer_level=st.floats(min_value=0.0, max_value=MAX_BUFFER,
                           allow_nan=False, allow_infinity=False),
    prev=previous_qualities,
)
def test_distilled_grid_agrees_with_its_policy(throughput, buffer_level,
                                               prev):
    """On exact grid points the distilled table reproduces the policy's
    own decision — distillation is a rendering, not an approximation."""
    ti = int(np.abs(TABLE._tput_grid - throughput).argmin())
    bi = int(np.abs(TABLE._buffer_grid - buffer_level).argmin())
    grid_tput = float(TABLE._tput_grid[ti])
    grid_buf = float(TABLE._buffer_grid[bi])
    clean_prev = prev if prev is not None and 0 <= prev < LADDER.levels \
        else None
    state = encode_state(
        grid_buf, grid_tput, clean_prev, MAX_BUFFER,
        LADDER.min_bitrate, LADDER.max_bitrate,
        BC_POLICY.buffer_buckets, BC_POLICY.throughput_buckets,
    )
    expected = BC_POLICY.decide(state, clean_prev)
    assert TABLE.lookup(grid_tput, grid_buf, clean_prev) == expected
    assert expected is None or math.isfinite(expected)
