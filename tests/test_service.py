"""Tests for the multi-session decision service (repro.service)."""

import json
import math
import threading

import pytest

from repro.service import (
    TIER_RULE,
    TIER_SOLVER,
    TIER_TABLE,
    AdmissionGate,
    BreakerState,
    CircuitBreaker,
    DecisionService,
    DegradationLadder,
    LatencyRing,
    SessionTable,
    SoakConfig,
    StatsCounters,
    TierDecision,
    run_soak,
)
from repro.sim.player import PlayerObservation
from repro.sim.video import BitrateLadder


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


def make_obs(ladder, buffer_level=8.0, prev=1, max_buffer=20.0):
    return PlayerObservation(
        wall_time=10.0,
        segment_index=5,
        buffer_level=buffer_level,
        max_buffer=max_buffer,
        previous_quality=prev,
        ladder=ladder,
        history=(),
    )


# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_successes=0)

    def test_trips_after_consecutive_failures(self, clock):
        b = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state is BreakerState.CLOSED
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert not b.allow()
        assert b.times_opened == 1

    def test_success_resets_the_streak(self, clock):
        b = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state is BreakerState.CLOSED

    def test_cooldown_half_opens_then_closes(self, clock):
        b = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=clock)
        b.record_failure()
        assert b.state is BreakerState.OPEN
        clock.advance(1.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.allow()  # promotes to half-open
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED
        assert b.full_cycles() == 1

    def test_probe_failure_reopens(self, clock):
        b = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        b.record_failure()
        clock.advance(1.1)
        assert b.allow()
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.times_opened == 2
        # the interrupted cycle does not count
        assert b.full_cycles() == 0
        clock.advance(1.1)
        assert b.allow()
        b.record_success()
        assert b.full_cycles() == 1

    def test_half_open_requires_enough_probes(self, clock):
        b = CircuitBreaker(
            failure_threshold=1, cooldown=1.0, half_open_successes=2,
            clock=clock,
        )
        b.record_failure()
        clock.advance(1.1)
        assert b.allow()
        b.record_success()
        assert b.state is BreakerState.HALF_OPEN
        b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_thread_safety_smoke(self):
        b = CircuitBreaker(failure_threshold=5, cooldown=0.01)
        def hammer():
            for _ in range(500):
                if b.allow():
                    b.record_failure()
                b.record_success()
        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.failures_recorded > 0


# ----------------------------------------------------------------------
class TestDegradationLadder:
    def make(self, clock, ladder, tier1=None, deadline=0.1, **kwargs):
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown=1.0, clock=clock
        )
        default_tier1 = tier1 if tier1 is not None else (lambda obs: 0)
        return DegradationLadder(
            tier1=default_tier1,
            tier2=lambda obs: 0,
            breaker=breaker,
            deadline=deadline,
            clock=clock,
            **kwargs,
        )

    def test_validation(self, clock, ladder):
        breaker = CircuitBreaker(clock=clock)
        with pytest.raises(ValueError):
            DegradationLadder(None, lambda o: 0, breaker, deadline=0.0)
        with pytest.raises(ValueError):
            DegradationLadder(
                None, lambda o: 0, breaker, deadline=0.1,
                tier0_budget=0.01, tier1_budget=0.02,
            )

    def test_healthy_solver_answers_tier0(self, clock, ladder):
        lad = self.make(clock, ladder)
        obs = make_obs(ladder)
        d = lad.decide(obs, lambda o: 2, clock.t + 0.1)
        assert d == TierDecision(quality=2, tier=TIER_SOLVER)

    def test_solver_exception_degrades_to_table(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1)
        def boom(obs):
            raise RuntimeError("solver crashed")
        d = lad.decide(make_obs(ladder), boom, clock.t + 0.1)
        assert d.tier == TIER_TABLE
        assert d.quality == 1
        assert d.solver_error
        assert lad.breaker.failures_recorded == 1

    def test_nan_answer_is_a_solver_error(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1)
        d = lad.decide(make_obs(ladder), lambda o: float("nan"), clock.t + 0.1)
        assert d.tier == TIER_TABLE
        assert d.solver_error

    def test_out_of_range_answer_is_a_solver_error(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1)
        d = lad.decide(make_obs(ladder), lambda o: 99, clock.t + 0.1)
        assert d.tier == TIER_TABLE
        assert d.solver_error

    def test_slow_solver_overruns_and_charges_breaker(self, clock, ladder):
        lad = self.make(clock, ladder, deadline=0.1)
        def slow(obs):
            clock.advance(0.2)  # past the deadline
            return 1
        d = lad.decide(make_obs(ladder), slow, clock.t + 0.1)
        # the work is spent: the answer is served, flagged as overrun
        assert d.tier == TIER_SOLVER
        assert d.quality == 1
        assert d.overran
        assert lad.breaker.failures_recorded == 1

    def test_defer_holds_previous_rung(self, clock, ladder):
        lad = self.make(clock, ladder)
        d = lad.decide(make_obs(ladder, prev=2), lambda o: None, clock.t + 0.1)
        assert d.tier == TIER_SOLVER
        assert d.quality == 2
        assert d.deferred
        # a defer is a legitimate answer, not a breaker failure
        assert lad.breaker.failures_recorded == 0

    def test_defer_without_history_descends_without_blame(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1)
        d = lad.decide(
            make_obs(ladder, prev=None), lambda o: None, clock.t + 0.1
        )
        assert d.tier == TIER_TABLE
        assert not d.solver_error
        assert lad.breaker.failures_recorded == 0

    def test_no_budget_skips_solver(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1, deadline=0.1)
        calls = []
        d = lad.decide(
            make_obs(ladder),
            lambda o: calls.append(1) or 0,
            clock.t + 0.01,  # 10 ms left < tier0_budget (50 ms)
        )
        assert not calls
        assert d.tier == TIER_TABLE

    def test_exhausted_budget_falls_to_floor(self, clock, ladder):
        lad = self.make(clock, ladder, deadline=0.1)
        d = lad.decide(make_obs(ladder), lambda o: 0, clock.t - 1.0)
        assert d.tier == TIER_RULE

    def test_open_breaker_forces_tier1(self, clock, ladder):
        lad = self.make(clock, ladder, tier1=lambda obs: 1)
        for _ in range(3):
            lad.breaker.record_failure()
        calls = []
        d = lad.decide(
            make_obs(ladder), lambda o: calls.append(1) or 0, clock.t + 0.1
        )
        assert not calls
        assert d.tier == TIER_TABLE

    def test_tier1_exception_falls_to_floor(self, clock, ladder):
        def bad_table(obs):
            raise KeyError("table broken")
        lad = self.make(clock, ladder, tier1=bad_table)
        def boom(obs):
            raise RuntimeError("down")
        d = lad.decide(make_obs(ladder), boom, clock.t + 0.1)
        assert d.tier == TIER_RULE

    def test_floor_is_total_even_when_tier2_raises(self, clock, ladder):
        breaker = CircuitBreaker(clock=clock)
        def bad_rule(obs):
            raise RuntimeError("rule broken")
        lad = DegradationLadder(
            None, bad_rule, breaker, deadline=0.1, clock=clock
        )
        assert lad.floor_quality(make_obs(ladder)) == 0

    def test_disabled_tier1_jumps_to_floor(self, clock, ladder):
        breaker = CircuitBreaker(clock=clock)
        lad = DegradationLadder(
            None, lambda o: 0, breaker, deadline=0.1, clock=clock
        )
        def boom(obs):
            raise RuntimeError("down")
        d = lad.decide(make_obs(ladder), boom, clock.t + 0.1)
        assert d.tier == TIER_RULE


# ----------------------------------------------------------------------
class TestAdmission:
    def test_gate_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)

    def test_gate_sheds_beyond_capacity(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.shed == 1
        gate.release()
        assert gate.try_acquire()
        assert gate.max_in_flight_seen == 2

    def test_gate_over_release_raises(self):
        gate = AdmissionGate(1)
        with pytest.raises(RuntimeError):
            gate.release()

    def test_table_validation(self):
        with pytest.raises(ValueError):
            SessionTable(0)

    def test_table_lru_eviction(self):
        table = SessionTable(2)
        for sid in ("a", "b", "c"):
            entry, created = table.checkout(sid, dict)
            assert created
            table.checkin(entry)
        assert len(table) == 2
        assert "a" not in table and "b" in table and "c" in table
        assert table.evicted == 1
        assert table.created == 3

    def test_table_touch_refreshes_lru_order(self):
        table = SessionTable(2)
        for sid in ("a", "b"):
            entry, _ = table.checkout(sid, dict)
            table.checkin(entry)
        entry, created = table.checkout("a", dict)  # refresh a
        assert not created
        table.checkin(entry)
        entry, _ = table.checkout("c", dict)  # evicts b, not a
        table.checkin(entry)
        assert "a" in table and "b" not in table

    def test_table_never_evicts_in_use_entries(self):
        table = SessionTable(1)
        busy, _ = table.checkout("busy", dict)
        extra, _ = table.checkout("extra", dict)
        # both in use: nothing evictable, cap temporarily exceeded
        assert len(table) == 2
        table.checkin(extra)  # extra is now idle and over cap: evicted
        assert "busy" in table and "extra" not in table
        table.checkin(busy)
        assert "busy" in table

    def test_table_state_preserved_across_checkouts(self):
        table = SessionTable(4)
        entry, _ = table.checkout("s", dict)
        entry.state["n"] = 1
        table.checkin(entry)
        entry2, created = table.checkout("s", dict)
        assert not created
        assert entry2.state["n"] == 1
        table.checkin(entry2)


# ----------------------------------------------------------------------
class TestHealth:
    def test_ring_validation(self):
        with pytest.raises(ValueError):
            LatencyRing(0)

    def test_ring_percentiles(self):
        ring = LatencyRing(capacity=100)
        for i in range(1, 101):
            ring.record(i / 1000.0)
        p = ring.percentiles()
        assert p["p50"] == pytest.approx(0.051)
        assert p["p99"] == pytest.approx(0.100)
        assert ring.max_seen == pytest.approx(0.100)

    def test_ring_keeps_recent_window_only(self):
        ring = LatencyRing(capacity=4)
        for v in (1.0, 1.0, 1.0, 1.0, 0.002, 0.002, 0.002, 0.002):
            ring.record(v)
        assert ring.percentiles()["p99"] == pytest.approx(0.002)
        assert len(ring) == 4
        assert ring.total_recorded == 8
        assert ring.max_seen == 1.0  # lifetime max survives eviction

    def test_empty_ring_reports_zeros(self):
        ring = LatencyRing()
        assert ring.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_stats_snapshot_roundtrip(self):
        counters = StatsCounters()
        counters.record_tier(TierDecision(quality=1, tier=TIER_TABLE))
        counters.record_tier(
            TierDecision(quality=0, tier=TIER_RULE, solver_error=True)
        )
        counters.bump("shed")
        counters.set_sessions(3)
        snap = counters.snapshot()
        assert snap.decisions == 2
        assert snap.tier1_decisions == 1
        assert snap.tier2_decisions == 1
        assert snap.solver_errors == 1
        assert snap.shed == 1
        assert snap.degraded_decisions == 2
        assert snap.shed_rate() == pytest.approx(0.5)

    def test_health_snapshot_json(self, ladder):
        service = DecisionService(ladder, 20.0, table_points=0)
        service.decide("s", make_obs(ladder))
        payload = json.loads(service.health().to_json())
        assert payload["live"] is True
        assert payload["ready"] is True
        assert payload["breaker_state"] == "closed"
        assert payload["stats"]["decisions"] == 1
        assert set(payload["latency"]) == {"p50", "p95", "p99"}

    def test_snapshot_surfaces_evictions_and_sheds_top_level(self, ladder):
        """Fleet rollups read ``evictions``/``sheds`` without digging into
        the stats block — they must mirror the underlying counters."""
        service = DecisionService(
            ladder, 20.0, table_points=0, max_sessions=2, max_in_flight=1
        )
        for i in range(5):
            service.decide(f"s{i}", make_obs(ladder))  # 3 LRU evictions
        assert service.gate.try_acquire()
        service.decide("overload", make_obs(ladder))  # 1 shed
        service.gate.release()
        snapshot = service.health()
        assert snapshot.evictions == 3
        assert snapshot.evictions == snapshot.stats.sessions_evicted
        assert snapshot.sheds == 1
        assert snapshot.sheds == snapshot.stats.shed
        payload = json.loads(snapshot.to_json())
        assert payload["evictions"] == 3
        assert payload["sheds"] == 1


# ----------------------------------------------------------------------
class TestDecisionService:
    def test_validation(self, ladder):
        with pytest.raises(ValueError):
            DecisionService(ladder, 20.0, deadline=0.0, table_points=0)

    def test_decides_in_range(self, ladder):
        service = DecisionService(ladder, 20.0, table_points=8)
        d = service.decide("s1", make_obs(ladder))
        assert 0 <= d.quality < ladder.levels
        assert d.tier == TIER_SOLVER
        assert not d.shed

    def test_session_state_is_reused(self, ladder):
        service = DecisionService(ladder, 20.0, table_points=0)
        service.decide("s1", make_obs(ladder))
        service.decide("s1", make_obs(ladder))
        service.decide("s2", make_obs(ladder))
        stats = service.stats()
        assert stats.decisions == 3
        assert stats.sessions_created == 2
        assert stats.sessions_active == 2

    def test_corrupt_observation_is_sanitized(self, ladder):
        service = DecisionService(ladder, 20.0, table_points=0)
        obs = PlayerObservation(
            wall_time=float("nan"),
            segment_index=0,
            buffer_level=float("inf"),
            max_buffer=20.0,
            previous_quality=None,
            ladder=ladder,
            history=(),
        )
        d = service.decide("bad", obs)
        assert d.sanitized
        assert 0 <= d.quality < ladder.levels
        assert service.stats().sanitized_observations == 1

    def test_crashing_solver_never_escapes(self, ladder):
        def factory(session_id, controller):
            def boom(obs):
                raise RuntimeError("solver down")
            return boom
        service = DecisionService(
            ladder, 20.0, table_points=8, tier0_factory=factory
        )
        for i in range(8):
            d = service.decide("s", make_obs(ladder))
            assert 0 <= d.quality < ladder.levels
            assert d.tier != TIER_SOLVER
        stats = service.stats()
        assert stats.solver_errors > 0
        assert service.breaker.times_opened >= 1

    def test_lru_eviction_under_many_sessions(self, ladder):
        service = DecisionService(ladder, 20.0, table_points=0, max_sessions=4)
        for i in range(10):
            service.decide(f"s{i}", make_obs(ladder))
        stats = service.stats()
        assert stats.sessions_active == 4
        assert stats.sessions_evicted == 6
        assert stats.max_sessions_seen == 4

    def test_shed_when_slots_exhausted(self, ladder):
        service = DecisionService(
            ladder, 20.0, table_points=0, max_in_flight=1
        )
        # occupy the only slot by hand, as a stuck decision would
        assert service.gate.try_acquire()
        d = service.decide("s", make_obs(ladder))
        assert d.shed
        assert d.tier == TIER_RULE
        assert 0 <= d.quality < ladder.levels
        service.gate.release()
        assert not service.decide("s", make_obs(ladder)).shed

    def test_history_fed_once(self, ladder):
        from repro.prediction.base import ThroughputSample

        service = DecisionService(ladder, 20.0, table_points=0)
        sample = ThroughputSample(
            start=1.0, duration=1.0, size=4.0, throughput=4.0
        )
        obs = PlayerObservation(
            wall_time=4.0,
            segment_index=2,
            buffer_level=8.0,
            max_buffer=20.0,
            previous_quality=1,
            ladder=ladder,
            history=(sample,),
        )
        service.decide("s", obs)
        service.decide("s", obs)  # same history: must not double-feed
        entry = service.sessions.peek("s")
        assert entry is not None
        assert entry.state.last_fed == 1.0


# ----------------------------------------------------------------------
class TestSoak:
    def test_small_chaos_soak_holds_invariants(self):
        cfg = SoakConfig(
            sessions=40,
            segments_per_session=10,
            threads=6,
            seed=3,
            burst_at=10,
            table_points=8,
            max_sessions=16,
            max_in_flight=2,
            think_seconds=0.0,
            breaker_cooldown=0.1,
        )
        report = run_soak(cfg)
        assert report.passed, report.violations
        stats = report.snapshot.stats
        assert stats.decisions == report.decisions
        assert stats.tier1_decisions > 0
        assert stats.tier2_decisions > 0
        assert stats.sanitized_observations > 0
        assert stats.max_sessions_seen <= cfg.max_sessions
        assert report.snapshot.breaker_full_cycles >= 1
        assert report.snapshot.to_json()  # serializable

    def test_clean_serve_mode_stays_on_tier0(self):
        cfg = SoakConfig(
            sessions=20,
            segments_per_session=8,
            threads=4,
            chaos=False,
            max_in_flight=8,
            table_points=0,
            max_sessions=32,
        )
        report = run_soak(cfg)
        assert report.passed, report.violations
        stats = report.snapshot.stats
        assert stats.solver_errors == 0
        assert stats.sanitized_observations == 0
        assert stats.tier0_decisions > 0.9 * stats.decisions
        assert report.snapshot.breaker_state == "closed"


# ----------------------------------------------------------------------
class TestAdaptiveGate:
    def make(self, **kw):
        from repro.service import AdaptiveGate

        kw.setdefault("max_in_flight", 8)
        kw.setdefault("deadline", 0.1)
        kw.setdefault("window", 4)
        return AdaptiveGate(**kw)

    def test_validation(self):
        from repro.service import AdaptiveGate

        with pytest.raises(ValueError):
            AdaptiveGate(4, deadline=0.1, min_in_flight=5)
        with pytest.raises(ValueError):
            AdaptiveGate(4, deadline=0.0)
        with pytest.raises(ValueError):
            AdaptiveGate(4, deadline=0.1, decrease=1.5)
        with pytest.raises(ValueError):
            AdaptiveGate(4, deadline=0.1, new_headroom=0.0)

    def test_limit_starts_at_the_ceiling(self):
        gate = self.make()
        assert gate.limit == 8
        # Clean load behaves exactly like the fixed gate.
        assert all(gate.try_acquire() for _ in range(8))
        assert not gate.try_acquire()
        assert gate.shed == 1

    def test_slow_windows_cut_the_limit_multiplicatively(self):
        gate = self.make()
        for _ in range(4):
            gate.observe(0.2)  # p99 well past the deadline
        assert gate.limit == 4
        for _ in range(4):
            gate.observe(0.2)
        assert gate.limit == 2
        snapshot = gate.snapshot()
        assert snapshot["limit_decreases"] == 2
        assert snapshot["min_limit_seen"] == 2

    def test_decrease_stops_at_the_floor(self):
        gate = self.make(min_in_flight=2)
        for _ in range(40):
            gate.observe(0.2)
        assert gate.limit == 2

    def test_fast_windows_recover_additively(self):
        gate = self.make()
        for _ in range(8):
            gate.observe(0.2)  # two bad windows: 8 -> 4 -> 2
        assert gate.limit == 2
        for _ in range(4):
            gate.observe(0.001)  # one good window: +1
        assert gate.limit == 3
        assert gate.snapshot()["limit_increases"] == 1

    def test_recovery_never_exceeds_the_ceiling(self):
        gate = self.make()
        for _ in range(100):
            gate.observe(0.001)
        assert gate.limit == 8
        assert gate.snapshot()["limit_increases"] == 0

    def test_mid_band_latencies_hold_the_limit(self):
        gate = self.make()
        for _ in range(8):
            gate.observe(0.07)  # between low (0.05) and high (0.1)
        snapshot = gate.snapshot()
        assert gate.limit == 8
        assert snapshot["limit_increases"] == 0
        assert snapshot["limit_decreases"] == 0

    def test_new_arrivals_get_less_headroom(self):
        gate = self.make(max_in_flight=4, new_headroom=0.5)
        assert gate.try_acquire(established=False)
        assert gate.try_acquire(established=False)
        # 0.5 * 4 = 2 slots for new arrivals; established still fit.
        assert not gate.try_acquire(established=False)
        assert gate.try_acquire(established=True)
        snapshot = gate.snapshot()
        assert snapshot["shed"] == 1
        assert snapshot["shed_new"] == 1


class TestRetryBudget:
    def make(self, **kw):
        from repro.service import RetryBudget

        return RetryBudget(**kw)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(ratio=0.0)
        with pytest.raises(ValueError):
            self.make(burst=0.5)

    def test_starts_full_so_isolated_failures_retry(self):
        budget = self.make(ratio=0.1, burst=2.0)
        assert budget.try_retry()
        assert budget.try_retry()
        assert not budget.try_retry()
        snapshot = budget.snapshot()
        assert snapshot["retries_granted"] == 2
        assert snapshot["retries_denied"] == 1

    def test_requests_refill_at_the_ratio(self):
        budget = self.make(ratio=0.1, burst=1.0)
        assert budget.try_retry()
        assert not budget.try_retry()
        budget.record_request(count=9)
        assert not budget.try_retry()  # 0.9 tokens: not enough
        budget.record_request()
        assert budget.try_retry()  # 1.0 tokens

    def test_bucket_caps_at_burst(self):
        budget = self.make(ratio=0.5, burst=2.0)
        budget.record_request(count=1000)
        assert budget.tokens == 2.0

    def test_non_positive_deposits_ignored(self):
        budget = self.make(ratio=0.1, burst=1.0)
        before = budget.tokens
        budget.record_request(count=0)
        budget.record_request(count=-5)
        assert budget.tokens == before


# ----------------------------------------------------------------------
class TestTableSwap:
    def make_service(self, ladder, points=8):
        return DecisionService(
            ladder, 20.0, deadline=0.5, table_points=points
        )

    def test_set_table_swaps_tier1_in_place(self, ladder, tmp_path):
        from repro.core.lookup import DecisionTable

        service = self.make_service(ladder)
        assert service.table_version == 1
        path = tmp_path / "next.sodatbl"
        service.table.save_mmap(str(path), version=4)
        assert service.set_table(DecisionTable.load_mmap(str(path))) == 4
        assert service.table_version == 4
        decision = service.decide("s", make_obs(ladder))  # still serving
        assert 0 <= decision.quality < ladder.levels

    def test_set_table_none_disables_tier1(self, ladder):
        service = self.make_service(ladder)
        assert service.set_table(None) == 0
        assert service.table_version == 0
        assert service.degradation.tier1 is None
        decision = service.decide("s", make_obs(ladder))
        assert 0 <= decision.quality < ladder.levels

    def test_health_surfaces_table_version_and_admission(self, ladder):
        service = self.make_service(ladder)
        service.decide("s", make_obs(ladder))
        snapshot = service.health()
        assert snapshot.table_version == 1
        assert snapshot.admission["limit"] >= 1
        assert "shed_new" in snapshot.admission
        payload = json.loads(snapshot.to_json())
        assert payload["table_version"] == 1
        assert "admission" in payload
