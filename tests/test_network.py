"""Unit and property tests for the trace/network model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import ThroughputTrace


class TestConstruction:
    def test_basic(self):
        tr = ThroughputTrace([1.0, 2.0], [5.0, 10.0])
        assert len(tr) == 2
        assert tr.duration == 3.0
        assert tr.total_bits == 25.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ThroughputTrace([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ThroughputTrace([1.0], [5.0, 6.0])

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            ThroughputTrace([1.0, 0.0], [5.0, 5.0])

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            ThroughputTrace([1.0], [-1.0])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            ThroughputTrace([[1.0]], [[5.0]])

    def test_constant_factory(self):
        tr = ThroughputTrace.constant(4.0, 10.0)
        assert tr.duration == 10.0
        assert tr.bandwidth_at(3.0) == 4.0

    def test_from_samples(self):
        tr = ThroughputTrace.from_samples([1.0, 2.0, 3.0], dt=0.5)
        assert tr.duration == 1.5
        assert tr.bandwidth_at(1.2) == 3.0


class TestQueries:
    def test_bandwidth_at_boundaries(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        assert tr.bandwidth_at(0.0) == 2.0
        assert tr.bandwidth_at(0.999) == 2.0
        assert tr.bandwidth_at(1.0) == 8.0

    def test_bandwidth_wraps(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        assert tr.bandwidth_at(2.5) == 2.0  # wrapped to 0.5

    def test_bandwidth_at_negative_raises(self):
        tr = ThroughputTrace.constant(1.0, 1.0)
        with pytest.raises(ValueError):
            tr.bandwidth_at(-0.1)

    def test_bits_between(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        assert tr.bits_between(0.0, 1.0) == pytest.approx(2.0)
        assert tr.bits_between(0.5, 1.5) == pytest.approx(1.0 + 4.0)
        # across a loop boundary
        assert tr.bits_between(1.5, 2.5) == pytest.approx(4.0 + 1.0)

    def test_bits_between_rejects_reversed(self):
        tr = ThroughputTrace.constant(1.0, 1.0)
        with pytest.raises(ValueError):
            tr.bits_between(2.0, 1.0)

    def test_average_throughput(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        assert tr.average_throughput(0.0, 2.0) == pytest.approx(5.0)

    def test_download_time_constant(self):
        tr = ThroughputTrace.constant(10.0, 100.0)
        assert tr.download_time(25.0, 0.0) == pytest.approx(2.5)
        assert tr.download_time(25.0, 7.3) == pytest.approx(2.5)

    def test_download_time_zero_size(self):
        tr = ThroughputTrace.constant(10.0, 100.0)
        assert tr.download_time(0.0, 5.0) == 0.0

    def test_download_time_negative_raises(self):
        tr = ThroughputTrace.constant(10.0, 100.0)
        with pytest.raises(ValueError):
            tr.download_time(-1.0, 0.0)

    def test_download_time_spans_segments(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        # 2 Mb in first second, then 8 Mb/s: 6 Mb takes 1 + 0.5 s
        assert tr.download_time(6.0, 0.0) == pytest.approx(1.5)

    def test_download_time_wraps_past_end(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        # starting mid-second-interval: 4 Mb left at 8 Mb/s, then wraps to 2
        assert tr.download_time(6.0, 1.5) == pytest.approx(0.5 + 1.0)

    def test_download_time_multiple_loops(self):
        tr = ThroughputTrace.constant(1.0, 2.0)  # 2 Mb per pass
        assert tr.download_time(7.0, 0.0) == pytest.approx(7.0)

    def test_download_time_zero_bandwidth_trace(self):
        tr = ThroughputTrace.constant(0.0, 5.0)
        assert math.isinf(tr.download_time(1.0, 0.0))

    def test_download_time_through_zero_interval(self):
        tr = ThroughputTrace([1.0, 1.0, 1.0], [4.0, 0.0, 4.0])
        # 6 Mb: 4 in [0,1), stall in [1,2), 2 more by 2.5
        assert tr.download_time(6.0, 0.0) == pytest.approx(2.5)


class TestStats:
    def test_constant_stats(self):
        s = ThroughputTrace.constant(4.0, 10.0).stats()
        assert s.mean == pytest.approx(4.0)
        assert s.std == pytest.approx(0.0)
        assert s.rsd == pytest.approx(0.0)

    def test_weighted_mean(self):
        s = ThroughputTrace([3.0, 1.0], [2.0, 10.0]).stats()
        assert s.mean == pytest.approx(4.0)
        assert s.minimum == 2.0
        assert s.maximum == 10.0

    def test_zero_mean_rsd(self):
        s = ThroughputTrace.constant(0.0, 1.0).stats()
        assert s.rsd == 0.0


class TestTransformations:
    def test_scaled(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0]).scaled(0.5)
        assert tr.stats().mean == pytest.approx(2.5)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ThroughputTrace.constant(1.0, 1.0).scaled(-1.0)

    def test_slice(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        sub = tr.slice(0.5, 1.5)
        assert sub.duration == pytest.approx(1.0)
        assert sub.bits_between(0.0, 1.0) == pytest.approx(1.0 + 4.0)

    def test_slice_rejects_empty(self):
        tr = ThroughputTrace.constant(1.0, 1.0)
        with pytest.raises(ValueError):
            tr.slice(1.0, 1.0)

    def test_split_drops_tail(self):
        tr = ThroughputTrace.constant(1.0, 25.0)
        chunks = tr.split(10.0)
        assert len(chunks) == 2
        assert all(c.duration == pytest.approx(10.0) for c in chunks)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ThroughputTrace.constant(1.0, 1.0).split(0.0)

    def test_sampled(self):
        tr = ThroughputTrace([1.0, 1.0], [2.0, 8.0])
        samples = tr.sampled(1.0)
        assert samples == pytest.approx([2.0, 8.0])

    def test_sampled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ThroughputTrace.constant(1.0, 1.0).sampled(0.0)


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    durations = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    bandwidths = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    return ThroughputTrace(durations, bandwidths)


class TestProperties:
    @given(traces(), st.floats(min_value=0.01, max_value=50.0),
           st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=80, deadline=None)
    def test_download_time_consistent_with_bits(self, tr, size, start):
        """Bits deliverable in the computed download time ≈ the size."""
        dt = tr.download_time(size, start)
        assert dt >= 0
        delivered = tr.bits_between(start, start + dt)
        assert delivered == pytest.approx(size, rel=1e-6, abs=1e-6)

    @given(traces(), st.floats(min_value=0.0, max_value=30.0),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=80, deadline=None)
    def test_bits_additive(self, tr, start, d1, d2):
        total = tr.bits_between(start, start + d1 + d2)
        parts = tr.bits_between(start, start + d1) + tr.bits_between(
            start + d1, start + d1 + d2
        )
        assert total == pytest.approx(parts, rel=1e-9, abs=1e-9)

    @given(traces(), st.floats(min_value=0.01, max_value=20.0),
           st.floats(min_value=0.01, max_value=20.0),
           st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_download_time_monotone_in_size(self, tr, s1, s2, start):
        small, large = sorted((s1, s2))
        assert tr.download_time(small, start) <= tr.download_time(
            large, start
        ) + 1e-9

    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_stats_bounds(self, tr):
        s = tr.stats()
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9
        assert s.std >= 0
        assert s.duration == pytest.approx(tr.duration)
