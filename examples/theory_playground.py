#!/usr/bin/env python3
"""The theory behind SODA, numerically (paper §4 and Appendix A).

Three demonstrations:

1. the exponentially decaying perturbation property (Figure 6 / Thm A.1):
   optimal trajectories from different initial buffers converge
   geometrically;
2. dynamic regret vs prediction horizon (Theorem 4.1): SODA's time-based
   rollout approaches the DP offline optimal as K grows;
3. the closed-form constants: ρ, C, C′ and the competitive-ratio bound for
   an Assumption-A.1-compliant instance.

Usage:
    python examples/theory_playground.py
"""

import numpy as np

from repro.core.objective import SodaConfig
from repro.core.offline import offline_optimal, rollout_time_based
from repro.core.planner import (
    ContinuousProblem,
    solve_continuous,
    trajectory_distance,
)
from repro.core.theory import (
    StreamingModel,
    check_assumption_a1,
    competitive_ratio_bound,
    decay_constants,
    fit_decay_rate,
    horizon_requirement,
)
from repro.sim.video import BitrateLadder


def demo_decay() -> None:
    print("=" * 64)
    print("1) Exponentially decaying perturbations (Figure 6)")
    problem = ContinuousProblem(
        r_min=1.5, r_max=12.0, max_buffer=20.0, target=12.0,
        beta=1.0, gamma=1.0,
    )
    omega = np.full(12, 6.0)
    plan_a = solve_continuous(omega, 4.0, 1 / 6.0, problem)
    plan_b = solve_continuous(omega, 18.0, 1 / 3.0, problem)
    distance = trajectory_distance(plan_a, plan_b)
    print("per-step |Δx|+|Δu| between two initial conditions:")
    print("  " + "  ".join(f"{d:.3f}" for d in distance))
    print(f"fitted decay factor ρ ≈ {fit_decay_rate(distance):.3f}")


def demo_regret() -> None:
    print("\n" + "=" * 64)
    print("2) Dynamic regret vs horizon K (Theorem 4.1, exact predictions)")
    ladder = BitrateLadder([1.0, 2.0, 3.0, 4.5, 6.0], segment_duration=2.0)
    cfg = SodaConfig(
        beta=0.1, gamma=2.0, target_buffer=10.0, switch_event_cost=0.0,
        use_brute_force=True,
    )
    rng = np.random.default_rng(3)
    omega = rng.uniform(2.0, 8.0, 80)
    opt = offline_optimal(omega, ladder, cfg, max_buffer=20.0, x0=10.0)
    print(f"offline optimal cost (DP): {opt.cost:.2f}")
    for k in (1, 2, 3, 5, 8):
        roll = rollout_time_based(
            omega, ladder, cfg.with_(horizon=k), max_buffer=20.0, x0=10.0,
        )
        print(
            f"  K={k}: cost={roll.cost:7.2f}  "
            f"regret={roll.cost - opt.cost:6.2f}  "
            f"competitive ratio={roll.cost / opt.cost:.3f}"
        )


def demo_constants() -> None:
    print("\n" + "=" * 64)
    print("3) Closed-form constants (Theorem A.1 / A.3)")
    model = StreamingModel(
        omega_min=6.0, omega_max=10.0, r_min=1.5, r_max=12.0,
        x_max=3.5, target=2.0, beta=1.0, gamma=1.0, epsilon=0.25,
    )
    ok, reason = check_assumption_a1(model)
    print(f"Assumption A.1: {reason}")
    assert ok
    constants = decay_constants(model)
    print(f"ρ  = {constants.rho:.6f}")
    print(f"C  = {constants.c_state:.4g}")
    print(f"C' = {constants.c_action:.4g}")
    print(f"Theorem A.3 horizon requirement: K ≥ {horizon_requirement(constants):.0f}")
    for k in (10, 100, 1000):
        print(
            f"  competitive-ratio bound at K={k}: "
            f"{competitive_ratio_bound(model, constants, k):.4g}"
        )
    print(
        "\n(The closed-form constants are conservative — empirically the "
        "decay is far faster, as demo 1 shows.)"
    )


if __name__ == "__main__":
    demo_decay()
    demo_regret()
    demo_constants()
