#!/usr/bin/env python3
"""Quickstart: stream one live session with SODA and inspect the QoE.

Runs SODA over a synthetic Puffer-like throughput trace in the paper's live
setting (20 s buffer, YouTube 4K ladder, 2 s segments) and prints the
per-session metrics plus a small timeline.

Usage:
    python examples/quickstart.py
"""

from repro import (
    SodaController,
    live_profile,
    puffer_like,
    qoe_from_session,
    run_session,
)


def main() -> None:
    # 1. A network trace: 5 minutes of Puffer-like residential broadband.
    trace = puffer_like().generate(duration=300.0, seed=42)
    print(f"trace: {trace.stats().mean:.1f} Mb/s mean, "
          f"{trace.stats().rsd:.0%} relative std dev")

    # 2. The evaluation setting: live streaming, 20 s behind the edge.
    profile = live_profile(session_seconds=300.0)
    print(f"ladder: {profile.ladder.bitrates} Mb/s, "
          f"{profile.ladder.segment_duration:.0f}s segments")

    # 3. The controller. SODA ships with a production-grade default tuning
    #    and a simple sliding-window predictor — no training, no lookup
    #    tables, a few hundred candidate plans per decision.
    controller = SodaController()

    # 4. Stream.
    result = run_session(controller, trace, profile.ladder, profile.player)

    # 5. The paper's QoE metrics.
    metrics = qoe_from_session(result)
    print("\nsession summary")
    print(f"  segments downloaded : {result.num_segments}")
    print(f"  mean utility        : {metrics.utility:.3f}")
    print(f"  rebuffering ratio   : {metrics.rebuffer_ratio:.4f}")
    print(f"  switching rate      : {metrics.switching_rate:.3f}")
    print(f"  QoE score           : {metrics.qoe:.3f}")
    print(f"  bitrate switches    : {result.switch_count}")
    print(f"  startup delay       : {result.startup_delay:.2f}s")

    # 6. A coarse bitrate timeline (one char per segment, rung index).
    timeline = "".join(str(q) for q in result.qualities)
    print("\nbitrate timeline (rung per 2s segment):")
    for i in range(0, len(timeline), 75):
        print("  " + timeline[i : i + 75])


if __name__ == "__main__":
    main()
