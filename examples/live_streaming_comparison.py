#!/usr/bin/env python3
"""Compare SODA against the baseline controllers on live streams.

A scaled-down version of the paper's Figure 10 experiment: SODA, HYB, BOLA,
Dynamic, and RobustMPC stream the same synthetic sessions from all three
dataset stand-ins (Puffer-, 5G-, and 4G-like); the script prints the mean
QoE components per dataset.

Usage:
    python examples/live_streaming_comparison.py [sessions-per-dataset]
"""

import sys

from repro.analysis import qoe_table, run_suite, standard_controllers
from repro.sim.profiles import live_profile
from repro.traces import build_synthetic_datasets

SESSION_SECONDS = 480.0


def main() -> None:
    n_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    datasets = build_synthetic_datasets(
        n_sessions, session_seconds=SESSION_SECONDS, seed=1
    )
    profiles = {
        "puffer": live_profile(session_seconds=SESSION_SECONDS),
        "5g": live_profile(session_seconds=SESSION_SECONDS, cellular=True),
        "4g": live_profile(session_seconds=SESSION_SECONDS, cellular=True),
    }

    for name, traces in datasets.items():
        suite = run_suite(standard_controllers(), traces, profiles[name], name)
        print(f"\n=== {name} dataset "
              f"({n_sessions} sessions × {SESSION_SECONDS:.0f}s) ===")
        print(qoe_table(suite.summaries()))
        print(
            "SODA QoE vs best baseline: "
            f"{suite.improvement_over_best_baseline():+.2%}"
        )
        soda = suite.summaries()["soda"]
        dynamic = suite.summaries()["dynamic"]
        if dynamic.switching_rate.mean > 0:
            cut = 1.0 - soda.switching_rate.mean / dynamic.switching_rate.mean
            print(f"switching reduction vs Dynamic: {cut:.1%}")


if __name__ == "__main__":
    main()
