#!/usr/bin/env python3
"""Write your own ABR controller against the library's interfaces.

Implements a naive "buffer thirds" controller in ~20 lines, streams it next
to SODA on the same traces, and prints the comparison — the minimal
template for plugging research controllers into this harness.

Usage:
    python examples/custom_controller.py
"""

from typing import Optional

from repro import SodaController, live_profile, run_dataset
from repro.abr.base import AbrController, PlayerObservation
from repro.analysis import qoe_table
from repro.qoe import summarize
from repro.traces import fourg_like


class BufferThirdsController(AbrController):
    """A deliberately simple buffer-threshold controller.

    Splits the buffer range into thirds: lowest rung below 1/3, a mid rung
    in the middle, the top rung above 2/3.  No predictions, no planning —
    a strawman to compare SODA against.
    """

    name = "buffer-thirds"

    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        fraction = obs.buffer_level / obs.max_buffer
        top = obs.ladder.levels - 1
        if fraction < 1.0 / 3.0:
            return 0
        if fraction < 2.0 / 3.0:
            return top // 2
        return top


def main() -> None:
    profile = live_profile(session_seconds=300.0, cellular=True)
    traces = fourg_like().dataset(6, duration=300.0, seed=21)

    factories = {
        "soda": lambda: SodaController(),
        "buffer-thirds": lambda: BufferThirdsController(),
    }
    summaries = {}
    for name, factory in factories.items():
        metrics = run_dataset(factory, traces, profile.ladder, profile.player)
        summaries[name] = summarize(metrics)

    print("custom controller vs SODA on 4G-like live streams")
    print(qoe_table(summaries))
    print(
        "\nTo go further: give your controller a predictor (see "
        "repro.prediction), tune it per profile, and drop it into "
        "repro.analysis.run_suite next to the full baseline set."
    )


if __name__ == "__main__":
    main()
