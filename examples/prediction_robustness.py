#!/usr/bin/env python3
"""Prediction-error robustness: SODA under a noisy oracle (Figure 11).

Replaces SODA's predictor with a perfect short-term oracle and injects
increasing white noise, then does the same for RobustMPC.  BOLA is included
as the noise-immune reference (it never looks at predictions).

Usage:
    python examples/prediction_robustness.py
"""

from repro import (
    BolaController,
    NoisyOraclePredictor,
    RobustMpcController,
    SodaController,
    live_profile,
    run_dataset,
)
from repro.analysis import format_series
from repro.qoe import summarize
from repro.traces import puffer_like

NOISE_LEVELS = [0.0, 0.15, 0.3, 0.5, 0.75]


def main() -> None:
    profile = live_profile(session_seconds=300.0)
    traces = puffer_like().dataset(5, duration=300.0, seed=9)

    series = {"soda": [], "robustmpc": [], "bola": []}
    for noise in NOISE_LEVELS:
        factories = {
            "soda": lambda: SodaController(
                predictor=NoisyOraclePredictor(noise, seed=1)
            ),
            "robustmpc": lambda: RobustMpcController(
                predictor=NoisyOraclePredictor(noise, seed=2)
            ),
            "bola": lambda: BolaController(),
        }
        for name, factory in factories.items():
            metrics = run_dataset(
                factory, traces, profile.ladder, profile.player
            )
            series[name].append(summarize(metrics).qoe.mean)

    print("mean QoE vs prediction noise (perfect oracle + white noise)")
    print(format_series("noise", NOISE_LEVELS, series))
    print(
        "\nNote: ~30% noise matches the empirical accuracy of the dash.js "
        "EMA predictor (§6.1.4); SODA's QoE loss up to that point should be "
        "small, and BOLA's curve is flat because it is purely buffer-based."
    )


if __name__ == "__main__":
    main()
