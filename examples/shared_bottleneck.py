#!/usr/bin/env python3
"""Several players competing for one bottleneck link.

Runs homogeneous groups of four clients per controller on the same shared
link and reports QoE, fairness, and switching under competition — a classic
ABR stress test that the single-player simulator cannot express.

Usage:
    python examples/shared_bottleneck.py
"""

import numpy as np

from repro import BolaController, DynamicController, HybController, SodaController
from repro.analysis import format_table
from repro.qoe import qoe_from_session
from repro.sim import PlayerConfig, ThroughputTrace, simulate_shared_link
from repro.sim.video import youtube_hd_ladder

N_CLIENTS = 4


def main() -> None:
    ladder = youtube_hd_ladder()
    # A 26 Mb/s link shared by four players: fair share 6.5 Mb/s sits
    # between the 4 and 7.5 Mb/s rungs — maximum switching pressure.
    link = ThroughputTrace.constant(26.0, 3600.0)
    config = PlayerConfig(max_buffer=20.0, num_segments=90, live_delay=20.0)

    rows = []
    for name, cls in (
        ("soda", SodaController),
        ("hyb", HybController),
        ("bola", BolaController),
        ("dynamic", DynamicController),
    ):
        outcome = simulate_shared_link(
            [cls() for _ in range(N_CLIENTS)], link, ladder, config
        )
        metrics = [qoe_from_session(r) for r in outcome.results]
        rows.append(
            [
                f"{name} ×{N_CLIENTS}",
                f"{np.mean([m.qoe for m in metrics]):.3f}",
                f"{np.mean([m.switching_rate for m in metrics]):.3f}",
                f"{outcome.fairness_index():.3f}",
                f"{np.mean(outcome.mean_bitrates()):.2f} Mb/s",
            ]
        )

    print(f"four clients sharing a 26 Mb/s link (fair share 6.5 Mb/s)")
    print(
        format_table(
            ["clients", "mean qoe", "mean switch rate", "jain fairness",
             "mean bitrate"],
            rows,
        )
    )
    print(
        "\nThe fair share lands between two rungs, so every client must "
        "oscillate or settle low; SODA's switching cost keeps the group "
        "calm where throughput- and buffer-rule controllers thrash."
    )


if __name__ == "__main__":
    main()
