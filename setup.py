"""Setuptools shim for environments without the `wheel` package.

Editable installs (PEP 660) need setuptools' wheel support; this offline
environment ships setuptools 65 without `wheel`, so pip falls back to the
legacy `setup.py develop` path through this file.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
