"""CS2P-style Markov throughput predictor.

CS2P [20] observed that session throughput moves between a small number of
discrete states and fitted hidden-Markov models per session cluster.  This
predictor is the online, single-session variant of that idea: it quantises
observed throughput into log-spaced states, learns the state-transition
counts on the fly, and predicts by propagating the state distribution
forward — so, unlike the constant-output predictors, it produces genuinely
*per-interval* forecasts over the horizon.

The paper's position (§6.1.4) is that SODA does not need such machinery;
this class exists so that claim can be tested: wire it into any controller
and compare against the simple predictors.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import ThroughputPredictor, ThroughputSample

__all__ = ["MarkovPredictor"]


class MarkovPredictor(ThroughputPredictor):
    """Online Markov-chain throughput predictor with log-spaced states.

    Args:
        states: number of throughput states.
        low: lower edge of the state range, Mb/s.
        high: upper edge of the state range, Mb/s.
        smoothing: Laplace smoothing added to transition counts.

    Raises:
        ValueError: on degenerate state counts or ranges.
    """

    name = "markov"

    def __init__(
        self,
        states: int = 12,
        low: float = 0.1,
        high: float = 120.0,
        smoothing: float = 0.5,
    ) -> None:
        if states < 2:
            raise ValueError("need at least two states")
        if not 0 < low < high:
            raise ValueError("need 0 < low < high")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.states = states
        self.low = low
        self.high = high
        self.smoothing = smoothing
        # State centres (geometric) and edges.
        self._edges = np.geomspace(low, high, states + 1)
        self._centres = np.sqrt(self._edges[:-1] * self._edges[1:])
        self.reset()

    def reset(self) -> None:
        self._counts = np.full(
            (self.states, self.states), self.smoothing, dtype=float
        )
        self._state: Optional[int] = None

    # ------------------------------------------------------------------
    def _quantise(self, throughput: float) -> int:
        clipped = min(max(throughput, self.low), self.high * (1 - 1e-12))
        return int(np.searchsorted(self._edges, clipped, side="right") - 1)

    def update(self, sample: ThroughputSample) -> None:
        state = self._quantise(sample.throughput)
        if self._state is not None:
            self._counts[self._state, state] += 1.0
        self._state = state

    @property
    def transition_matrix(self) -> np.ndarray:
        """Row-normalised transition probabilities (learned so far)."""
        return self._counts / self._counts.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def predict_scalar(self, now: float) -> float:
        if self._state is None:
            return 0.0
        row = self.transition_matrix[self._state]
        return float(np.dot(row, self._centres))

    def predict(self, now: float, horizon: int, dt: float) -> np.ndarray:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if self._state is None:
            return np.zeros(horizon)
        matrix = self.transition_matrix
        belief = np.zeros(self.states)
        belief[self._state] = 1.0
        forecast = np.empty(horizon)
        for k in range(horizon):
            belief = belief @ matrix
            forecast[k] = float(np.dot(belief, self._centres))
        return forecast
