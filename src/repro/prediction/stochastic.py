"""Stochastic throughput predictor: mean + uncertainty estimate.

Fugu [46] couples an MPC-style controller with a *learned probabilistic*
transmission-time predictor.  We cannot retrain Fugu's DNN here, so the
Fugu-like controller in this package uses this empirical substitute: a
sliding window that reports both the mean and the standard deviation of
recent throughput, from which the controller derives download-time quantiles.
The substitution keeps the property the paper credits to Fugu — decisions
that hedge against throughput uncertainty — while remaining trainable-free.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from .base import ThroughputPredictor, ThroughputSample

__all__ = ["ThroughputDistribution", "StochasticPredictor"]


@dataclass(frozen=True)
class ThroughputDistribution:
    """A Gaussian throughput belief in Mb/s."""

    mean: float
    std: float

    def quantile(self, q: float) -> float:
        """Approximate Gaussian quantile, clamped to be non-negative.

        Uses the Acklam/Peter John rational approximation of the probit
        function — accurate to ~1e-9, no scipy dependency.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        return max(self.mean + self.std * _probit(q), 0.0)


class StochasticPredictor(ThroughputPredictor):
    """Sliding-window empirical mean/std of measured throughput.

    Args:
        window: number of recent downloads retained.
        min_std_fraction: lower bound on the reported std as a fraction of
            the mean, so a lucky run of identical samples does not collapse
            the belief to a point mass.
    """

    name = "stochastic"

    def __init__(self, window: int = 8, min_std_fraction: float = 0.05) -> None:
        if window < 2:
            raise ValueError("window must be at least 2")
        if min_std_fraction < 0:
            raise ValueError("min_std_fraction must be non-negative")
        self.window = window
        self.min_std_fraction = min_std_fraction
        self._samples: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def update(self, sample: ThroughputSample) -> None:
        self._samples.append(sample.throughput)

    def predict_scalar(self, now: float) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def predict_distribution(self, now: float) -> ThroughputDistribution:
        """Current Gaussian belief; degenerate (0, 0) with no history."""
        n = len(self._samples)
        if n == 0:
            return ThroughputDistribution(0.0, 0.0)
        mean = sum(self._samples) / n
        if n == 1:
            return ThroughputDistribution(mean, self.min_std_fraction * mean)
        var = sum((s - mean) ** 2 for s in self._samples) / (n - 1)
        std = max(math.sqrt(var), self.min_std_fraction * mean)
        return ThroughputDistribution(mean, std)


def _probit(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
        1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
        6.680131188771972e01, -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
        -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (
            ((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]
        ) / ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - p_low:
        return -_probit(1.0 - q)
    u = q - 0.5
    r = u * u
    return (
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
        * u
        / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    )
