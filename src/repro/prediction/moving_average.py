"""Moving-average and sliding-window throughput predictors.

The moving-average predictor is the second predictor shipped with dash.js
that the paper profiles in Figure 7; the sliding-window predictor is the
"simple sliding window-based throughput predictor" used in the production
deployment (§6.3).  The harmonic-mean predictor is what MPC [17] uses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .base import ThroughputPredictor, ThroughputSample

__all__ = [
    "MovingAveragePredictor",
    "SlidingWindowPredictor",
    "HarmonicMeanPredictor",
]


class MovingAveragePredictor(ThroughputPredictor):
    """Arithmetic mean of the last ``window`` download throughputs."""

    name = "moving-average"

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def update(self, sample: ThroughputSample) -> None:
        self._samples.append(sample.throughput)

    def predict_scalar(self, now: float) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)


class SlidingWindowPredictor(ThroughputPredictor):
    """Duration-weighted mean over a sliding wall-clock window.

    Downloads whose transfer finished within the last ``window_seconds`` are
    averaged, each weighted by its transfer duration.  This matches the
    simple sliding-window predictor SODA used on all three production device
    families (§6.3).
    """

    name = "sliding-window"

    def __init__(self, window_seconds: float = 10.0) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        self.window_seconds = window_seconds
        self._samples: Deque[ThroughputSample] = deque()

    def reset(self) -> None:
        self._samples.clear()

    def update(self, sample: ThroughputSample) -> None:
        self._samples.append(sample)
        self._evict(sample.end)

    def predict_scalar(self, now: float) -> float:
        self._evict(now)
        if not self._samples:
            return 0.0
        total_bits = sum(s.size for s in self._samples)
        total_time = sum(s.duration for s in self._samples)
        if total_time <= 0:
            return 0.0
        return total_bits / total_time

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._samples and self._samples[0].end < cutoff:
            self._samples.popleft()


class HarmonicMeanPredictor(ThroughputPredictor):
    """Harmonic mean of the last ``window`` throughputs (MPC's choice [17]).

    The harmonic mean is dominated by the slowest recent download, making it
    robust to throughput spikes.  ``RobustMPC`` additionally discounts this
    estimate by the recent maximum relative error; that discounting lives in
    the controller (``repro.abr.mpc``), not here, so the predictor can also
    be used undiscounted.
    """

    name = "harmonic-mean"

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def update(self, sample: ThroughputSample) -> None:
        if sample.throughput > 0:
            self._samples.append(sample.throughput)

    def predict_scalar(self, now: float) -> float:
        if not self._samples:
            return 0.0
        return len(self._samples) / sum(1.0 / s for s in self._samples)
