"""Throughput predictors (paper §3.2, §5.2, Figure 7, Figure 11)."""

from .base import ThroughputPredictor, ThroughputSample
from .ema import EmaPredictor
from .markov import MarkovPredictor
from .moving_average import (
    HarmonicMeanPredictor,
    MovingAveragePredictor,
    SlidingWindowPredictor,
)
from .oracle import NoisyOraclePredictor, OraclePredictor
from .stochastic import StochasticPredictor, ThroughputDistribution

__all__ = [
    "ThroughputPredictor",
    "ThroughputSample",
    "EmaPredictor",
    "MarkovPredictor",
    "MovingAveragePredictor",
    "SlidingWindowPredictor",
    "HarmonicMeanPredictor",
    "OraclePredictor",
    "NoisyOraclePredictor",
    "StochasticPredictor",
    "ThroughputDistribution",
]
