"""Oracle predictors: perfect and noise-corrupted short-term foresight.

The paper's intrinsic-sensitivity experiment (§6.1.4, Figure 11) replaces the
real predictor with a *perfect short-term throughput predictor* and then
injects increasing amounts of white noise into its output.  These predictors
read the ground-truth trace, so the simulator attaches the trace before the
session starts (see :func:`repro.sim.session.run_session`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.network import ThroughputTrace
from .base import ThroughputPredictor, ThroughputSample

__all__ = ["OraclePredictor", "NoisyOraclePredictor"]


class OraclePredictor(ThroughputPredictor):
    """Perfect short-term predictor: reads future throughput off the trace.

    ``predict(now, K, dt)`` returns the true time-averaged throughput of each
    of the next K intervals of ``dt`` seconds — the exact-predictions regime
    of Theorem 4.1.
    """

    name = "oracle"

    def __init__(self, trace: Optional[ThroughputTrace] = None) -> None:
        self.trace = trace

    def attach_trace(self, trace: ThroughputTrace) -> None:
        """Point the oracle at the session's ground-truth trace."""
        self.trace = trace

    def _require_trace(self) -> ThroughputTrace:
        if self.trace is None:
            raise RuntimeError("oracle predictor has no trace attached")
        return self.trace

    def predict_scalar(self, now: float) -> float:
        trace = self._require_trace()
        return trace.average_throughput(now, now + 1.0)

    def predict(self, now: float, horizon: int, dt: float) -> np.ndarray:
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        if dt <= 0:
            raise ValueError("dt must be positive")
        trace = self._require_trace()
        return np.array(
            [
                trace.average_throughput(now + k * dt, now + (k + 1) * dt)
                for k in range(horizon)
            ]
        )


class NoisyOraclePredictor(OraclePredictor):
    """Perfect predictions corrupted by multiplicative white noise.

    Each predicted value ω is replaced by ``ω * (1 + ε)`` with
    ``ε ~ N(0, noise_level²)``, truncated so the result stays non-negative.
    ``noise_level = 0.3`` corresponds to the paper's empirical EMA reference
    point (§6.1.4).

    Args:
        noise_level: standard deviation of the relative error.
        seed: RNG seed; per-session reproducibility comes from calling
            :meth:`reset` (which reseeds) at session start.
    """

    name = "noisy-oracle"

    def __init__(
        self,
        noise_level: float,
        trace: Optional[ThroughputTrace] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(trace)
        if noise_level < 0:
            raise ValueError("noise level must be non-negative")
        self.noise_level = noise_level
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"noisy-oracle({noise_level:.0%})"

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _corrupt(self, values: np.ndarray) -> np.ndarray:
        if self.noise_level == 0:
            return values
        noise = self._rng.normal(0.0, self.noise_level, size=values.shape)
        return np.maximum(values * (1.0 + noise), 0.0)

    def predict_scalar(self, now: float) -> float:
        clean = np.array([super().predict_scalar(now)])
        return float(self._corrupt(clean)[0])

    def predict(self, now: float, horizon: int, dt: float) -> np.ndarray:
        clean = super().predict(now, horizon, dt)
        return self._corrupt(clean)
