"""Exponential-moving-average throughput predictor.

The dash.js reference player estimates throughput with two EMAs of different
half-lives (a fast one and a slow one) and takes the more conservative of the
two; this is the "EMA predictor" the paper uses as the default in its
numerical simulations (§6.1.1, Figure 7).
"""

from __future__ import annotations

import math
from typing import Optional

from .base import ThroughputPredictor, ThroughputSample

__all__ = ["EmaPredictor"]


class EmaPredictor(ThroughputPredictor):
    """dash.js-style dual-half-life EMA over measured download throughput.

    Each completed download contributes its measured throughput, weighted by
    its transfer duration (longer downloads carry more evidence).  Two EMAs
    with different half-lives are maintained; the estimate is the minimum of
    the two, which makes the predictor react quickly to drops but slowly to
    recoveries — the conservative behaviour of dash.js.

    Args:
        fast_half_life: half-life of the fast EMA in seconds.
        slow_half_life: half-life of the slow EMA in seconds.
        wall_clock: when True, samples are weighted by the wall-clock time
            they span (inter-arrival interval) instead of the transfer
            duration alone.  dash.js weights by transfer duration, which
            adapts very slowly when downloads are short (a fast network
            produces little "EMA time" per segment); wall-clock weighting
            bounds the adaptation time in real seconds.
    """

    name = "ema"

    def __init__(
        self,
        fast_half_life: float = 3.0,
        slow_half_life: float = 8.0,
        wall_clock: bool = False,
    ) -> None:
        if fast_half_life <= 0 or slow_half_life <= 0:
            raise ValueError("half-lives must be positive")
        if fast_half_life > slow_half_life:
            raise ValueError("fast half-life must not exceed the slow one")
        self.fast_half_life = fast_half_life
        self.slow_half_life = slow_half_life
        self.wall_clock = wall_clock
        self.reset()

    def reset(self) -> None:
        self._fast = 0.0
        self._slow = 0.0
        # Total decayed weight per EMA, for bias correction during warm-up.
        self._fast_weight = 0.0
        self._slow_weight = 0.0
        self._last_end = None

    def update(self, sample: ThroughputSample) -> None:
        duration = max(sample.duration, 1e-6)
        if self.wall_clock and self._last_end is not None:
            duration = max(duration, sample.end - self._last_end)
        self._last_end = sample.end
        for attr, half_life in (
            ("_fast", self.fast_half_life),
            ("_slow", self.slow_half_life),
        ):
            alpha = 0.5 ** (duration / half_life)
            value = getattr(self, attr)
            weight = getattr(self, attr + "_weight")
            setattr(self, attr, alpha * value + (1 - alpha) * sample.throughput)
            setattr(self, attr + "_weight", alpha * weight + (1 - alpha))

    def predict_scalar(self, now: float) -> float:
        if self._fast_weight <= 0 or self._slow_weight <= 0:
            return 0.0
        fast = self._fast / self._fast_weight
        slow = self._slow / self._slow_weight
        return min(fast, slow)
