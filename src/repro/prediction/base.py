"""Throughput predictor interface.

Every ABR controller in this package that uses throughput predictions
receives them through a :class:`ThroughputPredictor`.  Predictors are fed one
:class:`ThroughputSample` per completed segment download and asked for a
piecewise-constant forecast of the next ``horizon`` intervals of ``dt``
seconds each — exactly the prediction model of the paper's §3.2.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["ThroughputSample", "ThroughputPredictor"]


@dataclass(frozen=True)
class ThroughputSample:
    """One completed download, as observed by the player.

    Attributes:
        start: wall-clock time the download began, seconds.
        duration: how long the transfer took, seconds.
        size: payload size in megabits.
        throughput: measured throughput ``size / duration`` in Mb/s.
    """

    start: float
    duration: float
    size: float
    throughput: float

    @staticmethod
    def from_download(start: float, duration: float, size: float) -> "ThroughputSample":
        """Build a sample, deriving throughput from size and duration."""
        if duration <= 0:
            raise ValueError("download duration must be positive")
        return ThroughputSample(
            start=start, duration=duration, size=size, throughput=size / duration
        )

    @property
    def end(self) -> float:
        """Wall-clock time the download finished."""
        return self.start + self.duration


class ThroughputPredictor(abc.ABC):
    """Predicts average throughput for the next ``horizon`` time intervals.

    Subclasses implement :meth:`predict_scalar`; the default :meth:`predict`
    repeats that scalar across the horizon (a constant throughput function,
    which §3.2 notes is what typical predictors output).  Predictors that can
    produce a different value per future interval override :meth:`predict`.
    """

    #: human-readable name used in result tables
    name: str = "predictor"

    def reset(self) -> None:
        """Forget all history (start of a new session)."""

    def update(self, sample: ThroughputSample) -> None:
        """Ingest one completed download."""

    @abc.abstractmethod
    def predict_scalar(self, now: float) -> float:
        """Single throughput estimate (Mb/s) for the immediate future.

        Args:
            now: current wall-clock time, seconds.  Most predictors ignore
                this; oracle predictors use it to index the trace.

        Returns:
            Estimated throughput in Mb/s.  Implementations must return a
            non-negative value and may return 0 before any history exists.
        """

    def predict(self, now: float, horizon: int, dt: float) -> np.ndarray:
        """Per-interval forecast ω̂ for the next ``horizon`` intervals.

        Args:
            now: current wall-clock time.
            horizon: number of future intervals (K).
            dt: interval length in seconds (Δt).

        Returns:
            Array of ``horizon`` non-negative throughputs in Mb/s.
        """
        if horizon < 1:
            raise ValueError("horizon must be at least 1")
        if dt <= 0:
            raise ValueError("dt must be positive")
        return np.full(horizon, max(self.predict_scalar(now), 0.0))
