"""Network model: piecewise-constant throughput traces.

A :class:`ThroughputTrace` describes the downlink capacity available to the
video player as a piecewise-constant function of wall-clock time, which is
the representation used by Sabre, Mahimahi-derived datasets, and the Puffer
trace dumps the paper builds on.

All throughputs are in megabits per second (Mb/s), sizes in megabits (Mb),
and times in seconds.  Traces loop: a session longer than the trace wraps
around to the beginning, matching Sabre's behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["ThroughputTrace", "TraceStats"]

_EPS = 1e-12


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (time-weighted).

    Attributes:
        mean: time-weighted mean throughput in Mb/s.
        std: time-weighted standard deviation in Mb/s.
        rsd: relative standard deviation ``std / mean`` (0 when mean is 0).
        minimum: smallest throughput value in the trace.
        maximum: largest throughput value in the trace.
        duration: total trace duration in seconds.
    """

    mean: float
    std: float
    rsd: float
    minimum: float
    maximum: float
    duration: float


class ThroughputTrace:
    """A piecewise-constant throughput function of time.

    Args:
        durations: length of each constant-throughput interval, seconds.
        bandwidths: throughput during each interval, Mb/s.
        name: optional human-readable label (e.g. source file name).

    Raises:
        ValueError: if the inputs are empty, have mismatched lengths, or
            contain non-positive durations / negative bandwidths.
    """

    def __init__(
        self,
        durations: Sequence[float],
        bandwidths: Sequence[float],
        name: str = "",
    ) -> None:
        durations = np.asarray(durations, dtype=float)
        bandwidths = np.asarray(bandwidths, dtype=float)
        if durations.ndim != 1 or bandwidths.ndim != 1:
            raise ValueError("durations and bandwidths must be 1-D sequences")
        if len(durations) == 0:
            raise ValueError("a trace needs at least one interval")
        if len(durations) != len(bandwidths):
            raise ValueError(
                f"length mismatch: {len(durations)} durations vs "
                f"{len(bandwidths)} bandwidths"
            )
        if np.any(durations <= 0):
            raise ValueError("all interval durations must be positive")
        if np.any(bandwidths < 0):
            raise ValueError("bandwidths must be non-negative")

        self.name = name
        self._durations = durations
        self._bandwidths = bandwidths
        # Interval boundaries: t_0 = 0 < t_1 < ... < t_n = duration.
        self._boundaries = np.concatenate(([0.0], np.cumsum(durations)))
        # Megabits deliverable from time 0 up to each boundary.
        self._cum_bits = np.concatenate(
            ([0.0], np.cumsum(durations * bandwidths))
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def durations(self) -> np.ndarray:
        """Interval durations (read-only view), seconds."""
        return self._durations

    @property
    def bandwidths(self) -> np.ndarray:
        """Interval throughputs (read-only view), Mb/s."""
        return self._bandwidths

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return float(self._boundaries[-1])

    @property
    def total_bits(self) -> float:
        """Megabits deliverable over one full pass of the trace."""
        return float(self._cum_bits[-1])

    def __len__(self) -> int:
        return len(self._durations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ThroughputTrace{label} n={len(self)} dur={stats.duration:.1f}s "
            f"mean={stats.mean:.2f}Mb/s rsd={stats.rsd:.2f}>"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def bandwidth_at(self, t: float) -> float:
        """Instantaneous throughput at wall time ``t`` (trace loops)."""
        t = self._wrap(t)
        idx = int(np.searchsorted(self._boundaries, t, side="right")) - 1
        idx = min(max(idx, 0), len(self._durations) - 1)
        return float(self._bandwidths[idx])

    def bits_between(self, start: float, end: float) -> float:
        """Megabits deliverable in the wall-clock window [start, end]."""
        if end < start:
            raise ValueError("end must not precede start")
        return self._cum_bits_at(end) - self._cum_bits_at(start)

    def average_throughput(self, start: float, end: float) -> float:
        """Time-averaged throughput over [start, end] in Mb/s."""
        if end <= start:
            return self.bandwidth_at(start)
        return self.bits_between(start, end) / (end - start)

    def download_time(self, size_mbits: float, start: float) -> float:
        """Seconds needed to transfer ``size_mbits`` starting at ``start``.

        Returns ``math.inf`` when the trace cannot ever deliver the payload
        (all-zero throughput).
        """
        if size_mbits < 0:
            raise ValueError("size must be non-negative")
        if size_mbits == 0:
            return 0.0
        if self.total_bits <= _EPS:
            return math.inf

        # Whole trace loops first.
        loops = 0.0
        remaining = size_mbits
        if remaining > self.total_bits:
            n_loops = math.floor(remaining / self.total_bits)
            # Guard against the payload landing exactly on a loop boundary.
            if remaining - n_loops * self.total_bits <= _EPS and n_loops > 0:
                n_loops -= 1
            loops = n_loops * self.duration
            remaining -= n_loops * self.total_bits

        offset = self._wrap(start)
        base_bits = self._cum_bits_at_offset(offset)
        target = base_bits + remaining
        if target > self.total_bits + _EPS:
            # Wraps past the end of the trace: finish the pass, then recurse
            # from the beginning.
            first_leg = self.duration - offset
            leftover = target - self.total_bits
            return loops + first_leg + self._time_for_bits_from_zero(leftover)
        return loops + self._time_for_bits_from_zero(target) - offset

    def stats(self) -> TraceStats:
        """Time-weighted summary statistics."""
        weights = self._durations / self.duration
        mean = float(np.sum(weights * self._bandwidths))
        var = float(np.sum(weights * (self._bandwidths - mean) ** 2))
        std = math.sqrt(max(var, 0.0))
        rsd = std / mean if mean > _EPS else 0.0
        return TraceStats(
            mean=mean,
            std=std,
            rsd=rsd,
            minimum=float(np.min(self._bandwidths)),
            maximum=float(np.max(self._bandwidths)),
            duration=self.duration,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "ThroughputTrace":
        """A copy with every bandwidth multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return ThroughputTrace(
            self._durations.copy(),
            self._bandwidths * factor,
            name=self.name,
        )

    def slice(self, start: float, end: float) -> "ThroughputTrace":
        """Extract the sub-trace covering wall time [start, end).

        ``start``/``end`` may exceed the trace duration; the trace loops.
        """
        if end <= start:
            raise ValueError("slice needs end > start")
        durations: List[float] = []
        bandwidths: List[float] = []
        t = start
        while t < end - _EPS:
            offset = self._wrap(t)
            idx = int(np.searchsorted(self._boundaries, offset, side="right")) - 1
            idx = min(max(idx, 0), len(self._durations) - 1)
            seg_end = self._boundaries[idx + 1]
            step = min(seg_end - offset, end - t)
            if step <= _EPS:
                step = min(self._durations[idx], end - t)
            durations.append(step)
            bandwidths.append(float(self._bandwidths[idx]))
            t += step
        return ThroughputTrace(durations, bandwidths, name=self.name)

    def split(self, chunk_seconds: float) -> List["ThroughputTrace"]:
        """Split one pass of the trace into consecutive fixed-length chunks.

        Trailing material shorter than ``chunk_seconds`` is dropped — this is
        the session-splitting rule from the paper's §6.1.1.
        """
        if chunk_seconds <= 0:
            raise ValueError("chunk length must be positive")
        n_chunks = int(self.duration // chunk_seconds)
        return [
            self.slice(i * chunk_seconds, (i + 1) * chunk_seconds)
            for i in range(n_chunks)
        ]

    def sampled(self, dt: float) -> np.ndarray:
        """Bandwidth averaged over consecutive ``dt``-second bins (one pass)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        n = max(int(round(self.duration / dt)), 1)
        return np.array(
            [self.average_throughput(i * dt, (i + 1) * dt) for i in range(n)]
        )

    @staticmethod
    def constant(
        bandwidth: float, duration: float, name: str = "constant"
    ) -> "ThroughputTrace":
        """A trace with fixed throughput for ``duration`` seconds."""
        return ThroughputTrace([duration], [bandwidth], name=name)

    @staticmethod
    def from_samples(
        bandwidths: Iterable[float], dt: float, name: str = ""
    ) -> "ThroughputTrace":
        """Build a trace from equally spaced bandwidth samples."""
        bandwidths = list(bandwidths)
        return ThroughputTrace([dt] * len(bandwidths), bandwidths, name=name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wrap(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        wrapped = math.fmod(t, self.duration)
        return wrapped

    def _cum_bits_at_offset(self, offset: float) -> float:
        """Megabits deliverable from 0 to ``offset`` (offset < duration)."""
        idx = int(np.searchsorted(self._boundaries, offset, side="right")) - 1
        idx = min(max(idx, 0), len(self._durations) - 1)
        partial = (offset - self._boundaries[idx]) * self._bandwidths[idx]
        return float(self._cum_bits[idx] + partial)

    def _cum_bits_at(self, t: float) -> float:
        """Megabits deliverable from 0 to ``t`` (with looping)."""
        loops = math.floor(t / self.duration) if self.duration > 0 else 0
        offset = t - loops * self.duration
        return loops * self.total_bits + self._cum_bits_at_offset(offset)

    def _time_for_bits_from_zero(self, bits: float) -> float:
        """Seconds from trace start to deliver ``bits`` (bits ≤ total)."""
        idx = int(np.searchsorted(self._cum_bits, bits, side="left")) - 1
        idx = min(max(idx, 0), len(self._durations) - 1)
        # Skip zero-bandwidth intervals at the boundary.
        while idx < len(self._durations) and (
            self._bandwidths[idx] <= _EPS
            and bits > self._cum_bits[idx] + _EPS
        ):
            idx += 1
        if idx >= len(self._durations):
            return self.duration
        remaining = bits - self._cum_bits[idx]
        if self._bandwidths[idx] <= _EPS:
            return float(self._boundaries[idx])
        return float(self._boundaries[idx] + remaining / self._bandwidths[idx])
