"""Multi-client simulation: several players sharing one bottleneck link.

The paper evaluates one player per network trace; a long-standing ABR
question is how controllers behave when several players *compete* for a
bottleneck (fairness, oscillation amplification).  This module adds that
substrate: N players share a link whose capacity follows a trace, active
downloads get an equal (TCP-fair approximation) share, and each player runs
the same decision protocol as :func:`repro.sim.player.simulate_session`.

The simulation advances in small fixed ticks (default 50 ms), which keeps
the share accounting simple and is accurate to well under a segment
duration.  Download abandonment is not modelled here (it would entangle the
share accounting); sessions are on-demand or live exactly as in the
single-player case.

Example::

    clients = [SodaController() for _ in range(4)]
    outcome = simulate_shared_link(clients, trace, ladder, config)
    print(outcome.fairness_index(), [r.switch_count for r in outcome.results])
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..faults.plan import DownloadFaultHook
from ..prediction.base import ThroughputSample
from .network import ThroughputTrace
from .player import LivelockError, PlayerConfig, PlayerObservation, SessionResult
from .video import BitrateLadder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from ..abr.base import AbrController

__all__ = ["SharedLinkOutcome", "simulate_shared_link", "jain_fairness"]

#: simulation tick in seconds
_TICK = 0.05
#: consecutive deferral cap per segment, mirroring the single-player guard
_MAX_IDLE_TICKS = 200_000


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 means perfectly fair.

    The index is formally undefined when every allocation is zero (0/0).
    A nonempty all-zero allocation means *nobody* received anything —
    reporting it as perfectly fair would hide a dead link behind the best
    possible score — so this implementation defines it as 0.0.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("fairness of an empty set is undefined")
    denom = x.size * float(np.sum(x * x))
    if denom <= 0:
        return 0.0
    return float(np.sum(x)) ** 2 / denom


@dataclass
class SharedLinkOutcome:
    """Results of a shared-link simulation.

    Attributes:
        results: one :class:`SessionResult` per client.
        link_capacity_mean: time-averaged link capacity, Mb/s.
        delivered_megabits: total payload delivered to all clients.
        duration: wall-clock length of the simulation.
    """

    results: List[SessionResult] = field(default_factory=list)
    link_capacity_mean: float = 0.0
    delivered_megabits: float = 0.0
    duration: float = 0.0

    def mean_bitrates(self) -> List[float]:
        """Per-client mean video bitrate, Mb/s."""
        return [
            float(np.mean(r.bitrates)) if r.num_segments else 0.0
            for r in self.results
        ]

    def fairness_index(self) -> float:
        """Jain's index over per-client mean bitrates."""
        return jain_fairness(self.mean_bitrates())

    def link_utilisation(self) -> float:
        """Delivered megabits over the link's total capacity-time."""
        total = self.link_capacity_mean * self.duration
        if total <= 0:
            return 0.0
        return min(self.delivered_megabits / total, 1.0)


class _Client:
    """Per-player state machine (mirrors simulate_session's phases)."""

    __slots__ = (
        "controller", "result", "segment_index", "buffer", "playing",
        "rebuffering", "history", "prev_quality", "pending_size",
        "pending_received", "pending_start", "pending_quality",
        "idle_ticks", "done", "wall_time", "faults", "attempt",
        "retry_at", "pending_dead", "pending_corrupt",
    )

    def __init__(
        self,
        controller: "AbrController",
        ladder: BitrateLadder,
        faults: Optional[DownloadFaultHook] = None,
    ):
        controller.reset()
        if faults is not None:
            reset = getattr(faults, "reset", None)
            if callable(reset):
                reset()
        self.controller = controller
        self.result = SessionResult(controller=controller.name, ladder=ladder)
        self.segment_index = 0
        self.buffer = 0.0
        self.playing = False
        self.rebuffering = False
        self.history: List[ThroughputSample] = []
        self.prev_quality: Optional[int] = None
        self.pending_size: Optional[float] = None
        self.pending_received = 0.0
        self.pending_start = 0.0
        self.pending_quality = 0
        self.idle_ticks = 0
        self.done = False
        self.wall_time = 0.0
        self.faults = faults
        self.attempt = 0
        self.retry_at = 0.0
        self.pending_dead = 0.0
        self.pending_corrupt: Optional[float] = None

    @property
    def downloading(self) -> bool:
        return self.pending_size is not None


def simulate_shared_link(
    controllers: Sequence["AbrController"],
    link: ThroughputTrace,
    ladder: BitrateLadder,
    config: Optional[PlayerConfig] = None,
    tick: float = _TICK,
    faults: Optional[Sequence[Optional[DownloadFaultHook]]] = None,
) -> SharedLinkOutcome:
    """Simulate N players sharing one bottleneck link.

    Args:
        controllers: one controller per client (distinct instances!).
        link: total link capacity over time, Mb/s (loops).
        ladder: encoding ladder shared by all clients.
        config: player parameters (``abandonment`` is ignored here).
        tick: simulation step, seconds.
        faults: optional per-client download-fault hooks (``None`` entries
            leave that client fault-free); failed attempts retry with
            backoff and downshift, latency/stall faults hold the connection
            without delivering payload, and corrupted samples reach only
            the controller.

    Returns:
        A :class:`SharedLinkOutcome` with per-client session results.

    Raises:
        ValueError: with no clients, a non-positive tick, or a faults
            sequence whose length does not match the client count.
        LivelockError: if a controller defers indefinitely.
    """
    if not controllers:
        raise ValueError("need at least one client")
    if len({id(c) for c in controllers}) != len(controllers):
        raise ValueError("controllers must be distinct instances")
    if tick <= 0:
        raise ValueError("tick must be positive")
    if faults is not None and len(faults) != len(controllers):
        raise ValueError("need one fault hook (or None) per client")
    cfg = config or PlayerConfig()
    seg_len = ladder.segment_duration

    clients = [
        _Client(c, ladder, faults[i] if faults is not None else None)
        for i, c in enumerate(controllers)
    ]
    t = 0.0
    delivered = 0.0
    max_time = cfg.num_segments * seg_len * 50 + 300.0  # hard stop

    while not all(c.done for c in clients):
        if t > max_time:
            stuck = max(clients, key=lambda c: c.idle_ticks)
            if stuck.idle_ticks * tick > 0.5 * max_time:
                raise LivelockError(
                    stuck.controller.name, stuck.segment_index,
                    stuck.idle_ticks,
                )
            raise RuntimeError("shared-link simulation exceeded its time cap")
        # 1) Ask idle clients for their next action.
        for client in clients:
            if client.done or client.downloading:
                continue
            _maybe_start_download(client, cfg, ladder, t, seg_len)

        # 2) Split capacity among active downloads and advance one tick.
        # Clients inside a fault-injected latency spike or stall hold their
        # connection open but deliver nothing, so they don't take a share.
        transferring = []
        for client in clients:
            if not client.downloading:
                continue
            if client.pending_dead > 0.0:
                client.pending_dead = max(client.pending_dead - tick, 0.0)
            else:
                transferring.append(client)
        capacity_bits = link.bits_between(t, t + tick)
        share = capacity_bits / len(transferring) if transferring else 0.0
        for client in transferring:
            client.pending_received += share
            delivered += share

        # 3) Advance playback, time out stuck attempts, finish downloads.
        for client in clients:
            if client.done:
                continue
            _advance_playback(client, tick, cfg)
            client.wall_time = t + tick
            if (
                client.downloading
                and cfg.download_timeout is not None
                and client.attempt < cfg.max_retries
                and t + tick - client.pending_start > cfg.download_timeout
            ):
                _abort_attempt(client, t + tick, cfg)
                continue
            if client.downloading and (
                client.pending_received >= client.pending_size - 1e-9
            ):
                _finish_download(client, t + tick, cfg, seg_len)
        t += tick

    outcome = SharedLinkOutcome(
        results=[c.result for c in clients],
        link_capacity_mean=link.stats().mean,
        delivered_megabits=delivered,
        duration=t,
    )
    trace_name = getattr(link, "name", None) or ""
    for client in clients:
        # Per-client accounting mirrors simulate_session's: the session
        # ends when *this* client finishes (not when the slowest one
        # does), and the controller's armor/cache counters are copied so
        # shared-link results audit identically to single-player ones.
        client.result.trace = trace_name
        client.result.wall_duration = client.wall_time
        client.result.fallback_decisions = int(
            getattr(client.controller, "fallback_decisions", 0)
        )
        client.result.plan_cache_hits = int(
            getattr(client.controller, "plan_cache_hits", 0)
        )
        client.result.plan_cache_misses = int(
            getattr(client.controller, "plan_cache_misses", 0)
        )
    return outcome


# ----------------------------------------------------------------------
def _maybe_start_download(
    client: _Client,
    cfg: PlayerConfig,
    ladder: BitrateLadder,
    t: float,
    seg_len: float,
) -> None:
    if client.segment_index >= cfg.num_segments:
        client.done = True
        return
    # Retry backoff after a failed or timed-out attempt.
    if t < client.retry_at - 1e-9:
        return
    # Live availability.
    if cfg.live_delay is not None:
        available_at = (client.segment_index + 1) * seg_len - cfg.live_delay
        if t < available_at - 1e-9:
            return
    # Buffer room.
    if client.buffer + seg_len > cfg.max_buffer + 1e-9:
        return

    obs = PlayerObservation(
        wall_time=t,
        segment_index=client.segment_index,
        buffer_level=client.buffer,
        max_buffer=cfg.max_buffer,
        previous_quality=client.prev_quality,
        ladder=ladder,
        history=tuple(client.history[-cfg.history_window:]),
        rebuffer_time=client.result.rebuffer_time,
        playing=client.playing,
    )
    quality = client.controller.select_quality(obs)
    if quality is None:
        client.idle_ticks += 1
        if client.idle_ticks > _MAX_IDLE_TICKS:
            raise LivelockError(
                client.controller.name, client.segment_index, client.idle_ticks
            )
        return
    if not 0 <= quality < ladder.levels:
        raise ValueError(
            f"{client.controller.name} chose invalid rung {quality!r}"
        )
    client.idle_ticks = 0
    if cfg.downshift_on_retry and client.attempt > 0:
        quality = max(quality - client.attempt, 0)

    dead = 0.0
    client.pending_corrupt = None
    if client.faults is not None and client.attempt <= cfg.max_retries:
        decision = client.faults.on_attempt(
            wall_time=t,
            segment_index=client.segment_index,
            attempt=client.attempt,
            quality=quality,
        )
        if not decision.is_clean:
            client.result.faults_injected += 1
        if decision.failed and client.attempt < cfg.max_retries:
            wait = (
                max(decision.wasted_time, 0.0)
                + cfg.retry_backoff * (2.0 ** client.attempt)
            )
            client.retry_at = t + wait
            client.result.retries += 1
            client.attempt += 1
            return
        if decision.failed:
            # Retry budget exhausted: force the lowest rung through.
            quality = 0
        else:
            dead = max(decision.latency_extra, 0.0) + max(
                decision.stall_extra, 0.0
            )
            client.pending_corrupt = decision.corrupt_throughput

    client.pending_quality = quality
    client.pending_size = ladder.segment_size(quality, client.segment_index)
    client.pending_received = 0.0
    client.pending_start = t
    client.pending_dead = dead


def _abort_attempt(client: _Client, t: float, cfg: PlayerConfig) -> None:
    """Cancel an attempt that exceeded the download timeout and back off."""
    client.pending_size = None
    client.pending_dead = 0.0
    client.pending_corrupt = None
    client.result.retries += 1
    client.retry_at = t + cfg.retry_backoff * (2.0 ** client.attempt)
    client.attempt += 1


def _advance_playback(client: _Client, dt: float, cfg: PlayerConfig) -> None:
    if not client.playing:
        client.result.startup_delay += dt
        return
    played = min(client.buffer, dt)
    if played > 1e-12:
        client.rebuffering = False
    stall = dt - played
    if stall > 1e-12:
        if not client.rebuffering:
            client.result.rebuffer_events += 1
        client.rebuffering = True
        client.result.rebuffer_time += stall
    client.buffer -= played


def _finish_download(
    client: _Client, t: float, cfg: PlayerConfig, seg_len: float
) -> None:
    duration = max(t - client.pending_start, 1e-9)
    sample = ThroughputSample(
        start=client.pending_start,
        duration=duration,
        size=client.pending_size,
        throughput=client.pending_size / duration,
    )
    # A corrupted measurement reaches the controller, not the QoE record.
    observed = sample
    if client.pending_corrupt is not None:
        observed = ThroughputSample(
            start=sample.start,
            duration=sample.duration,
            size=sample.size,
            throughput=client.pending_corrupt,
        )
    client.history.append(observed)
    client.controller.on_download(observed)

    client.buffer = min(client.buffer + seg_len, cfg.max_buffer)
    client.result.qualities.append(client.pending_quality)
    client.result.download_times.append(duration)
    client.result.download_starts.append(client.pending_start)
    client.result.throughputs.append(sample.throughput)
    client.result.buffer_levels.append(client.buffer)
    client.prev_quality = client.pending_quality
    client.pending_size = None
    client.pending_corrupt = None
    client.attempt = 0
    client.retry_at = 0.0
    client.segment_index += 1

    if not client.playing and client.buffer >= cfg.startup_threshold:
        client.playing = True
    if client.segment_index >= cfg.num_segments:
        client.done = True
