"""Population-scale fleet simulation: 1M+ crash-survivable coarse sessions.

The paper's headline claim is fleet-level — consistent quality across a
production population of heterogeneous devices (Fig. 13) — but the
fine-grained simulators top out at tens of concurrent clients.  This
module trades per-segment fidelity for population scale: sessions live in
flat NumPy arrays (buffer, rung, throughput state, remaining duration)
advanced in fixed coarse ticks, with controller decisions served through
vectorized batch entry points (``DecisionTable.lookup_batch``,
``solve_sessions_batch``, or a live ``ShardedDecisionService``), so the
hot loop never drops to per-session Python.

Four pieces:

* **arrival process** (:class:`ArrivalModel`) — diurnal Poisson with
  flash-crowd bursts, a device-family mix reusing the HTML5/TV/STB
  volatility profiles behind the Figure 13 bench, and engagement-driven
  abandonment via ``analysis.engagement.sample_watch_fractions``;
* **vectorized event core** (:class:`PopulationSim.step`) — per-tick AR(1)
  throughput evolution, batched decisions, coarse buffer/rebuffer
  dynamics, and hazard-based early abandonment, all masked-array math;
* **correlated fault storms** (:mod:`repro.faults.storm`) — regional
  bandwidth collapses, CDN outage windows, and flash-crowd admission
  pressure applied to masked slices of the session arrays;
* **crash-survivable execution** — periodic atomic checkpoints
  (write-temp-fsync-rename, like ``runner.journal``) of the *full*
  population state including the RNG stream, so a run SIGKILLed mid-sweep
  resumes from its last checkpoint to fleet aggregates bit-identical to
  an uninterrupted run.  Test hook: ``REPRO_POP_KILL_AFTER=n`` SIGKILLs
  the process after its *n*-th checkpoint lands, mirroring
  ``REPRO_JOURNAL_KILL_AFTER``.

Aggregation is streaming (:class:`FleetAggregator`): fixed-bin histograms,
exact SLO threshold counts, and per-cohort counters — nothing ever
materializes a million per-session result objects.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults.storm import StormSchedule
from .video import BitrateLadder, prime_video_live_ladder

__all__ = [
    "CohortSpec",
    "PopulationConfig",
    "ArrivalModel",
    "FleetAggregator",
    "FleetReport",
    "PopulationSim",
    "TableBackend",
    "SolverBackend",
    "ServiceBackend",
    "default_cohorts",
]

#: test-only crash hook: SIGKILL after the n-th checkpoint of this process
_KILL_ENV = "REPRO_POP_KILL_AFTER"

#: checkpoint format version (bumped on incompatible layout changes)
_CKPT_VERSION = 1


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CohortSpec:
    """One device-family cohort of the population.

    Attributes:
        name: family label (as in Figure 13).
        weight: relative share of arrivals.
        mean_mbps: typical downlink of the family, Mb/s.
        rsd: relative standard deviation of the family's links (drives
            the AR(1) volatility of each session's throughput walk).
    """

    name: str
    weight: float
    mean_mbps: float
    rsd: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("cohort weight must be positive")
        if self.mean_mbps <= 0 or self.rsd < 0:
            raise ValueError("cohort needs positive mean and rsd >= 0")


def default_cohorts() -> Tuple[CohortSpec, ...]:
    """The Figure 13 device families as population cohorts.

    Reuses the volatility profiles behind
    ``benchmarks/bench_fig13_production.py`` (via
    :data:`repro.analysis.production.DEVICE_FAMILIES`); weights reflect a
    browser-heavy fleet.
    """
    from ..analysis.production import DEVICE_FAMILIES

    weights = {"html5": 0.5, "smart-tv": 0.3, "set-top-box": 0.2}
    return tuple(
        CohortSpec(f.name, weights.get(f.name, 1.0), f.mean_mbps, f.rsd)
        for f in DEVICE_FAMILIES
    )


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of one population run.

    Everything here is JSON-serializable; the canonical hash of the
    resolved config is stamped into checkpoints so ``--resume`` refuses a
    mismatched configuration, exactly like the run journal.

    Attributes:
        sessions: expected total arrivals over the run (the realized
            Poisson count varies around it; flash-crowd storms add on
            top).
        duration_hours: simulated span.
        tick_seconds: coarse event-core step.
        seed: master seed; one NumPy generator drives every draw in a
            fixed per-tick order, which is what makes checkpoint/resume
            bit-exact.
        capacity: concurrent-session slab size; ``0`` sizes it
            automatically from the peak arrival rate (arrivals beyond a
            full slab are *shed* and counted per cohort — admission
            pressure is a first-class outcome, not an error).
        regions / cdns: cohort axes fault storms target.
        diurnal_amplitude: relative swing of the sinusoidal arrival rate.
        diurnal_period_hours: diurnal cycle length; ``0`` compresses one
            full cycle into the run (useful for short sweeps and bench).
        flash_crowds: burst windows built into the arrival plan.
        flash_crowd_mass: fraction of all arrivals concentrated in them.
        flash_crowd_minutes: width of each burst window.
        content_minutes: nominal content length a session could watch.
        engagement_noise: per-session watch-fraction noise (Figure 1).
        abandon_scale: multiplier on the engagement hazard that converts
            QoE debt (switches, rebuffering) into mid-session
            abandonment.
        ar_coefficient: AR(1) coefficient of each session's
            log-throughput walk.
        max_buffer: client buffer capacity, seconds.
        rebuffer_slo: the fleet SLO on per-session rebuffer ratio; its
            breach rate is tracked exactly, per cohort.
        storm_intensity: correlated-fault-storm intensity (``0`` = no
            storms); the schedule is regenerated deterministically from
            (spec, seed) on resume.
        table_points: grid points per axis of the decision table the
            default backend builds.
    """

    sessions: int = 100_000
    duration_hours: float = 2.0
    tick_seconds: float = 2.0
    seed: int = 0
    capacity: int = 0
    regions: int = 8
    cdns: int = 3
    diurnal_amplitude: float = 0.6
    diurnal_period_hours: float = 0.0
    flash_crowds: int = 2
    flash_crowd_mass: float = 0.15
    flash_crowd_minutes: float = 4.0
    content_minutes: float = 40.0
    engagement_noise: float = 0.05
    abandon_scale: float = 6.0
    ar_coefficient: float = 0.9
    max_buffer: float = 20.0
    rebuffer_slo: float = 0.02
    storm_intensity: float = 0.0
    table_points: int = 32

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be positive")
        if self.duration_hours <= 0 or self.tick_seconds <= 0:
            raise ValueError("duration and tick must be positive")
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if self.regions < 1 or self.cdns < 1:
            raise ValueError("need at least one region and one CDN")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.flash_crowds < 0 or not 0.0 <= self.flash_crowd_mass < 1.0:
            raise ValueError("flash crowd settings out of range")
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise ValueError("ar_coefficient must be in [0, 1)")
        if self.max_buffer <= 0 or self.content_minutes <= 0:
            raise ValueError("max_buffer and content_minutes must be positive")
        if not 0.0 <= self.rebuffer_slo <= 1.0:
            raise ValueError("rebuffer_slo must be in [0, 1]")
        if self.storm_intensity < 0:
            raise ValueError("storm_intensity must be non-negative")

    @property
    def horizon_seconds(self) -> float:
        return self.duration_hours * 3600.0

    @property
    def n_ticks(self) -> int:
        return int(math.ceil(self.horizon_seconds / self.tick_seconds))

    def spec_dict(self, cohorts: Sequence[CohortSpec]) -> Dict:
        """The canonical spec (config + resolved cohorts) for hashing."""
        return {
            "population": dataclasses.asdict(self),
            "cohorts": [dataclasses.asdict(c) for c in cohorts],
        }


# ----------------------------------------------------------------------
# arrival process
# ----------------------------------------------------------------------
class ArrivalModel:
    """Per-tick expected arrivals: diurnal Poisson plus flash crowds.

    The expected-rate curve is a *pure function* of the config: a raised
    sinusoid carrying ``1 - flash_crowd_mass`` of the mass, plus one
    raised-cosine bump per flash crowd carrying the rest.  Burst centers
    come from a dedicated generator seeded from the config seed, so the
    curve — like the storm schedule — needs no checkpoint state.  Only
    the Poisson *realization* draws from the simulation's stream.
    """

    def __init__(self, config: PopulationConfig) -> None:
        cfg = config
        ticks = cfg.n_ticks
        t = (np.arange(ticks) + 0.5) * cfg.tick_seconds
        period = cfg.diurnal_period_hours * 3600.0
        if period <= 0:
            period = cfg.horizon_seconds
        # Trough at the start of the cycle, peak mid-cycle.
        shape = 1.0 + cfg.diurnal_amplitude * np.sin(
            2.0 * np.pi * t / period - 0.5 * np.pi
        )
        burst_mass = (
            cfg.sessions * cfg.flash_crowd_mass if cfg.flash_crowds else 0.0
        )
        base = shape * ((cfg.sessions - burst_mass) / shape.sum())

        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, 0xA771])
        )
        self.burst_windows: List[Tuple[float, float]] = []
        bursts = np.zeros(ticks)
        width = cfg.flash_crowd_minutes * 60.0
        for _ in range(cfg.flash_crowds):
            center = float(
                rng.uniform(0.2 * cfg.horizon_seconds,
                            0.8 * cfg.horizon_seconds)
            )
            start, end = center - width / 2.0, center + width / 2.0
            self.burst_windows.append((start, end))
            inside = (t >= start) & (t < end)
            if not inside.any():
                inside = np.zeros(ticks, dtype=bool)
                inside[min(int(center / cfg.tick_seconds), ticks - 1)] = True
            bump = np.zeros(ticks)
            bump[inside] = 1.0 + np.cos(
                2.0 * np.pi * (t[inside] - center) / width
            )
            bursts += bump * (burst_mass / cfg.flash_crowds / bump.sum())
        self._tick_seconds = cfg.tick_seconds
        #: expected arrivals per tick (sums to ``config.sessions``)
        self.expected: np.ndarray = base + bursts

    def burst_fraction(self) -> float:
        """Fraction of expected arrival mass inside burst windows."""
        if not self.burst_windows:
            return 0.0
        t = (np.arange(len(self.expected)) + 0.5) * self._tick_seconds
        inside = np.zeros(len(self.expected), dtype=bool)
        for start, end in self.burst_windows:
            inside |= (t >= start) & (t < end)
        return float(self.expected[inside].sum() / self.expected.sum())


# ----------------------------------------------------------------------
# streaming aggregation
# ----------------------------------------------------------------------
def _histogram(edges: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Fixed-edge histogram counts (values clipped into the outer bins)."""
    idx = np.clip(
        np.searchsorted(edges, values, side="right") - 1, 0, len(edges) - 2
    )
    return np.bincount(idx, minlength=len(edges) - 1).astype(np.int64)


def _hist_quantile(edges: np.ndarray, counts: np.ndarray, q: float) -> float:
    """Deterministic quantile estimate from fixed-bin counts."""
    total = int(counts.sum())
    if total == 0:
        return 0.0
    target = q * total
    cum = np.cumsum(counts)
    bin_idx = int(np.searchsorted(cum, target, side="left"))
    bin_idx = min(bin_idx, len(counts) - 1)
    before = float(cum[bin_idx - 1]) if bin_idx else 0.0
    inside = float(counts[bin_idx])
    frac = 0.0 if inside == 0 else min(max((target - before) / inside, 0.0), 1.0)
    left, right = float(edges[bin_idx]), float(edges[bin_idx + 1])
    return left + frac * (right - left)


class FleetAggregator:
    """Streaming per-cohort fleet aggregates; never stores per-session rows.

    Finished sessions fold in as vectorized chunks: exact counters (per
    cohort: arrivals, shed, completed, abandoned, censored, SLO-threshold
    attainment), exact metric sums, and fixed-bin histograms from which
    the report derives QoE distributions and rebuffer-SLO curves.  All
    state is integer counts and float64 sums, so it serializes exactly
    into checkpoints and two runs that saw the same sessions produce
    bit-identical reports.
    """

    #: rebuffer-ratio attainment thresholds of the SLO curve
    SLO_THRESHOLDS = (0.0, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1)

    def __init__(
        self,
        cohorts: Sequence[str],
        bitrate_cap: float,
        rebuffer_slo: float = 0.02,
    ) -> None:
        self.cohorts = list(cohorts)
        self.rebuffer_slo = float(rebuffer_slo)
        thresholds = set(self.SLO_THRESHOLDS) | {self.rebuffer_slo}
        self.slo_thresholds = tuple(sorted(thresholds))
        c = len(self.cohorts)
        self.rebuf_edges = np.concatenate(
            [[0.0], np.geomspace(1e-4, 1.0, 64)]
        )
        self.bitrate_edges = np.linspace(0.0, max(bitrate_cap, 1e-6), 65)
        self.switch_edges = np.linspace(0.0, 30.0, 61)
        self.counters = {
            name: np.zeros(c, dtype=np.int64)
            for name in ("arrivals", "shed", "completed", "abandoned",
                         "censored")
        }
        self.slo_counts = np.zeros(
            (c, len(self.slo_thresholds)), dtype=np.int64
        )
        self.rebuf_hist = np.zeros((c, len(self.rebuf_edges) - 1), np.int64)
        self.bitrate_hist = np.zeros((c, len(self.bitrate_edges) - 1), np.int64)
        self.switch_hist = np.zeros((c, len(self.switch_edges) - 1), np.int64)
        self.sums = {
            name: np.zeros(c, dtype=np.float64)
            for name in ("played", "rebuffer", "switches", "bitrate_seconds")
        }

    # ------------------------------------------------------------------
    def record_arrivals(self, families: np.ndarray, admitted: int) -> None:
        """Account one tick's arrivals; entries past ``admitted`` were shed."""
        c = len(self.cohorts)
        self.counters["arrivals"] += np.bincount(families, minlength=c)
        if admitted < len(families):
            self.counters["shed"] += np.bincount(
                families[admitted:], minlength=c
            )

    def fold(
        self,
        families: np.ndarray,
        played: np.ndarray,
        rebuffer: np.ndarray,
        switches: np.ndarray,
        bitrate_seconds: np.ndarray,
        abandoned: np.ndarray,
    ) -> None:
        """Fold one chunk of finished sessions into the aggregates."""
        if len(families) == 0:
            return
        c = len(self.cohorts)
        self.counters["completed"] += np.bincount(
            families[~abandoned], minlength=c
        )
        self.counters["abandoned"] += np.bincount(
            families[abandoned], minlength=c
        )
        wall = played + rebuffer
        ratio = np.where(wall > 0, rebuffer / np.maximum(wall, 1e-12), 0.0)
        mean_bitrate = np.where(
            played > 0, bitrate_seconds / np.maximum(played, 1e-12), 0.0
        )
        switch_rate = np.where(
            played > 0, switches * 60.0 / np.maximum(played, 1e-12), 0.0
        )
        for ci in range(c):
            mask = families == ci
            if not mask.any():
                continue
            self.rebuf_hist[ci] += _histogram(self.rebuf_edges, ratio[mask])
            self.bitrate_hist[ci] += _histogram(
                self.bitrate_edges, mean_bitrate[mask]
            )
            self.switch_hist[ci] += _histogram(
                self.switch_edges, switch_rate[mask]
            )
            for ti, threshold in enumerate(self.slo_thresholds):
                self.slo_counts[ci, ti] += int(
                    np.count_nonzero(ratio[mask] <= threshold)
                )
            self.sums["played"][ci] += float(played[mask].sum())
            self.sums["rebuffer"][ci] += float(rebuffer[mask].sum())
            self.sums["switches"][ci] += float(switches[mask].sum())
            self.sums["bitrate_seconds"][ci] += float(
                bitrate_seconds[mask].sum()
            )

    def record_censored(self, families: np.ndarray) -> None:
        """Count sessions still active when the run ended (no QoE fold)."""
        if len(families):
            self.counters["censored"] += np.bincount(
                families, minlength=len(self.cohorts)
            )

    # ------------------------------------------------------------------
    def finished(self) -> int:
        return int(
            self.counters["completed"].sum() + self.counters["abandoned"].sum()
        )

    def slo_curve(self) -> Dict[str, float]:
        """Fleet rebuffer-SLO attainment at each threshold."""
        finished = self.finished()
        totals = self.slo_counts.sum(axis=0)
        return {
            f"{threshold:g}": (
                float(totals[i]) / finished if finished else 1.0
            )
            for i, threshold in enumerate(self.slo_thresholds)
        }

    def to_dict(self) -> Dict:
        """Deterministic fleet summary (the checkpoint-equal report body)."""
        out: Dict = {"cohorts": {}, "slo_curve": self.slo_curve()}
        slo_idx = self.slo_thresholds.index(self.rebuffer_slo)
        for ci, name in enumerate(self.cohorts):
            finished = int(
                self.counters["completed"][ci] + self.counters["abandoned"][ci]
            )
            wall = float(
                self.sums["played"][ci] + self.sums["rebuffer"][ci]
            )
            cohort = {
                key: int(self.counters[key][ci]) for key in self.counters
            }
            cohort["abandon_rate"] = (
                float(self.counters["abandoned"][ci]) / finished
                if finished else 0.0
            )
            cohort["shed_rate"] = (
                float(self.counters["shed"][ci])
                / max(int(self.counters["arrivals"][ci]), 1)
            )
            cohort["slo_attainment"] = (
                float(self.slo_counts[ci, slo_idx]) / finished
                if finished else 1.0
            )
            cohort["rebuffer_ratio_overall"] = (
                float(self.sums["rebuffer"][ci]) / wall if wall > 0 else 0.0
            )
            cohort["mean_bitrate"] = (
                float(self.sums["bitrate_seconds"][ci])
                / max(float(self.sums["played"][ci]), 1e-12)
                if self.sums["played"][ci] > 0 else 0.0
            )
            cohort["percentiles"] = {
                "rebuffer_ratio": {
                    f"p{int(q * 100)}": _hist_quantile(
                        self.rebuf_edges, self.rebuf_hist[ci], q
                    )
                    for q in (0.5, 0.9, 0.99)
                },
                "mean_bitrate": {
                    f"p{int(q * 100)}": _hist_quantile(
                        self.bitrate_edges, self.bitrate_hist[ci], q
                    )
                    for q in (0.1, 0.5, 0.9)
                },
                "switches_per_minute": {
                    f"p{int(q * 100)}": _hist_quantile(
                        self.switch_edges, self.switch_hist[ci], q
                    )
                    for q in (0.5, 0.9, 0.99)
                },
            }
            out["cohorts"][name] = cohort
        totals = {
            key: int(self.counters[key].sum()) for key in self.counters
        }
        finished = self.finished()
        totals["finished"] = finished
        totals["slo_attainment"] = (
            float(self.slo_counts[:, slo_idx].sum()) / finished
            if finished else 1.0
        )
        out["fleet"] = totals
        return out

    # ------------------------------------------------------------------
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Every mutable aggregate as named arrays, for checkpointing."""
        state = {
            "agg_slo_counts": self.slo_counts,
            "agg_rebuf_hist": self.rebuf_hist,
            "agg_bitrate_hist": self.bitrate_hist,
            "agg_switch_hist": self.switch_hist,
        }
        for key, arr in self.counters.items():
            state[f"agg_counter_{key}"] = arr
        for key, arr in self.sums.items():
            state[f"agg_sum_{key}"] = arr
        return state

    def restore_arrays(self, state: Dict[str, np.ndarray]) -> None:
        self.slo_counts = state["agg_slo_counts"].copy()
        self.rebuf_hist = state["agg_rebuf_hist"].copy()
        self.bitrate_hist = state["agg_bitrate_hist"].copy()
        self.switch_hist = state["agg_switch_hist"].copy()
        for key in self.counters:
            self.counters[key] = state[f"agg_counter_{key}"].copy()
        for key in self.sums:
            self.sums[key] = state[f"agg_sum_{key}"].copy()


# ----------------------------------------------------------------------
# decision backends
# ----------------------------------------------------------------------
class TableBackend:
    """Default backend: one shared ``DecisionTable`` answered in bulk.

    This is the FastMPC-style serving tier the sharded workers map; here
    it answers the whole active population in one
    :meth:`~repro.core.lookup.DecisionTable.lookup_batch` gather per tick.
    """

    name = "table"

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        table_points: int = 32,
        table=None,
    ) -> None:
        if table is None:
            from ..core.lookup import DecisionTable

            table = DecisionTable(
                ladder,
                max_buffer,
                throughput_points=max(table_points, 2),
                buffer_points=max(table_points, 2),
            )
        self.table = table

    def decide(
        self,
        throughputs: np.ndarray,
        buffers: np.ndarray,
        prev_rungs: np.ndarray,
        session_ids: Sequence[str],
        wall_time: float,
    ) -> np.ndarray:
        return self.table.lookup_batch(throughputs, buffers, prev_rungs)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class SolverBackend:
    """Exact tier-0 backend: cross-session batched horizon solves.

    Routes the whole active population through
    :func:`repro.core.fastpath.solve_sessions_batch` — one vectorized
    pass per (prev-rung) bundle — and commits each session's first
    planned step.  Coarser than the full controller (no per-session
    plan cache or finalize fallbacks), but every decision is a real
    Algorithm 1 solve, making this the reference point for how much
    fleet QoE the table approximation costs.
    """

    name = "solver"

    def __init__(self, ladder: BitrateLadder, max_buffer: float) -> None:
        from ..core.objective import SodaConfig

        self.ladder = ladder
        self.max_buffer = float(max_buffer)
        self.config = SodaConfig()

    def decide(
        self,
        throughputs: np.ndarray,
        buffers: np.ndarray,
        prev_rungs: np.ndarray,
        session_ids: Sequence[str],
        wall_time: float,
    ) -> np.ndarray:
        from ..core.fastpath import SessionSolveRequest, solve_sessions_batch

        requests = [
            SessionSolveRequest(
                omega=max(float(throughputs[i]), 1e-6),
                buffer_level=float(buffers[i]),
                prev_quality=(
                    None if prev_rungs[i] < 0 else int(prev_rungs[i])
                ),
                ladder=self.ladder,
                cfg=self.config,
                max_buffer=self.max_buffer,
            )
            for i in range(len(throughputs))
        ]
        plans = solve_sessions_batch(requests)
        out = np.zeros(len(plans), dtype=np.int64)
        for i, plan in enumerate(plans):
            out[i] = plan.sequence[0] if plan.feasible else 0
        return out

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class ServiceBackend:
    """Live-service backend: decisions stream through a sharded fleet.

    Wraps :class:`repro.service.ShardedDecisionService` and feeds each
    tick's active population through ``decide_many`` (the columnar wire
    path), which turns a population run into a fleet-scale soak: worker
    SIGKILLs, fault storms, and flash crowds all land on the same run.
    Service answers are not bit-deterministic (timeouts, failovers), so
    serve mode refuses checkpoints.
    """

    name = "service"

    def __init__(self, service, ladder: BitrateLadder, max_buffer: float) -> None:
        self.service = service
        self.ladder = ladder
        self.max_buffer = float(max_buffer)
        self.failovers = 0
        self.latencies: List[float] = []
        self._health = None

    def decide(
        self,
        throughputs: np.ndarray,
        buffers: np.ndarray,
        prev_rungs: np.ndarray,
        session_ids: Sequence[str],
        wall_time: float,
    ) -> np.ndarray:
        from ..prediction.base import ThroughputSample
        from .player import PlayerObservation

        requests = []
        for i, sid in enumerate(session_ids):
            tput = float(throughputs[i])
            history = ()
            if tput > 0:
                history = (
                    ThroughputSample(
                        start=wall_time, duration=1.0, size=tput,
                        throughput=tput,
                    ),
                )
            prev = None if prev_rungs[i] < 0 else int(prev_rungs[i])
            requests.append((sid, PlayerObservation(
                wall_time=wall_time,
                segment_index=0,
                buffer_level=float(buffers[i]),
                max_buffer=self.max_buffer,
                previous_quality=prev,
                ladder=self.ladder,
                history=history,
            )))
        started = time.perf_counter()
        decisions = self.service.decide_many(requests)
        self.latencies.append(time.perf_counter() - started)
        out = np.empty(len(decisions), dtype=np.int64)
        for i, decision in enumerate(decisions):
            self.failovers += bool(decision.failover)
            out[i] = -1 if decision.deferred else int(decision.quality)
        return out

    def close(self) -> None:
        if self._health is None:
            self._health = self.service.close()

    @property
    def fleet_health(self):
        return self._health


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    """Outcome of one population run.

    ``fleet`` is derived purely from checkpointed state, so an
    interrupted-and-resumed run reports a ``fleet`` dict *identical* to
    an uninterrupted one; wall-clock fields (``elapsed``) and the
    serve-mode ``service`` section are outside that contract.
    """

    fleet: Dict
    ticks: int
    decisions: int
    elapsed: float
    concurrency: Dict
    backend: str
    resumed_from_tick: int = 0
    service: Optional[Dict] = None

    def sessions_per_second(self) -> float:
        finished = self.fleet.get("fleet", {}).get("finished", 0)
        return finished / self.elapsed if self.elapsed > 0 else 0.0

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------
class PopulationSim:
    """A vectorized population of coarse streaming sessions.

    Args:
        config: run parameters.
        ladder: encoding ladder every session uses (defaults to the
            production live ladder).
        backend: decision backend (defaults to a :class:`TableBackend`
            built from the config's grid size).
        cohorts: device-family mix (defaults to the Figure 13 families).
        checkpoint_path: when set, the full population state is
            checkpointed here every ``checkpoint_every`` ticks
            (atomic write-temp-fsync-rename).
        checkpoint_every: checkpoint cadence in ticks (``0`` disables).
        storms: explicit storm schedule; defaults to
            ``StormSchedule.generate`` from ``config.storm_intensity``.
    """

    def __init__(
        self,
        config: PopulationConfig,
        ladder: Optional[BitrateLadder] = None,
        backend=None,
        cohorts: Optional[Sequence[CohortSpec]] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 0,
        storms: Optional[StormSchedule] = None,
    ) -> None:
        self.config = config
        self.ladder = ladder or prime_video_live_ladder()
        self.cohorts = tuple(cohorts) if cohorts else default_cohorts()
        if not self.cohorts:
            raise ValueError("need at least one cohort")
        self.backend = backend or TableBackend(
            self.ladder, config.max_buffer, table_points=config.table_points
        )
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.arrivals = ArrivalModel(config)
        if storms is not None:
            self.storms = storms
        elif config.storm_intensity > 0:
            self.storms = StormSchedule.generate(
                config.horizon_seconds,
                config.regions,
                config.cdns,
                intensity=config.storm_intensity,
                seed=config.seed,
            )
        else:
            self.storms = StormSchedule()

        weights = np.asarray([c.weight for c in self.cohorts], dtype=float)
        self._cohort_cum = np.cumsum(weights / weights.sum())
        self._cohort_mean = np.asarray(
            [c.mean_mbps for c in self.cohorts], dtype=float
        )
        # Stationary log-std matching each cohort's RSD, converted to the
        # AR(1) innovation scale: std_innov = std_log * sqrt(1 - a^2).
        std_log = np.sqrt(np.log1p(np.asarray(
            [c.rsd ** 2 for c in self.cohorts], dtype=float
        )))
        self._cohort_innov = std_log * math.sqrt(
            1.0 - config.ar_coefficient ** 2
        )
        self._bitrates = np.asarray(self.ladder.bitrates, dtype=float)

        from ..analysis.engagement import EngagementModel

        self.engagement = EngagementModel()

        capacity = config.capacity or self._auto_capacity()
        self.capacity = capacity
        self._rng = np.random.default_rng(config.seed)
        self.tick = 0
        self.decisions = 0
        self._session_serial = 0
        self._checkpoints_written = 0
        self.resumed_from_tick = 0

        z = np.zeros
        self.active = z(capacity, dtype=bool)
        self.family = z(capacity, dtype=np.int16)
        self.region = z(capacity, dtype=np.int16)
        self.cdn = z(capacity, dtype=np.int16)
        self.serial = z(capacity, dtype=np.int64)
        self.log_mean = z(capacity)
        self.log_tput = z(capacity)
        self.innov = z(capacity)
        self.buffer = z(capacity)
        self.rung = np.full(capacity, -1, dtype=np.int16)
        self.remaining = z(capacity)
        self.played = z(capacity)
        self.rebuffer = z(capacity)
        self.switches = z(capacity, dtype=np.int64)
        self.bitrate_seconds = z(capacity)
        self.concurrency = z(config.n_ticks, dtype=np.int64)

        self.agg = FleetAggregator(
            [c.name for c in self.cohorts],
            bitrate_cap=float(self._bitrates[-1]),
            rebuffer_slo=config.rebuffer_slo,
        )

    # ------------------------------------------------------------------
    def _auto_capacity(self) -> int:
        """Slab size from the peak arrival rate and mean watch length."""
        cfg = self.config
        peak_per_second = float(self.arrivals.expected.max()) / cfg.tick_seconds
        peak_per_second *= max(
            (e.magnitude for e in self.storms.events
             if e.kind.value == "flash-crowd"),
            default=1.0,
        ) if hasattr(self, "storms") else 1.0
        mean_watch = 0.22 * cfg.content_minutes * 60.0
        return max(1024, int(1.6 * peak_per_second * mean_watch))

    def config_hash(self) -> str:
        from ..runner.journal import config_hash

        return config_hash(self.config.spec_dict(self.cohorts))

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole population by one tick.

        Draw order is fixed — arrivals, arrival attributes, throughput
        innovations, abandonment uniforms — and every draw size depends
        only on checkpointed state, which is what makes the stream (and
        therefore the whole run) bit-reproducible across a resume.
        """
        cfg = self.config
        dt = cfg.tick_seconds
        t = self.tick * dt

        expected = float(self.arrivals.expected[self.tick])
        expected *= self.storms.arrival_factor(t)
        arriving = int(self._rng.poisson(expected))
        if arriving:
            self._admit(arriving)

        # AR(1) log-throughput walk over the whole slab: inactive slots
        # evolve harmlessly, keeping the draw branch-free and fixed-size.
        noise = self._rng.standard_normal(self.capacity)
        self.log_tput += (
            (cfg.ar_coefficient - 1.0) * (self.log_tput - self.log_mean)
            + self.innov * noise
        )
        abandon_u = self._rng.random(self.capacity)

        idx = np.flatnonzero(self.active)
        self.concurrency[self.tick] = idx.size
        if idx.size == 0:
            self.tick += 1
            return

        tput = np.exp(self.log_tput[idx])
        factors = self.storms.throughput_factors(
            t, self.region[idx], self.cdn[idx]
        )
        if factors is not None:
            tput = tput * factors

        prev = self.rung[idx].astype(np.int64)
        rungs = np.asarray(self.backend.decide(
            tput, self.buffer[idx], prev,
            self._session_ids(idx), t,
        ), dtype=np.int64)
        self.decisions += idx.size

        # Coarse dynamics: a session downloading rung r gains
        # tput/bitrate[r] seconds of video per wall second, plays out of
        # the buffer, and rebuffers for whatever the buffer cannot cover.
        safe_rung = np.clip(rungs, 0, None)
        download = np.where(
            rungs >= 0, tput / self._bitrates[safe_rung], 0.0
        )
        buf = self.buffer[idx] + download * dt
        play = np.minimum(buf, dt)
        buf = np.minimum(buf - play, cfg.max_buffer)
        rebuf_tick = dt - play

        switched = (rungs >= 0) & (prev >= 0) & (rungs != prev)
        new_rung = np.where(rungs >= 0, rungs, prev)
        held = np.clip(new_rung, 0, None)
        self.switches[idx] += switched
        self.rung[idx] = new_rung.astype(np.int16)
        self.buffer[idx] = buf
        self.played[idx] += play
        self.rebuffer[idx] += rebuf_tick
        self.bitrate_seconds[idx] += np.where(
            new_rung >= 0, self._bitrates[held], 0.0
        ) * play
        self.remaining[idx] -= play

        # Engagement-driven abandonment: QoE debt this tick (a switch, a
        # rebuffered fraction) becomes a proportional leave hazard using
        # the Figure 1 / [7] sensitivities of the engagement model.
        base_seconds = self.engagement.base_minutes * 60.0
        hazard = cfg.abandon_scale * dt / base_seconds * (
            self.engagement.switch_sensitivity * switched
            + self.engagement.rebuffer_sensitivity * (rebuf_tick / dt)
        )
        leave = abandon_u[idx] < -np.expm1(-hazard)
        finished = self.remaining[idx] <= 1e-9
        done = leave | finished
        if done.any():
            done_idx = idx[done]
            self.agg.fold(
                self.family[done_idx].astype(np.int64),
                self.played[done_idx],
                self.rebuffer[done_idx],
                self.switches[done_idx].astype(np.float64),
                self.bitrate_seconds[done_idx],
                abandoned=(leave & ~finished)[done],
            )
            self.active[done_idx] = False
        self.tick += 1

    def _admit(self, arriving: int) -> None:
        """Admit up to ``arriving`` new sessions; overflow is shed.

        Attribute draws cover *all* arrivals (shed included) so the RNG
        stream depends only on the arrival count, never on how full the
        slab happened to be.
        """
        cfg = self.config
        rng = self._rng
        fam = np.searchsorted(
            self._cohort_cum, rng.random(arriving), side="right"
        ).astype(np.int64)
        fam = np.minimum(fam, len(self.cohorts) - 1)
        region = rng.integers(0, cfg.regions, size=arriving)
        cdn = rng.integers(0, cfg.cdns, size=arriving)
        spread = rng.normal(0.0, 0.3, size=arriving)
        mean_mbps = self._cohort_mean[fam] * np.exp(spread - 0.045)
        watch_fraction = self.engagement.sample_watch_fractions(
            np.zeros(arriving), noise=cfg.engagement_noise, rng=rng
        )
        intended = watch_fraction * cfg.content_minutes * 60.0

        free = np.flatnonzero(~self.active)
        admitted = min(arriving, free.size)
        self.agg.record_arrivals(fam, admitted)
        if admitted == 0:
            return
        slots = free[:admitted]
        self.active[slots] = True
        self.family[slots] = fam[:admitted]
        self.region[slots] = region[:admitted]
        self.cdn[slots] = cdn[:admitted]
        self.serial[slots] = self._session_serial + np.arange(admitted)
        self._session_serial += admitted
        self.log_mean[slots] = np.log(mean_mbps[:admitted])
        self.log_tput[slots] = self.log_mean[slots]
        self.innov[slots] = self._cohort_innov[fam[:admitted]]
        self.buffer[slots] = 0.0
        self.rung[slots] = -1
        self.remaining[slots] = intended[:admitted]
        self.played[slots] = 0.0
        self.rebuffer[slots] = 0.0
        self.switches[slots] = 0
        self.bitrate_seconds[slots] = 0.0

    def _session_ids(self, idx: np.ndarray) -> List[str]:
        """Stable ids for the service backend (slot + reuse generation)."""
        if not isinstance(self.backend, ServiceBackend):
            return []
        serial = self.serial
        return [f"s{i}g{serial[i]}" for i in idx]

    # ------------------------------------------------------------------
    # run / finalize
    # ------------------------------------------------------------------
    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        until: Optional[int] = None,
        on_tick: Optional[Callable[[int], None]] = None,
    ) -> Optional[FleetReport]:
        """Step to ``until`` (or the end) and return the report.

        Returns ``None`` when stopped early by ``until`` — the run is
        only finalized (censoring, report) at its true end, so partial
        legs compose with checkpoint/resume.
        """
        cfg = self.config
        stop = cfg.n_ticks if until is None else min(until, cfg.n_ticks)
        started = time.perf_counter()
        report_every = max(stop // 10, 1)
        while self.tick < stop:
            self.step()
            if on_tick is not None:
                on_tick(self.tick)
            if (
                self.checkpoint_every
                and self.checkpoint_path
                and self.tick % self.checkpoint_every == 0
                and self.tick < cfg.n_ticks
            ):
                self.save_checkpoint()
            if progress is not None and self.tick % report_every == 0:
                progress(
                    f"tick {self.tick}/{cfg.n_ticks} "
                    f"active={int(self.active.sum())} "
                    f"finished={self.agg.finished()}"
                )
        if self.tick < cfg.n_ticks:
            return None
        return self._finalize(time.perf_counter() - started)

    def _finalize(self, elapsed: float) -> FleetReport:
        from ..qoe.aggregate import DistributionSummary

        live = np.flatnonzero(self.active)
        if live.size:
            self.agg.record_censored(self.family[live].astype(np.int64))
            self.active[live] = False
        concurrency = DistributionSummary.of_array(
            self.concurrency.astype(float)
        )
        service_section: Optional[Dict] = None
        if isinstance(self.backend, ServiceBackend):
            self.backend.close()
            health = self.backend.fleet_health
            latency = (
                DistributionSummary.of_array(np.asarray(self.backend.latencies))
                if self.backend.latencies else None
            )
            service_section = {
                "failovers": self.backend.failovers,
                "fleet_health": json.loads(health.to_json())
                if health is not None else None,
                "batch_latency": dataclasses.asdict(latency)
                if latency is not None else None,
            }
        return FleetReport(
            fleet=self.agg.to_dict(),
            ticks=self.tick,
            decisions=self.decisions,
            elapsed=elapsed,
            concurrency=dataclasses.asdict(concurrency),
            backend=getattr(self.backend, "name", "custom"),
            resumed_from_tick=self.resumed_from_tick,
            service=service_section,
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def save_checkpoint(self) -> None:
        """Atomically write the full population state.

        Same discipline as the run journal: the ``.npz`` is written to a
        temporary sibling, fsynced, and renamed over the target — a
        SIGKILL at any instant leaves either the previous checkpoint or
        the new one, never a torn file.  Honors ``REPRO_POP_KILL_AFTER``.
        """
        if not self.checkpoint_path:
            raise ValueError("no checkpoint_path configured")
        meta = json.dumps({
            "version": _CKPT_VERSION,
            "config_hash": self.config_hash(),
            "tick": self.tick,
            "decisions": self.decisions,
            "session_serial": self._session_serial,
            "rng_state": self._rng.bit_generator.state,
        })
        arrays: Dict[str, np.ndarray] = {
            "meta": np.asarray(meta),
            "active": self.active,
            "family": self.family,
            "region": self.region,
            "cdn": self.cdn,
            "serial": self.serial,
            "log_mean": self.log_mean,
            "log_tput": self.log_tput,
            "innov": self.innov,
            "buffer": self.buffer,
            "rung": self.rung,
            "remaining": self.remaining,
            "played": self.played,
            "rebuffer": self.rebuffer,
            "switches": self.switches,
            "bitrate_seconds": self.bitrate_seconds,
            "concurrency": self.concurrency,
        }
        arrays.update(self.agg.state_arrays())
        directory = os.path.dirname(os.path.abspath(self.checkpoint_path)) or "."
        tmp = os.path.join(
            directory,
            f".{os.path.basename(self.checkpoint_path)}.{os.getpid()}.tmp",
        )
        try:
            with open(tmp, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.checkpoint_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        self._checkpoints_written += 1
        self._maybe_kill()

    def _maybe_kill(self) -> None:
        """Honor the REPRO_POP_KILL_AFTER crash-test hook."""
        raw = os.environ.get(_KILL_ENV, "")
        try:
            threshold = int(raw) if raw else 0
        except ValueError:
            threshold = 0
        if threshold > 0 and self._checkpoints_written >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    @classmethod
    def resume(
        cls,
        checkpoint_path: str,
        config: PopulationConfig,
        ladder: Optional[BitrateLadder] = None,
        backend=None,
        cohorts: Optional[Sequence[CohortSpec]] = None,
        checkpoint_every: int = 0,
        storms: Optional[StormSchedule] = None,
    ) -> "PopulationSim":
        """Rebuild a simulator from its last checkpoint.

        The checkpoint's config hash must match ``config`` (the arrival
        plan and storm schedule are *regenerated* from it, so a changed
        config would silently diverge) — a mismatch raises
        :class:`repro.runner.journal.ConfigMismatchError`.
        """
        from ..runner.journal import ConfigMismatchError, JournalError

        sim = cls(
            config, ladder=ladder, backend=backend, cohorts=cohorts,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every, storms=storms,
        )
        try:
            with np.load(checkpoint_path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"][()]))
                if int(meta.get("version", -1)) != _CKPT_VERSION:
                    raise JournalError(
                        f"{checkpoint_path}: unsupported checkpoint version"
                    )
                if meta["config_hash"] != sim.config_hash():
                    raise ConfigMismatchError(
                        f"{checkpoint_path}: checkpoint was written under "
                        f"config {meta['config_hash']}, current config is "
                        f"{sim.config_hash()}; refusing to resume"
                    )
                loaded = {key: data[key] for key in data.files}
        except (OSError, ValueError, KeyError) as exc:
            if isinstance(exc, (ConfigMismatchError, JournalError)):
                raise
            raise JournalError(
                f"{checkpoint_path}: unusable population checkpoint ({exc})"
            ) from exc
        if len(loaded["active"]) != sim.capacity:
            # capacity is derived from config, so this only triggers on a
            # hand-tampered file; refuse rather than mis-map slots.
            raise JournalError(
                f"{checkpoint_path}: checkpoint capacity "
                f"{len(loaded['active'])} does not match {sim.capacity}"
            )
        sim.tick = int(meta["tick"])
        sim.decisions = int(meta["decisions"])
        sim._session_serial = int(meta["session_serial"])
        sim.resumed_from_tick = sim.tick
        rng = np.random.default_rng()
        rng.bit_generator.state = meta["rng_state"]
        sim._rng = rng
        for name in (
            "active", "family", "region", "cdn", "serial", "log_mean",
            "log_tput", "innov", "buffer", "rung", "remaining", "played",
            "rebuffer", "switches", "bitrate_seconds", "concurrency",
        ):
            setattr(sim, name, loaded[name].copy())
        sim.agg.restore_arrays(loaded)
        return sim
