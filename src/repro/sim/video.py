"""Video model: bitrate ladders, segment sizes, and quality curves.

The paper's evaluations use three encodings:

* a high-frame-rate 4K video following YouTube's recommended ladder
  (1.5, 4, 7.5, 12, 24, 60 Mb/s) with 2-second segments (§6.1.1);
* the same ladder with the two highest rungs removed for the 4G/5G datasets;
* a five-resolution news clip for the Puffer prototype whose highest rung
  averages about 2 Mb/s (§6.2.1).

Sizes are in megabits, durations in seconds, bitrates in Mb/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "BitrateLadder",
    "SsimModel",
    "youtube_4k_ladder",
    "youtube_hd_ladder",
    "puffer_news_ladder",
    "prime_video_live_ladder",
]


@dataclass(frozen=True)
class SsimModel:
    """A saturating SSIM-vs-bitrate curve.

    ``ssim(r) = ssim_max - span * exp(-r / scale)`` — SSIM rises steeply at
    low bitrates and saturates near ``ssim_max``, the canonical shape of the
    per-title curves measured on Puffer [46].

    Attributes:
        ssim_max: SSIM approached at very high bitrate (≤ 1).
        span: total SSIM range between zero-rate and saturation.
        scale: bitrate (Mb/s) at which ~63% of the span is recovered.
    """

    ssim_max: float = 0.985
    span: float = 0.12
    scale: float = 0.8

    def ssim(self, bitrate: float) -> float:
        """SSIM of a segment encoded at ``bitrate`` Mb/s."""
        if bitrate < 0:
            raise ValueError("bitrate must be non-negative")
        return self.ssim_max - self.span * math.exp(-bitrate / self.scale)

    def normalized(self, bitrate: float) -> float:
        """SSIM normalized by ``ssim_max`` — the prototype utility (§6.2.3)."""
        return self.ssim(bitrate) / self.ssim_max


class BitrateLadder:
    """An encoding ladder: the discrete set R of available bitrates.

    Args:
        bitrates: available bitrates in Mb/s, any order, must be unique and
            positive.  Stored sorted ascending.
        segment_duration: video seconds per segment (L in the paper).
        name: optional label.
        size_variation: per-segment VBR size multiplier amplitude; 0 means
            perfectly CBR (size = bitrate * duration).  With a positive value
            a deterministic per-segment pattern in
            ``[1 - size_variation, 1 + size_variation]`` scales every rung of
            a segment identically (scene complexity affects all encodings).

    Raises:
        ValueError: on empty, non-positive, or duplicate bitrates, or a
            non-positive segment duration.
    """

    def __init__(
        self,
        bitrates: Sequence[float],
        segment_duration: float = 2.0,
        name: str = "",
        size_variation: float = 0.0,
    ) -> None:
        rates = sorted(float(b) for b in bitrates)
        if not rates:
            raise ValueError("ladder needs at least one bitrate")
        if any(r <= 0 for r in rates):
            raise ValueError("bitrates must be positive")
        if len(set(rates)) != len(rates):
            raise ValueError("bitrates must be unique")
        if segment_duration <= 0:
            raise ValueError("segment duration must be positive")
        if not 0.0 <= size_variation < 1.0:
            raise ValueError("size_variation must be in [0, 1)")
        self.bitrates: List[float] = rates
        self.segment_duration = float(segment_duration)
        self.name = name
        self.size_variation = float(size_variation)

    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of rungs in the ladder."""
        return len(self.bitrates)

    @property
    def min_bitrate(self) -> float:
        return self.bitrates[0]

    @property
    def max_bitrate(self) -> float:
        return self.bitrates[-1]

    def __len__(self) -> int:
        return len(self.bitrates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<BitrateLadder{label} rungs={self.bitrates} "
            f"L={self.segment_duration}s>"
        )

    # ------------------------------------------------------------------
    def bitrate(self, quality: int) -> float:
        """Bitrate (Mb/s) of rung ``quality`` (0 = lowest)."""
        return self.bitrates[self._check(quality)]

    def segment_size(self, quality: int, segment_index: int = 0) -> float:
        """Size in megabits of segment ``segment_index`` at rung ``quality``."""
        base = self.bitrate(quality) * self.segment_duration
        return base * self._size_multiplier(segment_index)

    def quality_for_bitrate(self, bitrate: float) -> int:
        """Highest rung whose bitrate does not exceed ``bitrate``.

        Returns 0 when even the lowest rung exceeds ``bitrate``.
        """
        quality = 0
        for i, r in enumerate(self.bitrates):
            if r <= bitrate:
                quality = i
        return quality

    def ceil_quality_for_bitrate(self, bitrate: float) -> int:
        """Lowest rung with bitrate ≥ ``bitrate`` — min{r in R : r ≥ ω̂}.

        Returns the top rung when ``bitrate`` exceeds every rung.  This is
        the cap used by SODA's segment-based schema heuristic (§5.1).
        """
        for i, r in enumerate(self.bitrates):
            if r >= bitrate:
                return i
        return len(self.bitrates) - 1

    def log_utility(self, quality: int) -> float:
        """Normalized logarithmic utility log(r/rmin)/log(rmax/rmin) (§6).

        For a single-rung ladder the utility is defined as 1.
        """
        r = self.bitrate(quality)
        if self.levels == 1:
            return 1.0
        return math.log(r / self.min_bitrate) / math.log(
            self.max_bitrate / self.min_bitrate
        )

    def utilities(self) -> np.ndarray:
        """Log utility of every rung, ascending."""
        return np.array([self.log_utility(q) for q in range(self.levels)])

    def without_top(self, n: int = 1) -> "BitrateLadder":
        """A copy with the ``n`` highest rungs removed (§6.1.1, 4G/5G)."""
        if n < 0 or n >= self.levels:
            raise ValueError("must keep at least one rung")
        return BitrateLadder(
            self.bitrates[: self.levels - n],
            segment_duration=self.segment_duration,
            name=self.name,
            size_variation=self.size_variation,
        )

    # ------------------------------------------------------------------
    def _check(self, quality: int) -> int:
        if not 0 <= quality < self.levels:
            raise IndexError(
                f"quality {quality} out of range [0, {self.levels})"
            )
        return quality

    def _size_multiplier(self, segment_index: int) -> float:
        if self.size_variation == 0.0:
            return 1.0
        # Deterministic pseudo-random scene complexity: a fixed low-discrepancy
        # phase pattern so sizes are reproducible without carrying an RNG.
        phase = math.sin(2.399963229728653 * (segment_index + 1))
        return 1.0 + self.size_variation * phase


def youtube_4k_ladder(
    segment_duration: float = 2.0, size_variation: float = 0.0
) -> BitrateLadder:
    """YouTube-recommended HFR 4K ladder used for the Puffer dataset (§6.1.1)."""
    return BitrateLadder(
        [1.5, 4.0, 7.5, 12.0, 24.0, 60.0],
        segment_duration=segment_duration,
        name="youtube-4k",
        size_variation=size_variation,
    )


def youtube_hd_ladder(
    segment_duration: float = 2.0, size_variation: float = 0.0
) -> BitrateLadder:
    """The 4K ladder with the two highest rungs removed — 4G/5G sets (§6.1.1)."""
    return youtube_4k_ladder(segment_duration, size_variation).without_top(2)


def puffer_news_ladder(
    segment_duration: float = 2.0, size_variation: float = 0.0
) -> BitrateLadder:
    """Five-resolution news clip from the prototype evaluation (§6.2.1).

    The paper reports the highest rung (1080p, CRF 26) averages about
    2 Mb/s; the lower rungs follow typical CRF-26 scaling for 240p-720p.
    """
    return BitrateLadder(
        [0.2, 0.45, 0.9, 1.4, 2.0],
        segment_duration=segment_duration,
        name="puffer-news",
        size_variation=size_variation,
    )


def prime_video_live_ladder(
    segment_duration: float = 2.0, size_variation: float = 0.0
) -> BitrateLadder:
    """The production bitrate ladder from the Prime Video deployment (§6.3)."""
    return BitrateLadder(
        [0.2, 0.45, 0.8, 1.2, 1.8, 2.0, 4.0, 5.0, 6.5, 8.0],
        segment_duration=segment_duration,
        name="prime-video-live",
        size_variation=size_variation,
    )
