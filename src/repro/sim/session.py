"""Session orchestration: wire controller, trace, video, and player together.

These helpers add the plumbing :func:`repro.sim.player.simulate_session`
deliberately leaves out: attaching oracle predictors to the ground-truth
trace, computing QoE metrics, and running controller factories across whole
datasets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from ..faults.plan import DownloadFaultHook
from ..qoe.metrics import QoeMetrics, qoe_from_session
from .network import ThroughputTrace
from .player import PlayerConfig, SessionResult, simulate_session
from .video import BitrateLadder, SsimModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from ..abr.base import AbrController

__all__ = ["run_session", "run_dataset", "ControllerFactory"]

#: A zero-argument callable producing a fresh controller for each session.
ControllerFactory = Callable[[], "AbrController"]


def run_session(
    controller: "AbrController",
    trace: ThroughputTrace,
    ladder: BitrateLadder,
    config: Optional[PlayerConfig] = None,
    utility: str = "log",
    ssim_model: Optional[SsimModel] = None,
    faults: Optional[DownloadFaultHook] = None,
    log_decisions: bool = False,
) -> SessionResult:
    """Simulate one session, attaching oracle predictors to the trace.

    Any predictor exposing ``attach_trace`` (the oracle family) is pointed
    at the session's ground-truth trace before the run — this is how the
    perfect/noisy-prediction experiments of §6.1.4 are wired.  ``faults``
    (e.g. a :class:`repro.faults.FaultPlan`) injects download faults into
    the session.  ``log_decisions`` records every controller answer in
    ``result.decision_log`` for demonstration datasets (``repro.learn``).
    """
    predictor = getattr(controller, "predictor", None)
    if predictor is not None and hasattr(predictor, "attach_trace"):
        predictor.attach_trace(trace)
    return simulate_session(
        controller,
        trace,
        ladder,
        config,
        faults=faults,
        log_decisions=log_decisions,
    )


def run_dataset(
    factory: ControllerFactory,
    traces: Sequence[ThroughputTrace],
    ladder: BitrateLadder,
    config: Optional[PlayerConfig] = None,
    utility: str = "log",
    ssim_model: Optional[SsimModel] = None,
    qoe_beta: float = 10.0,
    qoe_gamma: float = 1.0,
    fault_factory: Optional[Callable[[int], DownloadFaultHook]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[QoeMetrics]:
    """Run a fresh controller instance over every trace, returning QoE rows.

    Every returned :class:`QoeMetrics` carries per-session identity
    (controller name, trace name, seed), so journal keys and failure
    reports can name the exact session rather than a list index.

    Args:
        factory: builds a new controller per session, so per-session state
            (predictor history, RNGs) never leaks across traces.
        traces: the dataset.
        ladder: encoding ladder shared by all sessions.
        config: player parameters.
        utility: "log" or "ssim" (the latter needs ``ssim_model``).
        ssim_model: SSIM curve used when ``utility="ssim"``.
        qoe_beta: rebuffering weight in the QoE score (paper uses 10).
        qoe_gamma: switching weight in the QoE score (paper uses 1).
        fault_factory: builds a fault hook per session index (e.g.
            ``plan.fork``), so fault streams stay independent per trace.
        seeds: per-session identity seeds recorded on the metrics; defaults
            to the session index within ``traces``.
    """
    if seeds is not None and len(seeds) != len(traces):
        raise ValueError(
            f"seeds has {len(seeds)} entries for {len(traces)} traces"
        )
    metrics: List[QoeMetrics] = []
    for index, trace in enumerate(traces):
        controller = factory()
        faults = fault_factory(index) if fault_factory is not None else None
        result = run_session(controller, trace, ladder, config, faults=faults)
        metrics.append(
            qoe_from_session(
                result,
                utility=utility,
                ssim_model=ssim_model,
                beta=qoe_beta,
                gamma=qoe_gamma,
                seed=seeds[index] if seeds is not None else index,
            )
        )
    return metrics
