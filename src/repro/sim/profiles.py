"""Evaluation profiles: ready-made (ladder, player config) settings.

One profile per evaluation venue in the paper:

* **live** — the numerical-simulation setting (§6.1): 20 s buffer cap, 4K
  YouTube ladder (or the HD cut for cellular datasets), 2 s segments;
* **on_demand** — the 120 s-buffer setting of Figure 2's comparison;
* **prototype** — the Puffer browser prototype (§6.2): 15 s buffer cap,
  5-rung news-clip ladder, SSIM utility;
* **production** — the Prime Video deployment (§6.3): 10-rung ladder,
  20 s behind live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .player import PlayerConfig
from .video import (
    BitrateLadder,
    SsimModel,
    prime_video_live_ladder,
    puffer_news_ladder,
    youtube_4k_ladder,
    youtube_hd_ladder,
)

__all__ = [
    "EvaluationProfile",
    "live_profile",
    "on_demand_profile",
    "prototype_profile",
    "production_profile",
    "low_latency_profile",
]


@dataclass(frozen=True)
class EvaluationProfile:
    """A complete simulation setting.

    Attributes:
        name: profile label.
        ladder: encoding ladder.
        player: player configuration.
        utility: QoE utility kind — "log" or "ssim".
        ssim_model: SSIM curve when ``utility == "ssim"``.
    """

    name: str
    ladder: BitrateLadder
    player: PlayerConfig
    utility: str = "log"
    ssim_model: Optional[SsimModel] = None


def live_profile(
    session_seconds: float = 600.0,
    cellular: bool = False,
    max_buffer: float = 20.0,
) -> EvaluationProfile:
    """The §6.1 numerical-simulation setting (live streaming)."""
    ladder = youtube_hd_ladder() if cellular else youtube_4k_ladder()
    num_segments = int(session_seconds / ladder.segment_duration)
    return EvaluationProfile(
        name="live-cellular" if cellular else "live",
        ladder=ladder,
        player=PlayerConfig(
            max_buffer=max_buffer,
            num_segments=num_segments,
            startup_threshold=ladder.segment_duration,
            live_delay=max_buffer,
        ),
    )


def on_demand_profile(
    session_seconds: float = 600.0, max_buffer: float = 120.0
) -> EvaluationProfile:
    """The on-demand setting of Figure 2 (long buffer, no live edge)."""
    ladder = youtube_4k_ladder()
    num_segments = int(session_seconds / ladder.segment_duration)
    return EvaluationProfile(
        name="on-demand",
        ladder=ladder,
        player=PlayerConfig(
            max_buffer=max_buffer,
            num_segments=num_segments,
            startup_threshold=ladder.segment_duration,
            live_delay=None,
        ),
    )


def prototype_profile(session_seconds: float = 600.0) -> EvaluationProfile:
    """The §6.2 Puffer prototype setting (15 s buffer, SSIM utility)."""
    ladder = puffer_news_ladder()
    num_segments = int(session_seconds / ladder.segment_duration)
    return EvaluationProfile(
        name="prototype",
        ladder=ladder,
        player=PlayerConfig(
            max_buffer=15.0,
            num_segments=num_segments,
            startup_threshold=ladder.segment_duration,
            live_delay=15.0,
        ),
        utility="ssim",
        ssim_model=SsimModel(),
    )


def low_latency_profile(
    session_seconds: float = 600.0,
    latency: float = 4.0,
    segment_duration: float = 1.0,
    cellular: bool = False,
) -> EvaluationProfile:
    """Ultra-low-latency live streaming — the paper's §8 future-work regime.

    The player sits only a few seconds behind the live edge, so the buffer
    is capped at ``latency`` seconds and segments are short.  The §8
    hypothesis — that preventing rebuffering and switching gets much harder
    here — is exercised by ``benchmarks/bench_ext_lowlatency.py``.
    """
    if latency <= segment_duration:
        raise ValueError("latency must exceed one segment")
    base = youtube_hd_ladder if cellular else youtube_4k_ladder
    ladder = base(segment_duration=segment_duration)
    num_segments = int(session_seconds / ladder.segment_duration)
    return EvaluationProfile(
        name=f"low-latency-{latency:.0f}s",
        ladder=ladder,
        player=PlayerConfig(
            max_buffer=latency,
            num_segments=num_segments,
            startup_threshold=segment_duration,
            live_delay=latency,
        ),
    )


def production_profile(session_seconds: float = 600.0) -> EvaluationProfile:
    """The §6.3 Prime Video deployment setting (10-rung ladder, 20 s live)."""
    ladder = prime_video_live_ladder()
    num_segments = int(session_seconds / ladder.segment_duration)
    return EvaluationProfile(
        name="production",
        ladder=ladder,
        player=PlayerConfig(
            max_buffer=20.0,
            num_segments=num_segments,
            startup_threshold=ladder.segment_duration,
            live_delay=20.0,
        ),
    )
