"""Player simulation substrate (the Sabre [36] equivalent)."""

from .events import EventKind, SessionEvent, SessionTimeline, TimelineRecorder
from .multiclient import SharedLinkOutcome, jain_fairness, simulate_shared_link
from .network import ThroughputTrace, TraceStats
from .player import LivelockError, PlayerConfig, SessionResult, simulate_session
from .population import (
    ArrivalModel,
    CohortSpec,
    FleetAggregator,
    FleetReport,
    PopulationConfig,
    PopulationSim,
    ServiceBackend,
    SolverBackend,
    TableBackend,
    default_cohorts,
)
from .profiles import (
    EvaluationProfile,
    live_profile,
    on_demand_profile,
    production_profile,
    prototype_profile,
)
from .session import run_dataset, run_session
from .video import (
    BitrateLadder,
    SsimModel,
    prime_video_live_ladder,
    puffer_news_ladder,
    youtube_4k_ladder,
    youtube_hd_ladder,
)

__all__ = [
    "ThroughputTrace",
    "TraceStats",
    "EventKind",
    "SessionEvent",
    "SessionTimeline",
    "TimelineRecorder",
    "SharedLinkOutcome",
    "jain_fairness",
    "simulate_shared_link",
    "LivelockError",
    "PlayerConfig",
    "SessionResult",
    "simulate_session",
    "ArrivalModel",
    "CohortSpec",
    "FleetAggregator",
    "FleetReport",
    "PopulationConfig",
    "PopulationSim",
    "ServiceBackend",
    "SolverBackend",
    "TableBackend",
    "default_cohorts",
    "run_session",
    "run_dataset",
    "EvaluationProfile",
    "live_profile",
    "on_demand_profile",
    "prototype_profile",
    "production_profile",
    "BitrateLadder",
    "SsimModel",
    "youtube_4k_ladder",
    "youtube_hd_ladder",
    "puffer_news_ladder",
    "prime_video_live_ladder",
]
