"""The streaming player simulator (Sabre-equivalent).

Simulates one streaming session: a controller picks a rung per segment, the
segment downloads over the trace, the buffer drains in wall time, rebuffering
accrues when the buffer empties, and live sessions cannot fetch segments that
have not been produced yet.

The dynamics follow Sabre [36], whose accuracy the paper validated against
dash.js: downloads are sequential, the buffer holds whole segments, and the
player waits when the buffer is full (no overflow, matching the blank region
of the paper's Figure 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..faults.plan import CLEAN, DownloadFaultHook, FaultDecision
from ..prediction.base import ThroughputSample
from .network import ThroughputTrace
from .video import BitrateLadder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from ..abr.base import AbrController

__all__ = [
    "LivelockError",
    "PlayerConfig",
    "PlayerObservation",
    "SessionResult",
    "simulate_session",
]


class LivelockError(RuntimeError):
    """A controller deferred so long the session can never progress.

    Attributes:
        controller: name of the livelocked controller.
        segment_index: segment the session was stuck on.
    """

    def __init__(self, controller: str, segment_index: int, steps: int) -> None:
        super().__init__(
            f"controller {controller!r} deferred {steps} consecutive times "
            f"at segment {segment_index} (livelock)"
        )
        self.controller = controller
        self.segment_index = segment_index


@dataclass(frozen=True)
class PlayerObservation:
    """Everything a controller may look at before picking a bitrate.

    Attributes:
        wall_time: current wall-clock time in the session, seconds.
        segment_index: index of the segment about to be requested.
        buffer_level: seconds of video currently buffered.
        max_buffer: buffer capacity in seconds (x_max).
        previous_quality: rung of the previously downloaded segment, or
            ``None`` before the first download.
        ladder: the encoding ladder in use.
        history: completed downloads, oldest first.
        rebuffer_time: cumulative rebuffering so far, seconds.
        playing: whether playback has started (False during startup).
    """

    wall_time: float
    segment_index: int
    buffer_level: float
    max_buffer: float
    previous_quality: Optional[int]
    ladder: BitrateLadder
    history: Tuple[ThroughputSample, ...]
    rebuffer_time: float = 0.0
    playing: bool = True

    @property
    def previous_bitrate(self) -> Optional[float]:
        """Bitrate of the previous segment in Mb/s, if any."""
        if self.previous_quality is None:
            return None
        return self.ladder.bitrate(self.previous_quality)

    @property
    def last_throughput(self) -> Optional[float]:
        """Measured throughput of the most recent download, Mb/s."""
        if not self.history:
            return None
        return self.history[-1].throughput

#: idle step used when the controller defers or a segment is unavailable
_IDLE_STEP = 0.1
#: hard cap on consecutive idle steps, to catch livelocked controllers
_MAX_IDLE_STEPS = 100_000


@dataclass(frozen=True)
class PlayerConfig:
    """Player-side parameters of a session.

    Attributes:
        max_buffer: buffer capacity in seconds (20 s for the paper's live
            setting, 15 s for the prototype, 60–180 s for on-demand).
        num_segments: how many segments the session streams.
        startup_threshold: seconds of buffered video required before
            playback starts.
        live_delay: for live sessions, how far behind the live edge the
            player sits; segment ``i`` becomes available at wall time
            ``(i + 1) * L - live_delay``.  ``None`` means on-demand (every
            segment is available immediately).
        history_window: how many download samples are exposed to the
            controller (and kept for metrics).
        abandonment: whether a download that is on course to stall the
            player may be abandoned and refetched at the lowest rung.
            Production players (dash.js, Prime Video) all do this; the
            original Sabre does not, so it can be disabled for strict
            Sabre-equivalence.
        abandon_check_fraction: how far into the current buffer (as a
            fraction) the player re-estimates the download before deciding
            to abandon.
        abandon_threshold: extra stall tolerance in seconds before an
            abandonment triggers.
        rtt: per-request round-trip latency in seconds added before each
            segment download (no payload flows during it).  Default 0 keeps
            strict Sabre-equivalence; realistic values are 0.02–0.2 s.
        max_retries: how many times a failed or timed-out download attempt
            is retried before the player forces the segment through at the
            lowest rung.  Only exercised when faults are injected or
            ``download_timeout`` is set.
        retry_backoff: base of the exponential backoff between retries;
            retry *n* waits ``retry_backoff * 2**n`` extra seconds.
        download_timeout: per-attempt wall-clock budget in seconds; an
            attempt projected to exceed it is aborted and retried.  ``None``
            (the default) disables the timeout.
        downshift_on_retry: whether each retry drops one rung, the
            degradation production players apply on fetch errors.
    """

    max_buffer: float = 20.0
    num_segments: int = 300
    startup_threshold: float = 2.0
    live_delay: Optional[float] = None
    history_window: int = 32
    abandonment: bool = True
    abandon_check_fraction: float = 0.5
    abandon_threshold: float = 1.0
    rtt: float = 0.0
    max_retries: int = 3
    retry_backoff: float = 0.5
    download_timeout: Optional[float] = None
    downshift_on_retry: bool = True

    def __post_init__(self) -> None:
        if self.max_buffer <= 0:
            raise ValueError("max_buffer must be positive")
        if self.num_segments < 1:
            raise ValueError("need at least one segment")
        if self.startup_threshold < 0:
            raise ValueError("startup threshold must be non-negative")
        if self.live_delay is not None and self.live_delay <= 0:
            raise ValueError("live_delay must be positive when set")
        if not 0 < self.abandon_check_fraction <= 1:
            raise ValueError("abandon_check_fraction must be in (0, 1]")
        if self.abandon_threshold < 0:
            raise ValueError("abandon_threshold must be non-negative")
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if self.download_timeout is not None and self.download_timeout <= 0:
            raise ValueError("download_timeout must be positive when set")


@dataclass
class SessionResult:
    """Full record of one simulated session.

    Everything the paper's metrics need: per-segment rungs and timings, total
    rebuffering, startup delay, and the buffer trajectory sampled at each
    download completion.
    """

    controller: str
    ladder: BitrateLadder
    trace: str = ""
    qualities: List[int] = field(default_factory=list)
    download_times: List[float] = field(default_factory=list)
    download_starts: List[float] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)
    buffer_levels: List[float] = field(default_factory=list)
    rebuffer_time: float = 0.0
    rebuffer_events: int = 0
    startup_delay: float = 0.0
    wall_duration: float = 0.0
    idle_time: float = 0.0
    abandonments: int = 0
    faults_injected: int = 0
    retries: int = 0
    fallback_decisions: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: opt-in per-decision demonstration rows (see ``simulate_session``'s
    #: ``log_decisions``): ``[buffer_level, throughput, prev_rung, action]``
    #: per controller answer, throughput/prev/action ``-1`` encoding
    #: no-history / no-previous-rung / defer respectively.  JSON-safe by
    #: construction so runner records can carry it into journals.
    decision_log: List[List[float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return len(self.qualities)

    @property
    def bitrates(self) -> List[float]:
        """Per-segment bitrates in Mb/s."""
        return [self.ladder.bitrate(q) for q in self.qualities]

    @property
    def switch_count(self) -> int:
        """Number of adjacent segment pairs with different rungs."""
        return sum(
            1
            for a, b in zip(self.qualities, self.qualities[1:])
            if a != b
        )

    @property
    def play_duration(self) -> float:
        """Video seconds delivered."""
        return self.num_segments * self.ladder.segment_duration

    @property
    def session_duration(self) -> float:
        """Wall-clock session length used for the rebuffering ratio."""
        return self.wall_duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SessionResult {self.controller} segs={self.num_segments} "
            f"rebuf={self.rebuffer_time:.2f}s switches={self.switch_count}>"
        )


def simulate_session(
    controller: "AbrController",
    trace: ThroughputTrace,
    ladder: BitrateLadder,
    config: Optional[PlayerConfig] = None,
    faults: Optional[DownloadFaultHook] = None,
    log_decisions: bool = False,
) -> SessionResult:
    """Run one streaming session and return its full record.

    Args:
        controller: the ABR controller under test; it is reset first.
        trace: network conditions (loops if shorter than the session).
        ladder: the encoding ladder.
        config: player parameters; defaults to the paper's live setting.
        faults: optional download-fault hook (e.g. a
            :class:`repro.faults.FaultPlan`); consulted once per download
            attempt.  Failed attempts are retried with exponential backoff
            and optional rung downshift per ``config``; corrupted samples
            reach the controller but not the QoE record.
        log_decisions: record every controller answer (defers included)
            as a ``[buffer, throughput, prev, action]`` row in
            ``result.decision_log`` — the demonstration stream behaviour
            cloning (:mod:`repro.learn`) trains on.  Off by default; a
            300-segment session logs ~300 rows.

    Returns:
        A :class:`SessionResult` with per-segment decisions and QoE inputs.

    Raises:
        LivelockError: if the controller defers forever.
        RuntimeError: if the network can never deliver a segment
            (all-zero trace).
    """
    cfg = config or PlayerConfig()
    controller.reset()
    if faults is not None:
        reset = getattr(faults, "reset", None)
        if callable(reset):
            reset()

    result = SessionResult(
        controller=controller.name,
        ladder=ladder,
        trace=getattr(trace, "name", None) or "",
    )
    seg_len = ladder.segment_duration

    t = 0.0
    buffer = 0.0
    playing = False
    rebuffering = False
    history: List[ThroughputSample] = []
    prev_quality: Optional[int] = None

    for segment_index in range(cfg.num_segments):
        idle_steps = 0

        # ------------------------------------------------------------
        # Wait for segment availability (live) and buffer room.
        # ------------------------------------------------------------
        while True:
            waited = 0.0
            if cfg.live_delay is not None:
                available_at = (segment_index + 1) * seg_len - cfg.live_delay
                if t < available_at - 1e-9:
                    waited = available_at - t
            if waited == 0.0 and buffer + seg_len > cfg.max_buffer + 1e-9:
                # Drain exactly enough room for one more segment.
                waited = buffer + seg_len - cfg.max_buffer
            if waited <= 0.0:
                break
            t, buffer, playing, rebuffering = _advance(
                t, buffer, playing, rebuffering, waited, cfg, result
            )
            result.idle_time += waited

        # ------------------------------------------------------------
        # Ask the controller.
        # ------------------------------------------------------------
        while True:
            obs = PlayerObservation(
                wall_time=t,
                segment_index=segment_index,
                buffer_level=buffer,
                max_buffer=cfg.max_buffer,
                previous_quality=prev_quality,
                ladder=ladder,
                history=tuple(history[-cfg.history_window :]),
                rebuffer_time=result.rebuffer_time,
                playing=playing,
            )
            quality = controller.select_quality(obs)
            if log_decisions:
                result.decision_log.append([
                    float(obs.buffer_level),
                    -1.0 if obs.last_throughput is None
                    else float(obs.last_throughput),
                    -1.0 if prev_quality is None else float(prev_quality),
                    -1.0 if quality is None else float(quality),
                ])
            if quality is not None:
                break
            idle_steps += 1
            if idle_steps > _MAX_IDLE_STEPS:
                raise LivelockError(controller.name, segment_index, idle_steps)
            t, buffer, playing, rebuffering = _advance(
                t, buffer, playing, rebuffering, _IDLE_STEP, cfg, result
            )
            result.idle_time += _IDLE_STEP

        if not 0 <= quality < ladder.levels:
            raise ValueError(
                f"{controller.name} chose invalid rung {quality!r}"
            )

        # ------------------------------------------------------------
        # Download the segment (with per-attempt fault injection,
        # retry + exponential backoff, and rung downshift on retry).
        # ------------------------------------------------------------
        attempt = 0
        decision = CLEAN
        while True:
            if faults is not None:
                decision = faults.on_attempt(
                    wall_time=t,
                    segment_index=segment_index,
                    attempt=attempt,
                    quality=quality,
                )
            if not decision.is_clean:
                result.faults_injected += 1
            latency = cfg.rtt + max(decision.latency_extra, 0.0)
            size = ladder.segment_size(quality, segment_index)
            dt = latency + trace.download_time(size, t + latency)
            if math.isinf(dt):
                raise RuntimeError("trace can never deliver the segment")
            dt += max(decision.stall_extra, 0.0)

            timed_out = (
                cfg.download_timeout is not None and dt > cfg.download_timeout
            )
            if (decision.failed or timed_out) and attempt < cfg.max_retries:
                # The attempt burns wall time (partial transfer, error
                # handshake, or the full timeout budget), then the player
                # backs off exponentially before the next try.
                wasted = (
                    max(decision.wasted_time, 0.0)
                    if decision.failed
                    else float(cfg.download_timeout)
                )
                wait = wasted + cfg.retry_backoff * (2.0 ** attempt)
                t, buffer, playing, rebuffering = _advance(
                    t, buffer, playing, rebuffering, wait, cfg, result
                )
                result.retries += 1
                attempt += 1
                if cfg.downshift_on_retry and quality > 0:
                    quality -= 1
                continue
            if decision.failed:
                # Retry budget exhausted: force the segment through at the
                # lowest rung with no further injection, so a bounded fault
                # stream can never wedge the session.
                quality = 0
                size = ladder.segment_size(quality, segment_index)
                dt = cfg.rtt + trace.download_time(size, t + cfg.rtt)
                if math.isinf(dt):
                    raise RuntimeError("trace can never deliver the segment")
                decision = CLEAN
            break

        # Abandonment: a download on course to stall playback is cancelled
        # once the player has spent a fraction of its buffer confirming the
        # slowdown, and the segment is refetched at the lowest rung.
        if (
            cfg.abandonment
            and playing
            and quality > 0
            and dt > buffer + cfg.abandon_threshold
        ):
            elapsed = min(
                max(cfg.abandon_check_fraction * buffer, 0.25), dt
            )
            bits_got = trace.bits_between(t, t + elapsed)
            if elapsed > 0 and bits_got >= 0:
                partial = ThroughputSample(
                    start=t,
                    duration=elapsed,
                    size=bits_got,
                    throughput=bits_got / elapsed,
                )
                t, buffer, playing, rebuffering = _advance(
                    t, buffer, playing, rebuffering, elapsed, cfg, result
                )
                history.append(partial)
                controller.on_download(partial)
                result.abandonments += 1
                quality = 0
                size = ladder.segment_size(quality, segment_index)
                dt = cfg.rtt + trace.download_time(size, t + cfg.rtt)

        sample = ThroughputSample.from_download(start=t, duration=dt, size=size)
        start_t = t
        t, buffer, playing, rebuffering = _advance(
            t, buffer, playing, rebuffering, dt, cfg, result
        )
        buffer += seg_len

        # A corrupted measurement reaches the controller (and its
        # predictor), but the QoE record keeps the true dynamics.
        observed = sample
        if decision.corrupt_throughput is not None:
            observed = ThroughputSample(
                start=sample.start,
                duration=sample.duration,
                size=sample.size,
                throughput=decision.corrupt_throughput,
            )
        history.append(observed)
        controller.on_download(observed)
        prev_quality = quality

        result.qualities.append(quality)
        result.download_times.append(dt)
        result.download_starts.append(start_t)
        result.throughputs.append(sample.throughput)
        result.buffer_levels.append(buffer)

        if not playing and buffer >= cfg.startup_threshold:
            playing = True

    result.wall_duration = t
    # Resilient wrappers count their interventions; surface them here so
    # every analysis layer sees one consistent record.
    result.fallback_decisions = int(getattr(controller, "fallback_decisions", 0))
    result.plan_cache_hits = int(getattr(controller, "plan_cache_hits", 0))
    result.plan_cache_misses = int(getattr(controller, "plan_cache_misses", 0))
    return result


def _advance(
    t: float,
    buffer: float,
    playing: bool,
    rebuffering: bool,
    dt: float,
    cfg: PlayerConfig,
    result: SessionResult,
) -> tuple:
    """Advance wall time by ``dt``, draining the buffer and accounting.

    Returns the updated ``(t, buffer, playing, rebuffering)`` tuple and
    mutates ``result`` with rebuffer/startup accounting.
    """
    if dt < 0:
        raise ValueError("cannot advance time backwards")
    if not playing:
        # Startup: nothing plays, the clock ticks.
        result.startup_delay += dt
        return t + dt, buffer, playing, rebuffering

    played = min(buffer, dt)
    if played > 1e-12:
        # Any resumed playback ends the current stall: a later stall is a
        # new rebuffering event (the sawtooth of the paper's Figure 3).
        rebuffering = False
    stall = dt - played
    if stall > 1e-12:
        if not rebuffering:
            result.rebuffer_events += 1
        rebuffering = True
        result.rebuffer_time += stall
    return t + dt, buffer - played, playing, rebuffering
