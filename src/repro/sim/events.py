"""Session event timelines: a per-event record of what the player did.

``SessionResult`` stores per-segment aggregates; for debugging controllers
and for session plots like the paper's Figure 3 (bitrate + buffer over
time) a finer record helps.  :class:`TimelineRecorder` wraps a controller
and reconstructs a typed event stream — downloads, stalls, idle waits,
abandonments, and switches — from the session result.

Usage::

    recorder = TimelineRecorder(SodaController())
    result = run_session(recorder, trace, ladder, config)
    timeline = recorder.timeline(result)
    print(timeline.render())
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..prediction.base import ThroughputSample
from .player import PlayerObservation, SessionResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from ..abr.base import AbrController

__all__ = ["EventKind", "SessionEvent", "SessionTimeline", "TimelineRecorder"]


class EventKind(enum.Enum):
    """The kinds of events a session timeline records."""

    DOWNLOAD = "download"
    SWITCH = "switch"
    STALL = "stall"
    DEFER = "defer"
    ABANDON = "abandon"
    DECISION = "decision"


@dataclass(frozen=True)
class SessionEvent:
    """One timeline event.

    Attributes:
        time: wall-clock time the event starts, seconds.
        kind: event type.
        segment: segment index the event concerns (−1 when not applicable).
        detail: human-readable payload ("rung 3 -> 4", "2.1s stall", ...).
        value: numeric payload (download duration, stall length, rung, ...).
    """

    time: float
    kind: EventKind
    segment: int
    detail: str
    value: float = 0.0


@dataclass
class SessionTimeline:
    """An ordered list of session events with query helpers."""

    events: List[SessionEvent] = field(default_factory=list)

    def of_kind(self, kind: EventKind) -> List[SessionEvent]:
        return [e for e in self.events if e.kind is kind]

    @property
    def switch_times(self) -> List[float]:
        return [e.time for e in self.of_kind(EventKind.SWITCH)]

    @property
    def stall_seconds(self) -> float:
        return sum(e.value for e in self.of_kind(EventKind.STALL))

    def between(self, start: float, end: float) -> "SessionTimeline":
        """Events in the wall-clock window [start, end)."""
        return SessionTimeline(
            [e for e in self.events if start <= e.time < end]
        )

    def render(self, limit: Optional[int] = None) -> str:
        """A readable multi-line rendering (one event per line)."""
        lines = []
        for event in self.events[: limit or len(self.events)]:
            lines.append(
                f"{event.time:9.2f}s  {event.kind.value:9s} "
                f"seg={event.segment:<4d} {event.detail}"
            )
        skipped = len(self.events) - (limit or len(self.events))
        if skipped > 0:
            lines.append(f"... {skipped} more events")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


class TimelineRecorder:
    """Wraps a controller, recording its decisions and the player's events.

    The recorder is transparent: it forwards every call (and the wrapped
    controller's predictor, so oracle wiring still works) to the inner
    controller, so QoE results are identical with or without it.  It is
    duck-typed rather than an :class:`repro.abr.base.AbrController`
    subclass to keep the sim layer free of upward imports.
    """

    def __init__(self, inner: "AbrController") -> None:
        self.inner = inner
        self.name = inner.name
        self._decisions: List[SessionEvent] = []

    @property
    def predictor(self):
        """The wrapped controller's predictor (for oracle trace wiring)."""
        return getattr(self.inner, "predictor", None)

    # -- controller protocol -------------------------------------------
    def reset(self) -> None:
        self.inner.reset()
        self._decisions = []

    def on_download(self, sample: ThroughputSample) -> None:
        self.inner.on_download(sample)

    def select_quality(self, obs: PlayerObservation):
        quality = self.inner.select_quality(obs)
        if quality is None:
            self._decisions.append(
                SessionEvent(
                    time=obs.wall_time,
                    kind=EventKind.DEFER,
                    segment=obs.segment_index,
                    detail=f"deferred at buffer {obs.buffer_level:.2f}s",
                )
            )
        else:
            self._decisions.append(
                SessionEvent(
                    time=obs.wall_time,
                    kind=EventKind.DECISION,
                    segment=obs.segment_index,
                    detail=(
                        f"rung {quality} "
                        f"({obs.ladder.bitrate(quality):.2f} Mb/s) at "
                        f"buffer {obs.buffer_level:.2f}s"
                    ),
                    value=float(quality),
                )
            )
        return quality

    # -- timeline assembly ---------------------------------------------
    def timeline(self, result: SessionResult) -> SessionTimeline:
        """Merge recorded decisions with the session result's aggregates."""
        events: List[SessionEvent] = list(self._decisions)
        prev_quality: Optional[int] = None
        for i, (start, duration, quality) in enumerate(
            zip(result.download_starts, result.download_times, result.qualities)
        ):
            events.append(
                SessionEvent(
                    time=start,
                    kind=EventKind.DOWNLOAD,
                    segment=i,
                    detail=(
                        f"{result.ladder.segment_size(quality, i):.1f} Mb in "
                        f"{duration:.2f}s "
                        f"({result.throughputs[i]:.2f} Mb/s)"
                    ),
                    value=duration,
                )
            )
            if prev_quality is not None and quality != prev_quality:
                events.append(
                    SessionEvent(
                        time=start,
                        kind=EventKind.SWITCH,
                        segment=i,
                        detail=f"rung {prev_quality} -> {quality}",
                        value=float(quality - prev_quality),
                    )
                )
            prev_quality = quality
        events.sort(key=lambda e: (e.time, e.kind.value))
        return SessionTimeline(events)
