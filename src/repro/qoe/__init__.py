"""QoE metrics and aggregation (paper §6 "Performance Metrics")."""

from .aggregate import (
    DistributionSummary,
    MeanCI,
    QoeSummary,
    distribution,
    split_by_rsd_quartile,
    summarize,
)
from .metrics import QoeMetrics, qoe_from_session

__all__ = [
    "QoeMetrics",
    "qoe_from_session",
    "MeanCI",
    "DistributionSummary",
    "distribution",
    "QoeSummary",
    "summarize",
    "split_by_rsd_quartile",
]
