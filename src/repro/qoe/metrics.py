"""QoE metrics exactly as defined in the paper's §6 ("Performance Metrics").

All three components are normalised to [0, 1]:

* **mean utility** — ``mean(log(r_i / r_min) / log(r_max / r_min))`` for the
  simulations, or normalised mean SSIM for the prototype profile;
* **rebuffering ratio** — total rebuffering time over session duration;
* **switching rate** — switch count over (segment count − 1).

The QoE score is the linear combination ``v − β·ρ_rebuf − γ·p_switch`` with
the paper's weights β = 10, γ = 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.player import SessionResult
from ..sim.video import SsimModel

__all__ = ["QoeMetrics", "qoe_from_session"]


@dataclass(frozen=True)
class QoeMetrics:
    """The three QoE components and their weighted score for one session.

    The identity fields (``controller``, ``trace``, ``seed``) name the exact
    session the metrics came from, so journal keys and failure reports can
    reference it directly instead of a bare list index.
    """

    utility: float
    rebuffer_ratio: float
    switching_rate: float
    qoe: float
    beta: float = 10.0
    gamma: float = 1.0
    controller: str = ""
    trace: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.utility <= 1.0 + 1e-9:
            raise ValueError(f"utility {self.utility} outside [0, 1]")
        if self.rebuffer_ratio < -1e-12 or self.rebuffer_ratio > 1.0 + 1e-9:
            raise ValueError(
                f"rebuffer ratio {self.rebuffer_ratio} outside [0, 1]"
            )
        if not 0.0 <= self.switching_rate <= 1.0 + 1e-9:
            raise ValueError(
                f"switching rate {self.switching_rate} outside [0, 1]"
            )


def qoe_from_session(
    result: SessionResult,
    utility: str = "log",
    ssim_model: Optional[SsimModel] = None,
    beta: float = 10.0,
    gamma: float = 1.0,
    seed: Optional[int] = None,
) -> QoeMetrics:
    """Compute the paper's QoE metrics for one finished session.

    Args:
        result: the session record.
        utility: "log" (simulations, §6.1) or "ssim" (prototype, §6.2).
        ssim_model: required when ``utility="ssim"``.
        beta: rebuffering weight in the score (paper: 10).
        gamma: switching weight in the score (paper: 1).
        seed: per-session seed recorded on the metrics for identity;
            controller and trace names are copied from ``result``.

    Raises:
        ValueError: on an empty session or a missing SSIM model.
    """
    n = result.num_segments
    if n == 0:
        raise ValueError("session downloaded no segments")

    if utility == "log":
        v = sum(result.ladder.log_utility(q) for q in result.qualities) / n
    elif utility == "ssim":
        if ssim_model is None:
            raise ValueError('utility="ssim" requires an ssim_model')
        v = (
            sum(ssim_model.normalized(b) for b in result.bitrates) / n
        )
    else:
        raise ValueError(f"unknown utility {utility!r}")

    duration = max(result.session_duration, 1e-9)
    rebuffer_ratio = min(result.rebuffer_time / duration, 1.0)
    switching_rate = result.switch_count / (n - 1) if n > 1 else 0.0

    qoe = v - beta * rebuffer_ratio - gamma * switching_rate
    return QoeMetrics(
        utility=min(v, 1.0),
        rebuffer_ratio=rebuffer_ratio,
        switching_rate=switching_rate,
        qoe=qoe,
        beta=beta,
        gamma=gamma,
        controller=result.controller,
        trace=getattr(result, "trace", ""),
        seed=seed,
    )
