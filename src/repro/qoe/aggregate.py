"""Aggregation of per-session QoE metrics: means, CIs, quartile splits.

The paper reports mean QoE components with 95% confidence intervals
(Figures 10–12) and splits the Puffer dataset into quartiles by throughput
relative standard deviation (Figure 10).  These helpers implement both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..sim.network import ThroughputTrace
from .metrics import QoeMetrics

__all__ = [
    "MeanCI",
    "QoeSummary",
    "DistributionSummary",
    "summarize",
    "distribution",
    "split_by_rsd_quartile",
]

#: two-sided 95% normal critical value
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MeanCI:
    """A sample mean with its 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @staticmethod
    def of(values: Sequence[float]) -> "MeanCI":
        n = len(values)
        if n == 0:
            raise ValueError("cannot summarise an empty sample")
        mean = sum(values) / n
        if n == 1:
            return MeanCI(mean, 0.0, 1)
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = _Z95 * math.sqrt(var / n)
        return MeanCI(mean, half, n)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


@dataclass(frozen=True)
class QoeSummary:
    """Mean ± CI of each QoE component over a set of sessions."""

    qoe: MeanCI
    utility: MeanCI
    rebuffer_ratio: MeanCI
    switching_rate: MeanCI

    @staticmethod
    def of(metrics: Sequence[QoeMetrics]) -> "QoeSummary":
        if not metrics:
            raise ValueError("cannot summarise an empty metric list")
        return QoeSummary(
            qoe=MeanCI.of([m.qoe for m in metrics]),
            utility=MeanCI.of([m.utility for m in metrics]),
            rebuffer_ratio=MeanCI.of([m.rebuffer_ratio for m in metrics]),
            switching_rate=MeanCI.of([m.switching_rate for m in metrics]),
        )


def summarize(metrics: Sequence[QoeMetrics]) -> QoeSummary:
    """Shorthand for :meth:`QoeSummary.of`."""
    return QoeSummary.of(metrics)


@dataclass(frozen=True)
class DistributionSummary:
    """Percentile view of a per-session metric (the CDF's key points).

    Mean-only comparisons hide tail behaviour — a controller can win on
    mean QoE while its worst sessions are far worse.  Papers therefore plot
    CDFs; this is the tabular equivalent.
    """

    p5: float
    p25: float
    median: float
    p75: float
    p95: float
    n: int

    @staticmethod
    def of(values: Sequence[float]) -> "DistributionSummary":
        if not values:
            raise ValueError("cannot summarise an empty sample")
        ordered = sorted(values)
        n = len(ordered)

        def pct(q: float) -> float:
            # Linear interpolation between closest ranks.
            pos = q * (n - 1)
            lo = int(math.floor(pos))
            hi = min(lo + 1, n - 1)
            frac = pos - lo
            return ordered[lo] * (1 - frac) + ordered[hi] * frac

        return DistributionSummary(
            p5=pct(0.05),
            p25=pct(0.25),
            median=pct(0.50),
            p75=pct(0.75),
            p95=pct(0.95),
            n=n,
        )

    @staticmethod
    def of_array(values: "np.ndarray") -> "DistributionSummary":
        """Vectorized constructor for large samples.

        Fleet-scale runs summarize millions of per-session values;
        :meth:`of` would first build a Python list.  This variant takes a
        NumPy array (any shape; it is flattened) and computes the same
        linear-interpolation percentiles in one ``np.quantile`` call —
        parity with :meth:`of` is regression-tested.
        """
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot summarise an empty sample")
        qs = np.quantile(arr, [0.05, 0.25, 0.5, 0.75, 0.95])
        return DistributionSummary(
            p5=float(qs[0]),
            p25=float(qs[1]),
            median=float(qs[2]),
            p75=float(qs[3]),
            p95=float(qs[4]),
            n=int(arr.size),
        )

    def __str__(self) -> str:
        return (
            f"p5={self.p5:.4f} p25={self.p25:.4f} med={self.median:.4f} "
            f"p75={self.p75:.4f} p95={self.p95:.4f} (n={self.n})"
        )


def distribution(
    metrics: Sequence[QoeMetrics], component: str = "qoe"
) -> DistributionSummary:
    """Percentiles of one QoE component across sessions.

    Args:
        metrics: per-session metrics.
        component: "qoe", "utility", "rebuffer_ratio", or "switching_rate".
    """
    valid = ("qoe", "utility", "rebuffer_ratio", "switching_rate")
    if component not in valid:
        raise ValueError(f"component must be one of {valid}")
    return DistributionSummary.of([getattr(m, component) for m in metrics])


def split_by_rsd_quartile(
    traces: Sequence[ThroughputTrace],
) -> Dict[str, List[int]]:
    """Partition trace indices into Q1..Q4 by throughput RSD (Figure 10).

    Q1 holds the most stable quarter of the sessions, Q4 the most volatile.

    Returns:
        Mapping ``{"Q1": [...], ..., "Q4": [...]}`` of indices into
        ``traces``; quartiles differ in size by at most one.
    """
    if not traces:
        raise ValueError("need at least one trace")
    order = sorted(range(len(traces)), key=lambda i: traces[i].stats().rsd)
    n = len(order)
    quartiles: Dict[str, List[int]] = {}
    bounds = [round(n * k / 4) for k in range(5)]
    for k in range(4):
        quartiles[f"Q{k + 1}"] = order[bounds[k] : bounds[k + 1]]
    return quartiles
