"""Supervised session executor: crash-contained, resumable fan-out.

The unit of work is a :class:`SessionTask` — a journal key plus a
zero-argument thunk that simulates one session and returns a plain mapping
(``metrics`` / ``counters`` / ``violations``).  :func:`execute` runs a task
list either serially in-process (``jobs=1``, the default — byte-identical
to the pre-runner behaviour) or on a pool of forked worker processes
(``jobs>1``), one process per session, so that a worker that raises,
hangs past its wall-clock ``timeout``, or dies outright (segfault, OOM
kill) marks only its own session as failed with a structured error record
while the rest of the run continues.

Completed sessions stream into an optional :class:`~repro.runner.journal.
Journal`; on resume, tasks whose keys already carry a terminal ``"ok"`` or
``"flagged"`` record are served from the journal without re-running (failed
sessions are retried, since their failure may have been environmental).

Worker processes are started with the ``fork`` start method so thunks may
close over arbitrary in-process objects (controller factories, traces);
only the returned record crosses the pipe.  On platforms without ``fork``
the executor degrades to contained serial execution.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..qoe.metrics import QoeMetrics
from .journal import Journal

__all__ = [
    "STATUS_OK",
    "STATUS_FLAGGED",
    "STATUS_FAILED",
    "SessionKey",
    "SessionRecord",
    "SessionTask",
    "execute",
    "fork_context",
    "metrics_to_dict",
    "metrics_from_dict",
    "spawn_worker",
]

#: the session completed and its record passed the invariant audit
STATUS_OK = "ok"
#: the session completed but violated at least one invariant
STATUS_FLAGGED = "flagged"
#: the session raised, timed out, or its worker died
STATUS_FAILED = "failed"

#: supervisor poll interval while workers are busy, seconds
_POLL_SECONDS = 0.02


@dataclass(frozen=True)
class SessionKey:
    """The identity one journal record is keyed by."""

    controller: str
    dataset: str
    trace: str
    seed: int
    config_hash: str

    def as_tuple(self) -> Tuple[str, str, str, int, str]:
        return (
            self.controller, self.dataset, self.trace, self.seed,
            self.config_hash,
        )

    def __str__(self) -> str:
        return (
            f"{self.controller}/{self.dataset}/{self.trace}"
            f"/s{self.seed}@{self.config_hash[:8]}"
        )


@dataclass
class SessionRecord:
    """Outcome of one session: metrics on success, a structured error not.

    Attributes:
        key: the journal key.
        status: ``"ok"``, ``"flagged"`` (invariant violation), or
            ``"failed"``.
        metrics: QoE metric fields (see :func:`metrics_to_dict`), or
            ``None`` when the session failed.
        counters: operational counters copied from the session result
            (faults injected, retries, rebuffer events, ...), plus any
            task-specific extras.
        error: for failed sessions, ``{"phase": "exception" | "timeout" |
            "crash", "type": ..., "message": ..., "traceback": ...}``.
        violations: invariant-audit findings for flagged sessions.
        elapsed: wall seconds the session took (0 for cached records).
        cached: the record was served from a resumed journal.
        decisions: opt-in per-decision demonstration rows (``[buffer,
            throughput, prev_rung, action]``; see ``log_decisions`` on
            :func:`repro.sim.player.simulate_session`), or ``None`` when
            the run did not log decisions.
    """

    key: SessionKey
    status: str = STATUS_OK
    metrics: Optional[Dict[str, Any]] = None
    counters: Dict[str, Any] = field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None
    violations: Tuple[str, ...] = ()
    elapsed: float = 0.0
    cached: bool = False
    decisions: Optional[List[List[float]]] = None

    @property
    def completed(self) -> bool:
        """Whether the session produced usable metrics (ok or flagged)."""
        return self.status in (STATUS_OK, STATUS_FLAGGED)

    def to_metrics(self) -> Optional[QoeMetrics]:
        if self.metrics is None:
            return None
        return metrics_from_dict(self.metrics)

    def summary_line(self) -> str:
        """One line naming the session and what happened to it."""
        if self.status == STATUS_FAILED:
            err = self.error or {}
            return (
                f"{self.key}: failed ({err.get('phase', 'error')}: "
                f"{err.get('type', '?')}: {err.get('message', '')})"
            )
        if self.status == STATUS_FLAGGED:
            first = self.violations[0] if self.violations else "?"
            return f"{self.key}: invariant violation ({first})"
        return f"{self.key}: ok"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "kind": "session",
            "controller": self.key.controller,
            "dataset": self.key.dataset,
            "trace": self.key.trace,
            "seed": self.key.seed,
            "config_hash": self.key.config_hash,
            "status": self.status,
            "metrics": self.metrics,
            "counters": dict(self.counters),
            "error": self.error,
            "violations": list(self.violations),
            "elapsed": self.elapsed,
        }
        # Only emitted when decision logging was on, so journals written
        # before the hook existed hash and replay unchanged.
        if self.decisions is not None:
            data["decisions"] = [list(row) for row in self.decisions]
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SessionRecord":
        key = SessionKey(
            controller=str(data.get("controller", "")),
            dataset=str(data.get("dataset", "")),
            trace=str(data.get("trace", "")),
            seed=int(data.get("seed", 0)),
            config_hash=str(data.get("config_hash", "")),
        )
        metrics = data.get("metrics")
        return SessionRecord(
            key=key,
            status=str(data.get("status", STATUS_FAILED)),
            metrics=dict(metrics) if metrics is not None else None,
            counters=dict(data.get("counters", {})),
            error=(
                dict(data["error"]) if data.get("error") is not None else None
            ),
            violations=tuple(data.get("violations", ())),
            elapsed=float(data.get("elapsed", 0.0)),
            decisions=(
                [list(row) for row in data["decisions"]]
                if data.get("decisions") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class SessionTask:
    """One unit of work: a journal key plus the thunk that runs it.

    The thunk returns a mapping with keys ``metrics`` (dict, see
    :func:`metrics_to_dict`), ``counters`` (dict of numbers), and
    ``violations`` (list of strings from the invariant auditor).
    """

    key: SessionKey
    thunk: Callable[[], Mapping[str, Any]]


# ----------------------------------------------------------------------
def metrics_to_dict(metrics: QoeMetrics) -> Dict[str, Any]:
    """JSON-safe encoding of a :class:`QoeMetrics` (round-trips exactly)."""
    return {
        "utility": metrics.utility,
        "rebuffer_ratio": metrics.rebuffer_ratio,
        "switching_rate": metrics.switching_rate,
        "qoe": metrics.qoe,
        "beta": metrics.beta,
        "gamma": metrics.gamma,
        "controller": metrics.controller,
        "trace": metrics.trace,
        "seed": metrics.seed,
    }


def metrics_from_dict(data: Mapping[str, Any]) -> QoeMetrics:
    seed = data.get("seed")
    return QoeMetrics(
        utility=float(data["utility"]),
        rebuffer_ratio=float(data["rebuffer_ratio"]),
        switching_rate=float(data["switching_rate"]),
        qoe=float(data["qoe"]),
        beta=float(data.get("beta", 10.0)),
        gamma=float(data.get("gamma", 1.0)),
        controller=str(data.get("controller", "")),
        trace=str(data.get("trace", "")),
        seed=int(seed) if seed is not None else None,
    )


# ----------------------------------------------------------------------
def _record_from_output(
    key: SessionKey, output: Mapping[str, Any], elapsed: float
) -> SessionRecord:
    violations = tuple(output.get("violations", ()))
    decisions = output.get("decisions")
    return SessionRecord(
        key=key,
        status=STATUS_FLAGGED if violations else STATUS_OK,
        metrics=dict(output.get("metrics") or {}) or None,
        counters=dict(output.get("counters", {})),
        violations=violations,
        elapsed=elapsed,
        decisions=[list(row) for row in decisions] if decisions else None,
    )


def _failure_record(
    key: SessionKey,
    phase: str,
    exc_type: str,
    message: str,
    elapsed: float,
    tb: Optional[str] = None,
) -> SessionRecord:
    return SessionRecord(
        key=key,
        status=STATUS_FAILED,
        error={
            "phase": phase,
            "type": exc_type,
            "message": message,
            "traceback": tb,
        },
        elapsed=elapsed,
    )


def _run_task_inline(task: SessionTask, contain: bool) -> SessionRecord:
    started = time.monotonic()
    try:
        output = task.thunk()
    except Exception as exc:
        if not contain:
            raise
        return _failure_record(
            task.key,
            phase="exception",
            exc_type=type(exc).__name__,
            message=str(exc),
            elapsed=time.monotonic() - started,
            tb=traceback.format_exc(),
        )
    return _record_from_output(task.key, output, time.monotonic() - started)


# ----------------------------------------------------------------------
def _child_main(conn, thunk) -> None:
    """Worker body: run one thunk, ship the outcome over the pipe."""
    try:
        output = thunk()
        payload = ("ok", dict(output))
    except BaseException as exc:  # noqa: BLE001 - full containment
        payload = (
            "error",
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        )
    try:
        conn.send(payload)
    finally:
        conn.close()


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` without one.

    ``fork`` is what lets workers close over arbitrary in-process objects
    (controller factories, decision tables, traces) — nothing is pickled
    at spawn time.  Both this executor and the sharded decision service
    (:mod:`repro.service.shard`) build their process pools on it.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def spawn_worker(main, args=(), duplex: bool = False):
    """Fork one daemon worker wired to this process by a pipe.

    Args:
        main: worker entry point; called as ``main(conn, *args)`` in the
            child with the child end of the pipe.
        args: extra positional arguments (inherited via fork, not
            pickled — closures over live objects are fine).
        duplex: whether the pipe is bidirectional (request/response
            workers) or child-to-parent only (one-shot result workers).

    Returns:
        ``(process, parent_conn)``, or ``None`` when the platform has no
        ``fork`` start method and the caller must degrade to in-process
        execution.
    """
    ctx = fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX platforms
        return None
    parent_conn, child_conn = ctx.Pipe(duplex=duplex)
    proc = ctx.Process(target=main, args=(child_conn, *args), daemon=True)
    proc.start()
    child_conn.close()
    return proc, parent_conn


def _execute_pool(
    tasks: Sequence[SessionTask],
    indices: Sequence[int],
    jobs: int,
    timeout: Optional[float],
    on_done: Callable[[int, SessionRecord], None],
) -> None:
    """Run ``tasks[i] for i in indices`` on up to ``jobs`` forked workers."""
    if fork_context() is None:  # pragma: no cover - non-POSIX fallback
        for i in indices:
            on_done(i, _run_task_inline(tasks[i], contain=True))
        return

    pending = deque(indices)
    active: Dict[int, Tuple[Any, Any, float]] = {}
    try:
        while pending or active:
            while pending and len(active) < jobs:
                i = pending.popleft()
                proc, parent_conn = spawn_worker(
                    _child_main, (tasks[i].thunk,)
                )
                active[i] = (proc, parent_conn, time.monotonic())

            finished: List[Tuple[int, SessionRecord]] = []
            now = time.monotonic()
            for i, (proc, conn, started) in active.items():
                elapsed = now - started
                record: Optional[SessionRecord] = None
                if conn.poll(0):
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        status, payload = None, None
                    proc.join(timeout=5.0)
                    if status == "ok":
                        record = _record_from_output(
                            tasks[i].key, payload, elapsed
                        )
                    elif status == "error":
                        record = _failure_record(
                            tasks[i].key,
                            phase="exception",
                            exc_type=payload.get("type", "Exception"),
                            message=payload.get("message", ""),
                            elapsed=elapsed,
                            tb=payload.get("traceback"),
                        )
                    else:
                        record = _failure_record(
                            tasks[i].key,
                            phase="crash",
                            exc_type="WorkerCrash",
                            message="worker closed its pipe without a result",
                            elapsed=elapsed,
                        )
                elif not proc.is_alive():
                    proc.join(timeout=5.0)
                    record = _failure_record(
                        tasks[i].key,
                        phase="crash",
                        exc_type="WorkerCrash",
                        message=(
                            f"worker died with exit code {proc.exitcode} "
                            f"before reporting a result"
                        ),
                        elapsed=elapsed,
                    )
                elif timeout is not None and elapsed > timeout:
                    proc.kill()
                    proc.join(timeout=5.0)
                    record = _failure_record(
                        tasks[i].key,
                        phase="timeout",
                        exc_type="SessionTimeout",
                        message=(
                            f"session exceeded its {timeout:.1f}s wall-clock "
                            f"budget and was killed"
                        ),
                        elapsed=elapsed,
                    )
                if record is not None:
                    finished.append((i, record))

            if not finished:
                time.sleep(_POLL_SECONDS)
                continue
            for i, record in finished:
                proc, conn, _ = active.pop(i)
                conn.close()
                on_done(i, record)
    finally:
        for proc, conn, _ in active.values():  # pragma: no cover - cleanup
            proc.kill()
            proc.join(timeout=5.0)
            conn.close()


# ----------------------------------------------------------------------
def execute(
    tasks: Sequence[SessionTask],
    jobs: int = 1,
    timeout: Optional[float] = None,
    contain: bool = True,
    journal: Optional[Journal] = None,
) -> List[SessionRecord]:
    """Run every task, returning records in task order.

    Args:
        tasks: the sessions to run.
        jobs: worker processes; ``1`` runs serially in-process (no fork).
        timeout: per-session wall-clock budget, enforced (by killing the
            worker) only when ``jobs > 1``.
        contain: with ``jobs == 1``, whether a raising thunk becomes a
            failed record (``True``) or propagates (``False``, the legacy
            serial behaviour).  Pooled execution always contains.
        journal: completed sessions are flushed here as they finish; tasks
            already journaled as ``ok``/``flagged`` are served from it.

    Returns:
        One :class:`SessionRecord` per task, aligned with ``tasks``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    records: List[Optional[SessionRecord]] = [None] * len(tasks)

    todo: List[int] = []
    for i, task in enumerate(tasks):
        cached = (
            journal.cached(task.key.as_tuple()) if journal is not None else None
        )
        if cached is not None:
            record = SessionRecord.from_dict(cached)
            if record.completed:
                record.cached = True
                records[i] = record
                continue
        todo.append(i)

    def finish(i: int, record: SessionRecord) -> None:
        records[i] = record
        if journal is not None:
            journal.record(record.to_dict())

    if jobs == 1:
        for i in todo:
            finish(i, _run_task_inline(tasks[i], contain=contain))
    elif todo:
        _execute_pool(tasks, todo, jobs, timeout, finish)

    return [r for r in records if r is not None]
