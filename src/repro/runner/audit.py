"""Invariant auditor: validate a finished session against conservation laws.

A :class:`~repro.sim.player.SessionResult` is the ground truth every QoE
number is derived from, so a corrupted one (a buggy controller mutating the
record, a miscounting fault hook, bit-rot in a resumed journal) silently
poisons aggregates.  The auditor re-derives what the simulator guarantees
and reports every violation as a human-readable string; the experiment
runner journals violations (status ``"flagged"``) instead of silently
aggregating the session.

Checked invariants:

* **time conservation** — ``startup_delay + rebuffer_time + video_played``
  equals ``wall_duration``, where ``video_played`` is the buffer drained
  over the session (``num_segments * segment_duration − final buffer``);
* **buffer trajectory** — every recorded buffer level is non-negative and
  (when the player config is known) never exceeds the buffer capacity;
* **record shape** — the five per-segment series have equal length, rungs
  lie inside the ladder, download start times are non-decreasing, and
  durations are non-negative;
* **QoE recomputability** — the session's QoE score equals
  ``utility − β·rebuffer_ratio − γ·switching_rate`` for its own components,
  and the ratio/rate components match the raw session record;
* **fault accounting** — the session's fault counters agree with the
  :class:`~repro.faults.FaultPlan` that drove it (``faults_injected`` equals
  the plan's injection count; without a plan or download timeout there is
  nothing to retry).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..qoe.metrics import QoeMetrics
from ..sim.player import PlayerConfig, SessionResult

__all__ = ["audit_session"]


def audit_session(
    result: SessionResult,
    metrics: Optional[QoeMetrics] = None,
    config: Optional[PlayerConfig] = None,
    faults: Optional[object] = None,
    tolerance: float = 1e-6,
) -> List[str]:
    """Return every invariant violated by ``result`` (empty = clean).

    Args:
        result: the finished session record.
        metrics: the QoE metrics computed from ``result``, enabling the
            recomputability check.
        config: the player configuration the session ran under, enabling
            the buffer-capacity and retry checks.
        faults: the fault hook that drove the session (anything exposing an
            ``injected`` counter, e.g. a :class:`~repro.faults.FaultPlan`).
        tolerance: relative tolerance for float comparisons.
    """
    violations: List[str] = []
    n = result.num_segments

    # ------------------------------------------------------------------
    # Record shape.
    # ------------------------------------------------------------------
    series = {
        "download_times": result.download_times,
        "download_starts": result.download_starts,
        "throughputs": result.throughputs,
        "buffer_levels": result.buffer_levels,
    }
    for name, values in series.items():
        if len(values) != n:
            violations.append(
                f"series length mismatch: {name} has {len(values)} entries "
                f"for {n} segments"
            )
    levels = result.ladder.levels
    bad_rungs = [q for q in result.qualities if not 0 <= q < levels]
    if bad_rungs:
        violations.append(
            f"rung(s) outside the {levels}-level ladder: {bad_rungs[:5]}"
        )
    if any(dt < 0 or not math.isfinite(dt) for dt in result.download_times):
        violations.append("negative or non-finite download time")
    starts = result.download_starts
    if any(b < a - 1e-9 for a, b in zip(starts, starts[1:])):
        violations.append("download start times are not non-decreasing")

    for name, value in (
        ("rebuffer_time", result.rebuffer_time),
        ("startup_delay", result.startup_delay),
        ("wall_duration", result.wall_duration),
        ("idle_time", result.idle_time),
    ):
        if value < 0 or not math.isfinite(value):
            violations.append(f"{name} is negative or non-finite: {value!r}")
    for name, value in (
        ("rebuffer_events", result.rebuffer_events),
        ("abandonments", result.abandonments),
        ("faults_injected", result.faults_injected),
        ("retries", result.retries),
        ("fallback_decisions", result.fallback_decisions),
    ):
        if value < 0:
            violations.append(f"counter {name} is negative: {value!r}")
    if result.rebuffer_time > 1e-9 and result.rebuffer_events == 0:
        violations.append(
            f"rebuffer_time {result.rebuffer_time:.3f}s with zero "
            f"rebuffer events"
        )

    # ------------------------------------------------------------------
    # Buffer trajectory.
    # ------------------------------------------------------------------
    if result.buffer_levels:
        lowest = min(result.buffer_levels)
        if lowest < -1e-9:
            violations.append(f"negative buffer level: {lowest:.6f}s")
        if config is not None:
            cap = config.max_buffer + tolerance * max(1.0, config.max_buffer)
            highest = max(result.buffer_levels)
            if highest > cap:
                violations.append(
                    f"buffer level {highest:.6f}s exceeds capacity "
                    f"{config.max_buffer:.6f}s"
                )

    # ------------------------------------------------------------------
    # Time conservation: wall time = startup + rebuffering + video played.
    # ------------------------------------------------------------------
    if n > 0 and len(result.buffer_levels) == n:
        final_buffer = result.buffer_levels[-1]
        played = n * result.ladder.segment_duration - final_buffer
        expected_wall = result.startup_delay + result.rebuffer_time + played
        slack = tolerance * max(1.0, result.wall_duration)
        if abs(expected_wall - result.wall_duration) > slack:
            violations.append(
                f"time conservation: startup {result.startup_delay:.6f} + "
                f"rebuffer {result.rebuffer_time:.6f} + played "
                f"{played:.6f} = {expected_wall:.6f}s but wall_duration is "
                f"{result.wall_duration:.6f}s"
            )

    # ------------------------------------------------------------------
    # QoE recomputability.
    # ------------------------------------------------------------------
    if metrics is not None:
        recomputed = (
            metrics.utility
            - metrics.beta * metrics.rebuffer_ratio
            - metrics.gamma * metrics.switching_rate
        )
        if abs(recomputed - metrics.qoe) > tolerance * max(1.0, abs(recomputed)):
            violations.append(
                f"QoE {metrics.qoe:.9f} does not equal its components "
                f"(utility − β·rebuf − γ·switch = {recomputed:.9f})"
            )
        if n > 0:
            duration = max(result.session_duration, 1e-9)
            ratio = min(result.rebuffer_time / duration, 1.0)
            if abs(ratio - metrics.rebuffer_ratio) > tolerance:
                violations.append(
                    f"rebuffer ratio {metrics.rebuffer_ratio:.9f} does not "
                    f"match the session record ({ratio:.9f})"
                )
            rate = result.switch_count / (n - 1) if n > 1 else 0.0
            if abs(rate - metrics.switching_rate) > tolerance:
                violations.append(
                    f"switching rate {metrics.switching_rate:.9f} does not "
                    f"match the session record ({rate:.9f})"
                )

    # ------------------------------------------------------------------
    # Fault accounting.
    # ------------------------------------------------------------------
    injected = getattr(faults, "injected", None)
    if injected is not None and result.faults_injected != injected:
        violations.append(
            f"faults_injected {result.faults_injected} disagrees with the "
            f"fault plan's count {injected}"
        )
    if faults is None and result.faults_injected != 0:
        violations.append(
            f"faults_injected {result.faults_injected} without a fault plan"
        )
    no_timeout = config is not None and config.download_timeout is None
    if faults is None and no_timeout and result.retries != 0:
        violations.append(
            f"{result.retries} retries with no fault plan and no download "
            f"timeout"
        )

    return violations
