"""Supervised experiment runner: crash containment, journaling, resume.

``repro.runner`` is the orchestration layer above the session simulator:
it fans session work out to a pool of forked worker processes with
per-session wall-clock timeouts and full crash containment, journals every
completed session to an atomic JSONL ledger, resumes interrupted runs by
replaying that ledger (refusing mismatched configurations), and audits
every finished session against the simulator's conservation laws.

The analysis layer (``run_suite``, ``sweep_fault_intensity``) and the
``compare``/``robustness`` CLI subcommands are wired through this package;
``jobs=1`` without a journal preserves the legacy serial in-process path.
"""

from .audit import audit_session
from .executor import (
    STATUS_FAILED,
    STATUS_FLAGGED,
    STATUS_OK,
    SessionKey,
    SessionRecord,
    SessionTask,
    execute,
    fork_context,
    metrics_from_dict,
    metrics_to_dict,
    spawn_worker,
)
from .journal import (
    ConfigMismatchError,
    Journal,
    JournalError,
    RunManifest,
    canonical_json,
    config_hash,
    iter_records,
)

__all__ = [
    "audit_session",
    "STATUS_OK",
    "STATUS_FLAGGED",
    "STATUS_FAILED",
    "SessionKey",
    "SessionRecord",
    "SessionTask",
    "execute",
    "fork_context",
    "spawn_worker",
    "metrics_to_dict",
    "metrics_from_dict",
    "Journal",
    "JournalError",
    "ConfigMismatchError",
    "RunManifest",
    "canonical_json",
    "config_hash",
    "iter_records",
]
