"""Durable run journal: a JSONL ledger of every completed session.

A journal file is a manifest line followed by one JSON line per finished
session, keyed by ``(controller, dataset, trace, seed, config_hash)``.
Every flush rewrites the whole file to a temporary sibling, fsyncs it, and
atomically renames it over the journal path — a crash (including SIGKILL)
at any instant leaves either the previous complete journal or the new one,
never a torn line.

The manifest captures the config hash (a SHA-256 digest of the canonical
JSON of the experiment spec), the package version, and the spec itself
(which carries the seeds).  ``Journal.open(..., resume=True)`` replays an
existing journal, refuses a config-hash mismatch with
:class:`ConfigMismatchError`, and exposes the completed records so the
executor can skip them.

Journals can optionally be gzip-compressed (million-record fleet journals
are large): pass ``compress=True`` or use a ``.gz`` path, and reads detect
the gzip magic bytes transparently, so a compressed journal resumes exactly
like a plain one.

Test hook: when the environment variable ``REPRO_JOURNAL_KILL_AFTER`` is a
positive integer *n*, the process SIGKILLs itself immediately after the
*n*-th session record of the current process has been flushed.  This is how
the kill-and-resume tests simulate a hard mid-run crash deterministically.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import signal
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "JournalError",
    "ConfigMismatchError",
    "RunManifest",
    "Journal",
    "canonical_json",
    "config_hash",
    "iter_records",
]

#: test-only crash hook, see module docstring
_KILL_ENV = "REPRO_JOURNAL_KILL_AFTER"


class JournalError(RuntimeError):
    """The journal file is unusable (missing manifest, corrupt line, ...)."""


class ConfigMismatchError(JournalError):
    """``--resume`` was pointed at a journal written under a different config."""


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_hash(spec: Mapping[str, Any]) -> str:
    """Stable 16-hex-digit digest of an experiment spec."""
    digest = hashlib.sha256(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()[:16]


def _is_gzip(path: str) -> bool:
    """True when ``path`` starts with the gzip magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(2) == b"\x1f\x8b"
    except OSError:
        return False


def iter_records(path: str, kind: Optional[str] = None):
    """Stream a journal's JSON lines without loading the file into memory.

    Yields one parsed dict per line, in file order — the manifest line
    included (``kind == "manifest"``) unless ``kind`` filters it out.
    Gzip-compressed journals are detected by their magic bytes exactly
    like :meth:`Journal.load`, and the same torn-line rule applies: a
    corrupt *final* line is dropped silently, a corrupt line anywhere
    else raises :class:`JournalError`.

    This is the reader dataset extraction (``repro.learn.dataset``) is
    built on: multi-hundred-MB fleet journals stream through it one
    record at a time.

    Args:
        path: journal file (plain or gzip JSONL).
        kind: when set, only records whose ``"kind"`` equals it are
            yielded (e.g. ``"session"``).

    Raises:
        JournalError: unreadable gzip or a corrupt non-final line.
        OSError: the file cannot be opened.
    """
    if _is_gzip(path):
        handle = gzip.open(path, "rt", encoding="utf-8")
    else:
        handle = open(path, "r", encoding="utf-8")
    with handle:
        lineno = 0
        try:
            for line in handle:
                lineno += 1
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    # Only the very last line may be torn (a non-atomic
                    # writer mid-flush); anything after it is corruption.
                    torn_at = lineno
                    for extra in handle:
                        if extra.strip():
                            raise JournalError(
                                f"{path}:{torn_at}: corrupt journal line: "
                                f"{exc}"
                            ) from exc
                    break
                if kind is None or data.get("kind") == kind:
                    yield data
        except (OSError, EOFError) as exc:
            raise JournalError(
                f"{path}: corrupt gzip journal: {exc}"
            ) from exc


def _key_tuple(record: Mapping[str, Any]) -> Tuple[str, str, str, int, str]:
    """The journal key of one session record dict."""
    return (
        str(record.get("controller", "")),
        str(record.get("dataset", "")),
        str(record.get("trace", "")),
        int(record.get("seed", 0)),
        str(record.get("config_hash", "")),
    )


@dataclass(frozen=True)
class RunManifest:
    """Identity of one experiment run, written as the journal's first line."""

    config_hash: str
    version: str
    created: float
    spec: Mapping[str, Any] = field(default_factory=dict)

    @staticmethod
    def for_spec(
        spec: Mapping[str, Any], version: Optional[str] = None
    ) -> "RunManifest":
        if version is None:
            from .. import __version__

            version = __version__
        return RunManifest(
            config_hash=config_hash(spec),
            version=version,
            created=time.time(),
            spec=dict(spec),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "manifest",
            "config_hash": self.config_hash,
            "version": self.version,
            "created": self.created,
            "spec": dict(self.spec),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunManifest":
        return RunManifest(
            config_hash=str(data.get("config_hash", "")),
            version=str(data.get("version", "")),
            created=float(data.get("created", 0.0)),
            spec=dict(data.get("spec", {})),
        )


class Journal:
    """A crash-safe JSONL ledger of completed session records.

    Use :meth:`open` (or :meth:`fresh`) rather than the constructor.  Records
    are plain dicts carrying at least the five key fields (``controller``,
    ``dataset``, ``trace``, ``seed``, ``config_hash``) plus a ``status``;
    the executor owns their full schema (see
    :class:`repro.runner.executor.SessionRecord`).
    """

    def __init__(
        self,
        path: str,
        manifest: RunManifest,
        records: Optional[Mapping[Tuple, Mapping[str, Any]]] = None,
        compress: Optional[bool] = None,
    ) -> None:
        self.path = str(path)
        self.manifest = manifest
        # None = infer from the path suffix; reads never need this flag
        # (the gzip magic is detected), it only controls how flushes write.
        if compress is None:
            compress = self.path.endswith(".gz")
        self.compress = bool(compress)
        self._records: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict(
            (k, dict(v)) for k, v in (records or {}).items()
        )
        self._appended = 0  # session records flushed by THIS process

    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls,
        path: str,
        spec: Mapping[str, Any],
        version: Optional[str] = None,
        compress: Optional[bool] = None,
    ) -> "Journal":
        """Start a new journal, overwriting ``path`` if it exists."""
        journal = cls(path, RunManifest.for_spec(spec, version),
                      compress=compress)
        journal.flush()  # the manifest lands on disk before any work runs
        return journal

    @classmethod
    def open(
        cls,
        path: str,
        spec: Mapping[str, Any],
        resume: bool = False,
        version: Optional[str] = None,
        compress: Optional[bool] = None,
    ) -> "Journal":
        """Open a journal for an experiment described by ``spec``.

        Without ``resume`` (or when ``path`` does not exist yet) a fresh
        journal is started.  With ``resume`` the existing file is replayed:
        its manifest must carry the same config hash as ``spec`` or
        :class:`ConfigMismatchError` is raised, and previously completed
        records become available through :meth:`cached`.
        """
        if not resume or not os.path.exists(path):
            return cls.fresh(path, spec, version, compress=compress)
        if compress is None:
            # keep flushing in whatever format the existing file uses
            compress = _is_gzip(path)
        manifest_dict, record_dicts = cls.load(path)
        if manifest_dict is None:
            raise JournalError(f"{path}: no manifest line; cannot resume")
        want = config_hash(spec)
        have = str(manifest_dict.get("config_hash", ""))
        if have != want:
            raise ConfigMismatchError(
                f"{path}: journal was written under config {have}, current "
                f"config is {want}; refusing to resume (use a new journal "
                f"path or rerun with the original configuration)"
            )
        records: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        for record in record_dicts:
            records[_key_tuple(record)] = dict(record)
        return cls(path, RunManifest.from_dict(manifest_dict), records,
                   compress=compress)

    # ------------------------------------------------------------------
    @staticmethod
    def load(
        path: str,
    ) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Parse a journal file into ``(manifest, session_records)``.

        A corrupt *final* line is tolerated (dropped): it can only be the
        product of a non-atomic writer, and resuming past it is safe.  A
        corrupt line anywhere else raises :class:`JournalError`.

        Gzip-compressed journals are detected by their magic bytes and
        read transparently, whatever the file's suffix.
        """
        manifest: Optional[Dict[str, Any]] = None
        records: List[Dict[str, Any]] = []
        if _is_gzip(path):
            try:
                with gzip.open(path, "rt", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            except (OSError, EOFError) as exc:
                raise JournalError(
                    f"{path}: corrupt gzip journal: {exc}"
                ) from exc
        else:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn trailing line: drop it
                raise JournalError(
                    f"{path}:{lineno}: corrupt journal line: {exc}"
                ) from exc
            if data.get("kind") == "manifest":
                manifest = data
            else:
                records.append(data)
        return manifest, records

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[Dict[str, Any]]:
        """All session records currently in the journal, oldest first."""
        return [dict(r) for r in self._records.values()]

    def cached(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The journaled record for ``key``, if one exists."""
        record = self._records.get(tuple(key))
        return dict(record) if record is not None else None

    def record(self, record: Mapping[str, Any]) -> None:
        """Append (or replace) one session record and flush atomically."""
        self._records[_key_tuple(record)] = dict(record)
        self._appended += 1
        self.flush()
        self._maybe_kill()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write-temp-fsync-rename the full journal (gzipped if enabled)."""
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp",
            dir=directory,
        )
        lines = [json.dumps(self.manifest.to_dict())]
        lines.extend(json.dumps(r) for r in self._records.values())
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        try:
            with os.fdopen(fd, "wb") as handle:
                if self.compress:
                    # mtime=0 keeps the bytes a pure function of content
                    with gzip.GzipFile(
                        fileobj=handle, mode="wb", mtime=0
                    ) as zipped:
                        zipped.write(payload)
                else:
                    handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        try:  # make the rename itself durable where the platform allows
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    def _maybe_kill(self) -> None:
        """Honour the REPRO_JOURNAL_KILL_AFTER test hook (see module doc)."""
        raw = os.environ.get(_KILL_ENV, "")
        try:
            threshold = int(raw) if raw else 0
        except ValueError:
            threshold = 0
        if threshold > 0 and self._appended >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Journal {self.path!r} config={self.manifest.config_hash} "
            f"records={len(self._records)}>"
        )
