"""FastMPC-style offline decision tables (the §5.3 alternative).

FastMPC [17] sidesteps online optimisation by enumerating all combinations
of discretised throughput, buffer level, and previous bitrate offline and
shipping a lookup table.  The paper argues (§5.3) this is neither flexible
nor scalable: the table is specific to one ladder / buffer cap / segment
length and must be rebuilt whenever anything changes — untenable for live
streaming.

This module implements the approach faithfully so the trade-off can be
*measured*: :class:`DecisionTable` precomputes SODA's decision on a grid
and answers lookups by nearest-neighbour; the ablation bench compares its
build cost, memory, and off-grid decision accuracy against Algorithm 1's
on-the-fly solve.
"""

from __future__ import annotations

import dataclasses
import glob
import json
import math
import os
import shutil
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.video import BitrateLadder
from .controller import SodaController
from .fastpath import solve_brute_force_batch, solve_monotonic_batch
from .objective import SodaConfig

__all__ = ["DecisionTable", "TableFormatError", "TablePublisher"]

#: table cell meaning "defer / no download"
_DEFER = -1

#: file magic of the memory-mapped table format (version byte included)
_MMAP_MAGIC = b"SODATBL\x01"


class TableFormatError(ValueError):
    """A decision-table file is missing, corrupt, or truncated.

    Subclasses :class:`ValueError` so the CLI's operational-error handler
    turns it into a one-line exit-2 message instead of a traceback.
    """


@dataclass(frozen=True)
class TableStats:
    """Build statistics of a decision table.

    Attributes:
        cells: number of precomputed decisions.
        build_seconds: wall time spent building.
        memory_bytes: size of the decision array.
    """

    cells: int
    build_seconds: float
    memory_bytes: int


class DecisionTable:
    """A precomputed (throughput × buffer × previous-rung) decision grid.

    Args:
        ladder: the encoding ladder the table is specific to.
        max_buffer: the buffer cap the table is specific to.
        config: SODA tuning baked into the table.
        throughput_points: log-spaced throughput grid size.
        buffer_points: linear buffer grid size.
        throughput_range: (min, max) throughput covered, Mb/s; defaults to
            0.25× the lowest rung .. 4× the highest rung.

    Raises:
        ValueError: on degenerate grid sizes or ranges.
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        config: Optional[SodaConfig] = None,
        throughput_points: int = 48,
        buffer_points: int = 48,
        throughput_range: Optional[Sequence[float]] = None,
        version: int = 1,
    ) -> None:
        if throughput_points < 2 or buffer_points < 2:
            raise ValueError("grids need at least two points per axis")
        if max_buffer <= 0:
            raise ValueError("max_buffer must be positive")
        if version < 1:
            raise ValueError("table version must be at least 1")
        self.ladder = ladder
        self.max_buffer = max_buffer
        self.config = config or SodaConfig()
        #: monotonic publish version; rollouts compare these across shards
        self.version = version

        if throughput_range is None:
            throughput_range = (
                0.25 * ladder.min_bitrate,
                4.0 * ladder.max_bitrate,
            )
        lo, hi = throughput_range
        if not 0 < lo < hi:
            raise ValueError("need 0 < throughput lo < hi")
        self._tput_grid = np.geomspace(lo, hi, throughput_points)
        self._buffer_grid = np.linspace(0.0, max_buffer, buffer_points)
        # previous rung axis: index 0 encodes "no previous rung".
        self._table = np.full(
            (throughput_points, buffer_points, ladder.levels + 1),
            _DEFER,
            dtype=np.int8,
        )
        self.stats = self._build()

    # ------------------------------------------------------------------
    def _build(self) -> TableStats:
        start = time.perf_counter()
        controller = SodaController(config=self.config)
        if self.config.solver_backend == "fast":
            self._build_batched(controller)
        else:
            for ti, tput in enumerate(self._tput_grid):
                for bi, buf in enumerate(self._buffer_grid):
                    for prev_axis in range(self.ladder.levels + 1):
                        prev = None if prev_axis == 0 else prev_axis - 1
                        decision = controller.decide(
                            float(tput), float(buf), prev, self.ladder,
                            self.max_buffer,
                        )
                        self._table[ti, bi, prev_axis] = (
                            _DEFER if decision is None else decision
                        )
        elapsed = time.perf_counter() - start
        return TableStats(
            cells=int(self._table.size),
            build_seconds=elapsed,
            memory_bytes=int(self._table.nbytes),
        )

    def _build_batched(self, controller: SodaController) -> None:
        """Fast-backend build: one batch solve per (throughput, prev) pair.

        The candidate bundle is shared across the whole buffer axis, so the
        expensive part of each cell shrinks to one vectorized scoring pass;
        the per-cell fallback rules are applied by the very same
        ``SodaController._finalize`` the online path uses, keeping the table
        cell-for-cell identical to the per-cell ``decide`` loop.
        """
        cfg = self.config
        solve_batch = (
            solve_brute_force_batch if cfg.use_brute_force
            else solve_monotonic_batch
        )
        buffers = [float(b) for b in self._buffer_grid]
        for ti, tput in enumerate(self._tput_grid):
            omega = np.full(cfg.horizon, max(float(tput), 0.0))
            caps = [
                controller._first_step_cap(
                    float(omega[0]), buf, self.max_buffer, self.ladder, cfg
                )
                for buf in buffers
            ]
            for prev_axis in range(self.ladder.levels + 1):
                prev = None if prev_axis == 0 else prev_axis - 1
                plans = solve_batch(
                    omega, buffers, prev, self.ladder, cfg, self.max_buffer,
                    first_caps=caps,
                )
                for bi, (plan, buf, cap) in enumerate(
                    zip(plans, buffers, caps)
                ):
                    decision = controller._finalize(
                        plan, omega, buf, prev, self.ladder,
                        self.max_buffer, cap,
                    )
                    self._table[ti, bi, prev_axis] = (
                        _DEFER if decision is None else decision
                    )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """Table dimensions: (throughput, buffer, prev-rung) axes."""
        return tuple(self._table.shape)

    @property
    def tput_grid(self) -> np.ndarray:
        """The throughput axis, Mb/s (read-only view)."""
        return self._tput_grid

    @property
    def buffer_grid(self) -> np.ndarray:
        """The buffer axis, seconds (read-only view)."""
        return self._buffer_grid

    def lookup(
        self,
        throughput: float,
        buffer_level: float,
        prev_quality: Optional[int],
    ) -> Optional[int]:
        """Nearest-neighbour decision (what FastMPC does at runtime)."""
        if throughput <= 0:
            throughput = float(self._tput_grid[0])
        ti = int(
            np.argmin(np.abs(np.log(self._tput_grid) - math.log(throughput)))
        )
        bi = int(np.argmin(np.abs(self._buffer_grid - buffer_level)))
        prev_axis = 0 if prev_quality is None else prev_quality + 1
        decision = int(self._table[ti, bi, prev_axis])
        return None if decision == _DEFER else decision

    def lookup_observation(self, obs) -> Optional[int]:
        """Answer a :class:`~repro.sim.player.PlayerObservation` lookup.

        Maps the observation onto the table axes (last measured
        throughput, buffer level, previous rung); with no history yet the
        throughput axis clamps to the grid minimum, which the table
        resolves exactly like FastMPC's cold start.  This is the tier-1
        entry point of the decision service (:mod:`repro.service`).
        """
        throughput = obs.last_throughput
        if throughput is None:
            throughput = float(self._tput_grid[0])
        return self.lookup(throughput, obs.buffer_level, obs.previous_quality)

    def lookup_batch(
        self,
        throughputs: np.ndarray,
        buffer_levels: np.ndarray,
        prev_qualities: np.ndarray,
    ) -> np.ndarray:
        """Vectorized nearest-neighbour lookup over aligned arrays.

        Args:
            throughputs: measured throughputs, Mb/s; non-finite or
                non-positive entries clamp to the grid minimum (the same
                cold-start rule as :meth:`lookup_observation`).
            buffer_levels: buffer levels, seconds; clipped into
                ``[0, max_buffer]`` (non-finite treated as empty).
            prev_qualities: previous rung per entry, ``-1`` meaning "no
                previous rung"; out-of-range entries are treated as -1.

        Returns:
            An int array of decisions aligned with the inputs, ``-1``
            encoding defer.  Cell-for-cell identical to calling
            :meth:`lookup` per entry.
        """
        tput = np.asarray(throughputs, dtype=float).copy()
        bad = ~np.isfinite(tput) | (tput <= 0)
        tput[bad] = float(self._tput_grid[0])
        buf = np.nan_to_num(
            np.asarray(buffer_levels, dtype=float), nan=0.0,
            posinf=self.max_buffer, neginf=0.0,
        )
        buf = np.clip(buf, 0.0, self.max_buffer)
        ti = self._nearest(np.log(self._tput_grid), np.log(tput))
        bi = self._nearest(self._buffer_grid, buf)
        prev = np.asarray(prev_qualities, dtype=np.int64)
        prev = np.where(
            (prev < 0) | (prev >= self.ladder.levels), -1, prev
        )
        return self._table[ti, bi, prev + 1].astype(np.int64)

    @staticmethod
    def _nearest(grid: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Indices of the grid points nearest to ``values`` (ties low,
        matching ``np.argmin`` over absolute distances)."""
        idx = np.searchsorted(grid, values)
        lo = np.clip(idx - 1, 0, len(grid) - 1)
        hi = np.clip(idx, 0, len(grid) - 1)
        pick_lo = (values - grid[lo]) <= (grid[hi] - values)
        return np.where(pick_lo, lo, hi)

    def probe_cells(self, seed: int, count: int) -> List[int]:
        """A deterministic sample of raw cells for canary comparison.

        The same ``(seed, count)`` against the same table shape always
        reads the same cells, so two probes are comparable: a canary
        shard on a candidate table versus a baseline shard on the live
        one (defer-fraction delta), or the same shard before and after a
        rollback (cell identity).  Values are raw — ``-1`` is defer.
        """
        if count <= 0:
            return []
        rng = np.random.default_rng(seed)
        flat = rng.integers(0, self._table.size, size=count)
        return [int(c) for c in self._table.reshape(-1)[flat]]

    # ------------------------------------------------------------------
    def save_mmap(self, path: str, version: Optional[int] = None) -> None:
        """Publish the table as a single memory-mappable file.

        Layout: an 8-byte magic, a big-endian ``uint64`` header length, a
        JSON header (ladder, grids, config, shape, monotonic table
        version, CRC-32 payload checksum), then the raw ``int8`` decision
        array.  The write is atomic (temp file + rename) so a crashed
        publisher never leaves a half-written table where workers may
        find it.  ``version`` overrides (and updates) the table's own
        publish version — :class:`TablePublisher` stamps the next
        monotonic one here.
        """
        if version is not None:
            if version < 1:
                raise ValueError("table version must be at least 1")
            self.version = version
        payload = np.ascontiguousarray(self._table, dtype=np.int8).tobytes()
        header = {
            "version": 2,
            "table_version": self.version,
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
            "ladder": {
                "bitrates": list(self.ladder.bitrates),
                "segment_duration": self.ladder.segment_duration,
                "name": self.ladder.name,
                "size_variation": self.ladder.size_variation,
            },
            "max_buffer": self.max_buffer,
            "config": dataclasses.asdict(self.config),
            "tput_grid": [float(x) for x in self._tput_grid],
            "buffer_grid": [float(x) for x in self._buffer_grid],
            "shape": list(self._table.shape),
            "build_seconds": self.stats.build_seconds,
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            f.write(_MMAP_MAGIC)
            f.write(struct.pack(">Q", len(blob)))
            f.write(blob)
            f.write(payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _read_header(path: str) -> Tuple[dict, int, int]:
        """Parse the file header; returns ``(header, offset, file_size)``.

        Raises:
            TableFormatError: bad magic, unreadable file, or a header
                that does not parse.
        """
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as f:
                magic = f.read(len(_MMAP_MAGIC))
                if magic != _MMAP_MAGIC:
                    raise TableFormatError(
                        f"{path}: not a decision-table file (bad magic)"
                    )
                (hlen,) = struct.unpack(">Q", f.read(8))
                if hlen <= 0 or hlen > size:
                    raise TableFormatError(
                        f"{path}: corrupt decision-table header length"
                    )
                try:
                    header = json.loads(f.read(hlen).decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise TableFormatError(
                        f"{path}: corrupt decision-table header ({exc})"
                    ) from None
        except OSError as exc:
            raise TableFormatError(
                f"{path}: cannot read decision table ({exc})"
            ) from None
        return header, len(_MMAP_MAGIC) + 8 + hlen, size

    @classmethod
    def peek_version(cls, path: str) -> int:
        """The published table version of a file, without mapping it.

        Raises:
            TableFormatError: the file is not a decision table.
        """
        header, _offset, _size = cls._read_header(path)
        try:
            return int(header.get("table_version", 1))
        except (TypeError, ValueError):
            raise TableFormatError(
                f"{path}: corrupt decision-table version"
            ) from None

    @classmethod
    def load_mmap(cls, path: str) -> "DecisionTable":
        """Open a published table read-only with zero build cost.

        The decision array is memory-mapped, so N worker processes opening
        the same file share one copy of the pages.  Any structural problem
        (bad magic, unparsable header, truncated array, out-of-range
        cells, a payload that fails its CRC-32 checksum) raises
        :class:`TableFormatError` with a one-line message.

        Raises:
            TableFormatError: the file is not a usable decision table.
        """
        header, offset, size = cls._read_header(path)

        try:
            shape = tuple(int(x) for x in header["shape"])
            ladder_spec = header["ladder"]
            ladder = BitrateLadder(
                ladder_spec["bitrates"],
                segment_duration=ladder_spec["segment_duration"],
                name=ladder_spec.get("name", ""),
                size_variation=ladder_spec.get("size_variation", 0.0),
            )
            config = SodaConfig(**header["config"])
            tput_grid = np.asarray(header["tput_grid"], dtype=float)
            buffer_grid = np.asarray(header["buffer_grid"], dtype=float)
            max_buffer = float(header["max_buffer"])
            version = int(header.get("table_version", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise TableFormatError(
                f"{path}: corrupt decision-table header ({exc})"
            ) from None

        cells = int(np.prod(shape))
        if len(shape) != 3 or cells <= 0:
            raise TableFormatError(
                f"{path}: corrupt decision-table shape {shape}"
            )
        if size != offset + cells:
            raise TableFormatError(
                f"{path}: truncated decision table "
                f"(expected {offset + cells} bytes, found {size})"
            )
        if (
            shape[0] != len(tput_grid)
            or shape[1] != len(buffer_grid)
            or shape[2] != ladder.levels + 1
        ):
            raise TableFormatError(
                f"{path}: decision-table shape {shape} does not match "
                f"its grids"
            )
        table = np.memmap(
            path, dtype=np.int8, mode="r", offset=offset, shape=shape
        )
        expected_crc = header.get("crc32")
        if expected_crc is not None:
            actual = zlib.crc32(table.tobytes()) & 0xFFFFFFFF
            if actual != int(expected_crc):
                raise TableFormatError(
                    f"{path}: decision-table payload checksum mismatch "
                    f"(expected {int(expected_crc):#010x}, "
                    f"found {actual:#010x})"
                )
        if int(table.min()) < _DEFER or int(table.max()) >= ladder.levels:
            raise TableFormatError(
                f"{path}: decision table holds out-of-range cells"
            )

        self = cls.__new__(cls)
        self.ladder = ladder
        self.max_buffer = max_buffer
        self.config = config
        self.version = version
        self._tput_grid = tput_grid
        self._buffer_grid = buffer_grid
        self._table = table
        self.stats = TableStats(
            cells=cells,
            build_seconds=float(header.get("build_seconds", 0.0)),
            memory_bytes=int(table.nbytes),
        )
        return self

    def agreement_with_solver(
        self, samples: int = 2000, seed: int = 0
    ) -> float:
        """Fraction of random off-grid situations where the table matches
        an on-the-fly Algorithm 1 solve."""
        rng = np.random.default_rng(seed)
        controller = SodaController(config=self.config)
        agree = 0
        for _ in range(samples):
            tput = float(
                rng.uniform(self._tput_grid[0], self._tput_grid[-1])
            )
            buf = float(rng.uniform(0.0, self.max_buffer))
            prev_axis = int(rng.integers(0, self.ladder.levels + 1))
            prev = None if prev_axis == 0 else prev_axis - 1
            if self.lookup(tput, buf, prev) == controller.decide(
                tput, buf, prev, self.ladder, self.max_buffer
            ):
                agree += 1
        return agree / samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecisionTable v{self.version} {self._table.shape} "
            f"{self.stats.memory_bytes / 1024:.0f} KiB "
            f"built in {self.stats.build_seconds:.2f}s>"
        )


class TablePublisher:
    """Publishes versioned decision-table files beside the live one.

    The *live* file is whatever the serving fleet currently memory-maps.
    :meth:`publish` never touches it: each new table lands at
    ``<live>.v<N>`` (atomic temp-file + rename via
    :meth:`DecisionTable.save_mmap`) under the next monotonic version, so
    a rollout can canary the new file on one shard and roll back by
    simply pointing workers at the old path again.  :meth:`promote`
    atomically replaces the live file once a rollout completes, so worker
    restarts pick up the new version.

    Args:
        live_path: the table file the fleet serves from; it does not
            need to exist yet (publishing beside a missing live file
            starts at version 1).
    """

    def __init__(self, live_path: str) -> None:
        if not live_path:
            raise ValueError("live_path must be a non-empty path")
        self.live_path = live_path

    # ------------------------------------------------------------------
    def live_version(self) -> int:
        """Version of the live file; ``0`` when there is none."""
        try:
            return DecisionTable.peek_version(self.live_path)
        except TableFormatError:
            return 0

    def published(self) -> Dict[int, str]:
        """Map of published version → path among ``<live>.v*`` siblings.

        Files that are not parseable decision tables are skipped — a
        crashed publisher's leftovers never wedge the next rollout.
        """
        versions: Dict[int, str] = {}
        for path in glob.glob(glob.escape(self.live_path) + ".v*"):
            suffix = path[len(self.live_path) + 2:]
            if not suffix.isdigit():
                continue
            try:
                versions[DecisionTable.peek_version(path)] = path
            except TableFormatError:
                continue
        return versions

    def next_version(self) -> int:
        """The next monotonic version across the live file and siblings."""
        return max([self.live_version(), *self.published().keys()], default=0) + 1

    # ------------------------------------------------------------------
    def publish(self, table: DecisionTable) -> Tuple[str, int]:
        """Write ``table`` beside the live file under the next version.

        Returns ``(path, version)``.  The write is atomic and the live
        file is untouched — nothing serves the new table until a rollout
        swaps workers onto the returned path.
        """
        version = self.next_version()
        path = f"{self.live_path}.v{version}"
        table.save_mmap(path, version=version)
        return path, version

    def promote(self, path: str) -> None:
        """Atomically make a published file the live one.

        Uses a hard link + rename (same-directory, so never cross-device)
        with a copy fallback; workers already mapping the old inode keep
        their pages, while every future open — worker restarts included —
        sees the promoted version.
        """
        DecisionTable.peek_version(path)  # refuse to promote a non-table
        tmp = f"{self.live_path}.promote.{os.getpid()}"
        try:
            os.link(path, tmp)
        except OSError:
            shutil.copy2(path, tmp)
        os.replace(tmp, self.live_path)

    def unpublish(self, path: str) -> None:
        """Best-effort removal of a published (e.g. rolled-back) file."""
        try:
            os.unlink(path)
        except OSError:
            pass
