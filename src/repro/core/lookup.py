"""FastMPC-style offline decision tables (the §5.3 alternative).

FastMPC [17] sidesteps online optimisation by enumerating all combinations
of discretised throughput, buffer level, and previous bitrate offline and
shipping a lookup table.  The paper argues (§5.3) this is neither flexible
nor scalable: the table is specific to one ladder / buffer cap / segment
length and must be rebuilt whenever anything changes — untenable for live
streaming.

This module implements the approach faithfully so the trade-off can be
*measured*: :class:`DecisionTable` precomputes SODA's decision on a grid
and answers lookups by nearest-neighbour; the ablation bench compares its
build cost, memory, and off-grid decision accuracy against Algorithm 1's
on-the-fly solve.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..sim.video import BitrateLadder
from .controller import SodaController
from .fastpath import solve_brute_force_batch, solve_monotonic_batch
from .objective import SodaConfig

__all__ = ["DecisionTable"]

#: table cell meaning "defer / no download"
_DEFER = -1


@dataclass(frozen=True)
class TableStats:
    """Build statistics of a decision table.

    Attributes:
        cells: number of precomputed decisions.
        build_seconds: wall time spent building.
        memory_bytes: size of the decision array.
    """

    cells: int
    build_seconds: float
    memory_bytes: int


class DecisionTable:
    """A precomputed (throughput × buffer × previous-rung) decision grid.

    Args:
        ladder: the encoding ladder the table is specific to.
        max_buffer: the buffer cap the table is specific to.
        config: SODA tuning baked into the table.
        throughput_points: log-spaced throughput grid size.
        buffer_points: linear buffer grid size.
        throughput_range: (min, max) throughput covered, Mb/s; defaults to
            0.25× the lowest rung .. 4× the highest rung.

    Raises:
        ValueError: on degenerate grid sizes or ranges.
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        max_buffer: float,
        config: Optional[SodaConfig] = None,
        throughput_points: int = 48,
        buffer_points: int = 48,
        throughput_range: Optional[Sequence[float]] = None,
    ) -> None:
        if throughput_points < 2 or buffer_points < 2:
            raise ValueError("grids need at least two points per axis")
        if max_buffer <= 0:
            raise ValueError("max_buffer must be positive")
        self.ladder = ladder
        self.max_buffer = max_buffer
        self.config = config or SodaConfig()

        if throughput_range is None:
            throughput_range = (
                0.25 * ladder.min_bitrate,
                4.0 * ladder.max_bitrate,
            )
        lo, hi = throughput_range
        if not 0 < lo < hi:
            raise ValueError("need 0 < throughput lo < hi")
        self._tput_grid = np.geomspace(lo, hi, throughput_points)
        self._buffer_grid = np.linspace(0.0, max_buffer, buffer_points)
        # previous rung axis: index 0 encodes "no previous rung".
        self._table = np.full(
            (throughput_points, buffer_points, ladder.levels + 1),
            _DEFER,
            dtype=np.int8,
        )
        self.stats = self._build()

    # ------------------------------------------------------------------
    def _build(self) -> TableStats:
        start = time.perf_counter()
        controller = SodaController(config=self.config)
        if self.config.solver_backend == "fast":
            self._build_batched(controller)
        else:
            for ti, tput in enumerate(self._tput_grid):
                for bi, buf in enumerate(self._buffer_grid):
                    for prev_axis in range(self.ladder.levels + 1):
                        prev = None if prev_axis == 0 else prev_axis - 1
                        decision = controller.decide(
                            float(tput), float(buf), prev, self.ladder,
                            self.max_buffer,
                        )
                        self._table[ti, bi, prev_axis] = (
                            _DEFER if decision is None else decision
                        )
        elapsed = time.perf_counter() - start
        return TableStats(
            cells=int(self._table.size),
            build_seconds=elapsed,
            memory_bytes=int(self._table.nbytes),
        )

    def _build_batched(self, controller: SodaController) -> None:
        """Fast-backend build: one batch solve per (throughput, prev) pair.

        The candidate bundle is shared across the whole buffer axis, so the
        expensive part of each cell shrinks to one vectorized scoring pass;
        the per-cell fallback rules are applied by the very same
        ``SodaController._finalize`` the online path uses, keeping the table
        cell-for-cell identical to the per-cell ``decide`` loop.
        """
        cfg = self.config
        solve_batch = (
            solve_brute_force_batch if cfg.use_brute_force
            else solve_monotonic_batch
        )
        buffers = [float(b) for b in self._buffer_grid]
        for ti, tput in enumerate(self._tput_grid):
            omega = np.full(cfg.horizon, max(float(tput), 0.0))
            caps = [
                controller._first_step_cap(
                    float(omega[0]), buf, self.max_buffer, self.ladder, cfg
                )
                for buf in buffers
            ]
            for prev_axis in range(self.ladder.levels + 1):
                prev = None if prev_axis == 0 else prev_axis - 1
                plans = solve_batch(
                    omega, buffers, prev, self.ladder, cfg, self.max_buffer,
                    first_caps=caps,
                )
                for bi, (plan, buf, cap) in enumerate(
                    zip(plans, buffers, caps)
                ):
                    decision = controller._finalize(
                        plan, omega, buf, prev, self.ladder,
                        self.max_buffer, cap,
                    )
                    self._table[ti, bi, prev_axis] = (
                        _DEFER if decision is None else decision
                    )

    # ------------------------------------------------------------------
    def lookup(
        self,
        throughput: float,
        buffer_level: float,
        prev_quality: Optional[int],
    ) -> Optional[int]:
        """Nearest-neighbour decision (what FastMPC does at runtime)."""
        if throughput <= 0:
            throughput = float(self._tput_grid[0])
        ti = int(
            np.argmin(np.abs(np.log(self._tput_grid) - math.log(throughput)))
        )
        bi = int(np.argmin(np.abs(self._buffer_grid - buffer_level)))
        prev_axis = 0 if prev_quality is None else prev_quality + 1
        decision = int(self._table[ti, bi, prev_axis])
        return None if decision == _DEFER else decision

    def lookup_observation(self, obs) -> Optional[int]:
        """Answer a :class:`~repro.sim.player.PlayerObservation` lookup.

        Maps the observation onto the table axes (last measured
        throughput, buffer level, previous rung); with no history yet the
        throughput axis clamps to the grid minimum, which the table
        resolves exactly like FastMPC's cold start.  This is the tier-1
        entry point of the decision service (:mod:`repro.service`).
        """
        throughput = obs.last_throughput
        if throughput is None:
            throughput = float(self._tput_grid[0])
        return self.lookup(throughput, obs.buffer_level, obs.previous_quality)

    def agreement_with_solver(
        self, samples: int = 2000, seed: int = 0
    ) -> float:
        """Fraction of random off-grid situations where the table matches
        an on-the-fly Algorithm 1 solve."""
        rng = np.random.default_rng(seed)
        controller = SodaController(config=self.config)
        agree = 0
        for _ in range(samples):
            tput = float(
                rng.uniform(self._tput_grid[0], self._tput_grid[-1])
            )
            buf = float(rng.uniform(0.0, self.max_buffer))
            prev_axis = int(rng.integers(0, self.ladder.levels + 1))
            prev = None if prev_axis == 0 else prev_axis - 1
            if self.lookup(tput, buf, prev) == controller.decide(
                tput, buf, prev, self.ladder, self.max_buffer
            ):
                agree += 1
        return agree / samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecisionTable {self._table.shape} "
            f"{self.stats.memory_bytes / 1024:.0f} KiB "
            f"built in {self.stats.build_seconds:.2f}s>"
        )
