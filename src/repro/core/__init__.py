"""SODA core: objective, solvers, controller, offline optimal, theory."""

from .controller import SodaController
from .fastpath import (
    PlanCache,
    monotone_candidate_count,
    monotone_candidates,
    product_candidates,
    solve_brute_force_batch,
    solve_brute_force_fast,
    solve_monotonic_batch,
    solve_monotonic_fast,
)
from .lookup import DecisionTable
from .objective import (
    DistortionFunction,
    SodaConfig,
    log_distortion,
    reciprocal_distortion,
)
from .offline import (
    OfflineSolution,
    RolloutResult,
    offline_optimal,
    rollout_time_based,
)
from .tuning import TuningResult, tune_soda
from .solver import PlanResult, plan_cost, solve_brute_force, solve_monotonic
from .theory import (
    DecayConstants,
    StreamingModel,
    check_assumption_a1,
    competitive_ratio_bound,
    decay_constants,
    error_aggregate,
    fit_decay_rate,
    horizon_requirement,
    monotonic_gamma_requirement,
    regret_bound_exact,
    regret_bound_inexact,
)

__all__ = [
    "SodaController",
    "SodaConfig",
    "DecisionTable",
    "TuningResult",
    "tune_soda",
    "DistortionFunction",
    "log_distortion",
    "reciprocal_distortion",
    "PlanResult",
    "plan_cost",
    "solve_monotonic",
    "solve_brute_force",
    "PlanCache",
    "monotone_candidates",
    "monotone_candidate_count",
    "product_candidates",
    "solve_monotonic_fast",
    "solve_brute_force_fast",
    "solve_monotonic_batch",
    "solve_brute_force_batch",
    "OfflineSolution",
    "RolloutResult",
    "offline_optimal",
    "rollout_time_based",
    "StreamingModel",
    "DecayConstants",
    "check_assumption_a1",
    "decay_constants",
    "horizon_requirement",
    "regret_bound_exact",
    "competitive_ratio_bound",
    "error_aggregate",
    "regret_bound_inexact",
    "monotonic_gamma_requirement",
    "fit_decay_rate",
]
