"""Grid-search auto-tuning of SODA's weights for a target workload.

The paper fine-tunes its production baseline and tunes every simulated
baseline "to our best efforts" (§6.1.2).  This module gives SODA the same
treatment programmatically: evaluate a grid of :class:`SodaConfig`
candidates on a calibration dataset and pick the best mean QoE (or any
custom score).  Deployments with unusual ladders or buffer caps should run
this once against traces from their own population.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..qoe.aggregate import QoeSummary
from ..qoe.metrics import QoeMetrics
from ..sim.network import ThroughputTrace
from ..sim.profiles import EvaluationProfile
from ..sim.session import run_dataset
from .controller import SodaController
from .objective import SodaConfig

__all__ = ["TuningResult", "tune_soda"]

#: score used when a candidate is not overridden: mean QoE
Scorer = Callable[[QoeSummary], float]


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration."""

    config: SodaConfig
    summary: QoeSummary
    score: float


@dataclass
class TuningResult:
    """Outcome of a tuning run, ranked best first."""

    candidates: List[TuningCandidate] = field(default_factory=list)

    @property
    def best(self) -> TuningCandidate:
        if not self.candidates:
            raise ValueError("tuning produced no candidates")
        return self.candidates[0]

    def top(self, n: int = 5) -> List[TuningCandidate]:
        return self.candidates[:n]

    def render(self, n: int = 5) -> str:
        lines = ["rank  score    beta   gamma  kappa  target  eps"]
        for i, cand in enumerate(self.top(n), start=1):
            cfg = cand.config
            target = cfg.target_buffer if cfg.target_buffer is not None else -1
            lines.append(
                f"{i:>4d}  {cand.score:7.4f}  {cfg.beta:5.3f}  "
                f"{cfg.gamma:6.1f} {cfg.switch_event_cost:6.3f} "
                f"{target:7.2f} {cfg.epsilon:5.2f}"
            )
        return "\n".join(lines)


def _default_scorer(summary: QoeSummary) -> float:
    return summary.qoe.mean


def tune_soda(
    traces: Sequence[ThroughputTrace],
    profile: EvaluationProfile,
    grid: Optional[Mapping[str, Sequence]] = None,
    base_config: Optional[SodaConfig] = None,
    scorer: Optional[Scorer] = None,
    max_candidates: int = 200,
) -> TuningResult:
    """Grid-search SODA configurations on a calibration dataset.

    Args:
        traces: calibration sessions (use held-out traces for evaluation!).
        profile: the (ladder, player) setting to tune for.
        grid: mapping of :class:`SodaConfig` field names to candidate
            values; the cross product is evaluated.  Defaults to a compact
            grid over β, γ, κ, and the target buffer.
        base_config: configuration the grid overrides are applied to.
        scorer: candidate score (higher is better); mean QoE by default.
        max_candidates: safety bound on the grid size.

    Returns:
        All candidates, ranked by score descending.

    Raises:
        ValueError: on an empty dataset or an oversized grid.
    """
    if not traces:
        raise ValueError("need at least one calibration trace")
    base = base_config or SodaConfig()
    score = scorer or _default_scorer
    if grid is None:
        cap = profile.player.max_buffer
        grid = {
            "beta": [0.02, 0.05, 0.15],
            "gamma": [60.0, 150.0],
            "switch_event_cost": [0.02, 0.08],
            "target_buffer": [0.7 * cap, 0.8 * cap],
        }

    names = list(grid)
    combos = list(itertools.product(*(grid[k] for k in names)))
    if len(combos) > max_candidates:
        raise ValueError(
            f"grid has {len(combos)} candidates; cap is {max_candidates}"
        )

    candidates: List[TuningCandidate] = []
    for combo in combos:
        overrides = dict(zip(names, combo))
        config = base.with_(**overrides)
        metrics: List[QoeMetrics] = run_dataset(
            lambda config=config: SodaController(config=config),
            traces,
            profile.ladder,
            profile.player,
            utility=profile.utility,
            ssim_model=profile.ssim_model,
        )
        summary = QoeSummary.of(metrics)
        candidates.append(
            TuningCandidate(config=config, summary=summary, score=score(summary))
        )

    candidates.sort(key=lambda c: c.score, reverse=True)
    return TuningResult(candidates=candidates)
