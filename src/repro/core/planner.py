"""Continuous-action horizon planner (the theory's Equation 3).

The theoretical analysis of Appendix A works with continuous actions
``u = 1/r`` on ``[1/r_max, 1/r_min]`` and the unnormalised distortion
``v(r) = 1/r`` (so the per-interval distortion term is ``ω u²``).  This
planner solves that constrained problem numerically and is used by the
theory benches: the exponential-decay experiment (Figure 6) perturbs its
initial conditions, and the Theorem A.9 experiment compares it against its
switching-cost-only sibling.

Requires scipy (available offline); the discrete production solver in
``repro.core.solver`` has no such dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

__all__ = ["ContinuousProblem", "ContinuousPlan", "solve_continuous", "trajectory_distance"]


@dataclass(frozen=True)
class ContinuousProblem:
    """Parameters of the theoretical control problem (Equation 3).

    Attributes:
        r_min: smallest available bitrate, Mb/s.
        r_max: largest available bitrate, Mb/s.
        max_buffer: buffer capacity x_max, seconds.
        target: target buffer level x̄, seconds.
        beta: buffer-cost weight β.
        gamma: switching-cost weight γ.
        epsilon: asymmetry factor ε of the buffer cost.
        dt: interval length Δt (the theory sets Δt = 1).
    """

    r_min: float
    r_max: float
    max_buffer: float
    target: float
    beta: float
    gamma: float
    epsilon: float = 0.25
    dt: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.r_min < self.r_max:
            raise ValueError("need 0 < r_min < r_max")
        if not 0 < self.target <= self.max_buffer:
            raise ValueError("target must lie in (0, max_buffer]")
        if self.beta < 0 or self.gamma < 0:
            raise ValueError("weights must be non-negative")
        if not 0 < self.epsilon <= 1:
            raise ValueError("epsilon must be in (0, 1]")

    @property
    def u_min(self) -> float:
        return 1.0 / self.r_max

    @property
    def u_max(self) -> float:
        return 1.0 / self.r_min

    def buffer_cost(self, x: float) -> float:
        dev = self.target - x
        if x <= self.target:
            return dev * dev
        return self.epsilon * dev * dev


@dataclass(frozen=True)
class ContinuousPlan:
    """Solution of one continuous horizon problem.

    Attributes:
        actions: optimal u_t .. u_{t+K-1}.
        buffers: resulting x_t .. x_{t+K-1}.
        cost: objective value.
        converged: scipy success flag.
    """

    actions: np.ndarray
    buffers: np.ndarray
    cost: float
    converged: bool

    @property
    def bitrates(self) -> np.ndarray:
        return 1.0 / self.actions


def solve_continuous(
    omega: Sequence[float],
    x0: float,
    u_prev: float,
    problem: ContinuousProblem,
    switching_only: bool = False,
    terminal_buffer: Optional[float] = None,
) -> ContinuousPlan:
    """Solve Equation 3 over continuous actions with SLSQP.

    Args:
        omega: predicted bandwidth per interval (length K).
        x0: initial buffer level x_{t-1}.
        u_prev: previous action u_{t-1} (inverse bitrate).
        problem: cost/constraint parameters.
        switching_only: drop distortion and buffer costs — the Lemma A.10
            problem whose optimum is provably monotonic.
        terminal_buffer: optional equality constraint on the final buffer
            level (the indicator terminal cost of Algorithm 2).

    Returns:
        The optimal plan.  ``converged`` is False when SLSQP failed to
        satisfy the constraints; callers doing theory experiments should
        check it.
    """
    omega = np.asarray(omega, dtype=float)
    if omega.ndim != 1 or omega.size == 0:
        raise ValueError("omega must be a non-empty 1-D sequence")
    if np.any(omega <= 0):
        raise ValueError("the continuous planner needs positive bandwidth")
    k = omega.size
    dt = problem.dt

    def buffers_of(u: np.ndarray) -> np.ndarray:
        return x0 + np.cumsum(omega * u * dt - dt)

    def objective(u: np.ndarray) -> float:
        x = buffers_of(u)
        switching = problem.gamma * float(
            np.sum(np.diff(np.concatenate(([u_prev], u))) ** 2)
        )
        if switching_only:
            return switching
        distortion = float(np.sum(omega * u * u * dt))
        buffer_term = problem.beta * sum(problem.buffer_cost(xi) for xi in x)
        return distortion + buffer_term + switching

    bounds = [(problem.u_min, problem.u_max)] * k
    constraints = [
        {"type": "ineq", "fun": lambda u: buffers_of(u)},
        {"type": "ineq", "fun": lambda u: problem.max_buffer - buffers_of(u)},
    ]
    if terminal_buffer is not None:
        constraints.append(
            {
                "type": "eq",
                "fun": lambda u: buffers_of(u)[-1] - terminal_buffer,
            }
        )

    # Feasible-ish start: hold the buffer level (u = 1/ω).
    u_start = np.clip(1.0 / omega, problem.u_min, problem.u_max)
    result = optimize.minimize(
        objective,
        u_start,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": 500, "ftol": 1e-10},
    )
    u_opt = np.clip(result.x, problem.u_min, problem.u_max)
    return ContinuousPlan(
        actions=u_opt,
        buffers=buffers_of(u_opt),
        cost=float(objective(u_opt)),
        converged=bool(result.success),
    )


def trajectory_distance(
    plan_a: ContinuousPlan, plan_b: ContinuousPlan
) -> np.ndarray:
    """Per-step distance |x − x'| + |u − u'| between two plans (Figure 6)."""
    if plan_a.actions.shape != plan_b.actions.shape:
        raise ValueError("plans must share a horizon")
    return np.abs(plan_a.buffers - plan_b.buffers) + np.abs(
        plan_a.actions - plan_b.actions
    )
