"""Theoretical constants and bound calculators (paper §4, Appendix A).

Implements, in closed form, the quantities the paper derives:

* Assumption A.1's reachability conditions and slack δ;
* Theorem A.1's exponential-decay constants ρ and C (and Corollary A.2's
  C′ for actions);
* Theorem A.3's horizon requirement and dynamic-regret / competitive-ratio
  bounds under exact predictions;
* Theorem A.8's aggregate prediction-error term E and regret bound under
  inexact predictions;
* Theorem A.9's switching-weight requirement for the monotonic
  approximation;
* an empirical decay-rate estimator used by the Figure 6 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "StreamingModel",
    "DecayConstants",
    "check_assumption_a1",
    "decay_constants",
    "horizon_requirement",
    "regret_bound_exact",
    "competitive_ratio_bound",
    "error_aggregate",
    "regret_bound_inexact",
    "monotonic_gamma_requirement",
    "fit_decay_rate",
]


@dataclass(frozen=True)
class StreamingModel:
    """The problem parameters the theory quantifies over.

    Attributes:
        omega_min: lower bandwidth bound (Assumption A.1), Mb/s.
        omega_max: upper bandwidth bound, Mb/s.
        r_min: smallest bitrate, Mb/s.
        r_max: largest bitrate, Mb/s.
        x_max: buffer capacity, seconds.
        target: target buffer level x̄, seconds.
        beta: buffer-cost weight β.
        gamma: switching-cost weight γ.
        epsilon: buffer-cost asymmetry ε.
    """

    omega_min: float
    omega_max: float
    r_min: float
    r_max: float
    x_max: float
    target: float
    beta: float
    gamma: float
    epsilon: float

    def __post_init__(self) -> None:
        if not 0 < self.omega_min <= self.omega_max:
            raise ValueError("need 0 < omega_min <= omega_max")
        if not 0 < self.r_min < self.r_max:
            raise ValueError("need 0 < r_min < r_max")
        if self.x_max <= 0 or not 0 < self.target <= self.x_max:
            raise ValueError("need 0 < target <= x_max")
        if self.beta <= 0 or self.gamma < 0 or not 0 < self.epsilon <= 1:
            raise ValueError("invalid weights")

    @property
    def delta(self) -> float:
        """Drain slack δ: ``1 − ω_max / r_max`` (Assumption A.1)."""
        return 1.0 - self.omega_max / self.r_max


def check_assumption_a1(model: StreamingModel) -> Tuple[bool, str]:
    """Verify Assumption A.1: the buffer is always fillable and drainable.

    Returns:
        ``(holds, reason)`` — the reason explains the first failed
        condition, or confirms both hold.
    """
    fill = model.omega_min / model.r_min
    if fill < model.x_max:
        return (
            False,
            f"omega_min/r_min = {fill:.3f} < x_max = {model.x_max:.3f}: the "
            "lowest rung cannot always refill the buffer",
        )
    if model.delta <= 0:
        return (
            False,
            f"omega_max/r_max = {model.omega_max / model.r_max:.3f} >= 1: "
            "the highest rung cannot always drain the buffer",
        )
    return True, "Assumption A.1 holds"


@dataclass(frozen=True)
class DecayConstants:
    """Theorem A.1's exponential-decay constants.

    Attributes:
        rho: decay factor ρ ∈ (0, 1).
        c_state: state-perturbation coefficient C.
        c_action: action-perturbation coefficient C′ (Corollary A.2).
    """

    rho: float
    c_state: float
    c_action: float


def decay_constants(model: StreamingModel) -> DecayConstants:
    """ρ, C, C′ from Theorem A.1 / Corollary A.2.

    Raises:
        ValueError: when Assumption A.1's drain condition fails (δ ≤ 0),
            which makes the exponent undefined.
    """
    if model.delta <= 0:
        raise ValueError("Assumption A.1 fails: omega_max/r_max >= 1")
    d = math.ceil(model.x_max / model.delta)
    w = model.omega_min
    m = max(6.0 * w * (w + 3.0), 4.0 * model.x_max * (w + 8.0 * model.gamma))
    inner = 1.0 + m / (w**3 * model.epsilon * model.beta)
    base = 1.0 - 2.0 / (1.0 + math.sqrt(inner))
    rho = base ** (1.0 / (3.0 * (3.0 + d)))
    c_state = (
        (1.0 + model.omega_max) * (3.0 * model.beta * w**3 + m)
    ) / (w**3 * rho ** (3 + d))
    c_action = (
        c_state * (1.0 + rho) * model.r_min + rho
    ) / (w * model.r_min * rho)
    return DecayConstants(rho=rho, c_state=c_state, c_action=c_action)


def horizon_requirement(constants: DecayConstants) -> float:
    """Minimal prediction horizon K of Theorem A.3 (an O(1) constant)."""
    rho, c, cp = constants.rho, constants.c_state, constants.c_action
    numerator = (
        16.0 / (1.0 - rho)
        * (1.0 + (c + cp) ** 2 / (1.0 - rho))
        * (c**2 + cp**2) ** 2
    )
    return 0.25 * math.log(numerator) / math.log(1.0 / rho)


def _c1(model: StreamingModel, constants: DecayConstants) -> float:
    rho, c, cp = constants.rho, constants.c_state, constants.c_action
    w = model.omega_min
    inner = (
        2.0
        * (4.0 * model.gamma + model.beta + model.omega_max)
        * (1.0 / (1.0 - rho))
        * (1.0 + (c + cp) ** 2 / (1.0 - rho))
        * (c**2 + cp**2)
        * (4.0 + w * w)
        / (model.epsilon * model.beta * w * w)
    )
    return 8.0 * math.sqrt(inner)


def regret_bound_exact(
    model: StreamingModel,
    constants: DecayConstants,
    horizon: int,
    opt_cost: float,
) -> float:
    """Theorem A.3's dynamic-regret bound C₁ ρ^{K−1} cost(OPT)."""
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    if opt_cost < 0:
        raise ValueError("OPT cost must be non-negative")
    return _c1(model, constants) * constants.rho ** (horizon - 1) * opt_cost


def competitive_ratio_bound(
    model: StreamingModel, constants: DecayConstants, horizon: int
) -> float:
    """Theorem A.3's competitive ratio 1 + C₁ ρ^{K−1}."""
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    return 1.0 + _c1(model, constants) * constants.rho ** (horizon - 1)


def error_aggregate(
    per_lookahead_errors: Sequence[float],
    rho: float,
    horizon: int,
    n_steps: int,
) -> float:
    """Theorem 4.2's E = ρ^{2K} N + Σ_κ ρ^κ E_κ.

    Args:
        per_lookahead_errors: E_κ for κ = 1..K — the total squared error of
            predicting κ steps ahead, summed over the whole horizon.
        rho: decay factor.
        horizon: prediction horizon K.
        n_steps: problem length N.
    """
    if len(per_lookahead_errors) != horizon:
        raise ValueError("need one E_kappa per lookahead step")
    total = rho ** (2 * horizon) * n_steps
    for kappa, e in enumerate(per_lookahead_errors, start=1):
        if e < 0:
            raise ValueError("squared errors must be non-negative")
        total += rho**kappa * e
    return total


def regret_bound_inexact(
    model: StreamingModel,
    constants: DecayConstants,
    aggregate_error: float,
    opt_cost: float,
) -> float:
    """Theorem A.8's dynamic-regret bound O(√(E·OPT) + E) with constants."""
    rho, c, cp = constants.rho, constants.c_state, constants.c_action
    span = 1.0 / model.r_min - 1.0 / model.r_max
    a = 1.0 + 1.0 / model.r_min + c + cp
    b = 1.0 + model.x_max + span
    weight = 4.0 * model.gamma + model.beta + model.omega_max
    term1 = (
        2.0
        * a**2
        * b
        / (1.0 - rho) ** 1.5
        * math.sqrt(weight)
        * math.sqrt(max(aggregate_error, 0.0) * max(opt_cost, 0.0))
    )
    term2 = a**4 * b**2 * weight / (1.0 - rho) ** 3 * aggregate_error
    return term1 + term2


def monotonic_gamma_requirement(
    model: StreamingModel, omega_hat: float, horizon: int, tolerance: float
) -> float:
    """Theorem A.9's γ threshold for a λ-accurate monotonic approximation.

    Returns the smallest γ for which the optimal plan is within
    ``tolerance`` (in action space) of a monotonic plan.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    span = omega_hat * (1.0 / model.r_min**2 - 1.0 / model.r_max**2)
    buffer_span = model.beta * max(
        model.target**2, model.epsilon * (model.x_max - model.target) ** 2
    )
    return (horizon**2 / tolerance**2) * (span + buffer_span)


def fit_decay_rate(distances: Sequence[float]) -> float:
    """Estimate the geometric decay rate of a positive, decaying sequence.

    Fits ``log d_t ≈ a + t log ρ`` by least squares over the entries that
    stay above numerical noise, returning the estimated ρ.  Used by the
    Figure 6 bench to confirm the perturbation distance decays
    exponentially.
    """
    d = np.asarray(distances, dtype=float)
    mask = d > 1e-12
    if int(mask.sum()) < 2:
        return 0.0
    t = np.nonzero(mask)[0]
    logs = np.log(d[mask])
    slope = np.polyfit(t, logs, 1)[0]
    return float(math.exp(slope))
