"""SODA's cost model (paper §3.1).

The time-based formulation scores a bitrate plan with three terms per
interval of length Δt:

* **distortion** — ``v(r) * (ω Δt / r)``: encoding distortion of the video
  downloaded during the interval, where ``ω Δt / r`` is how many video
  seconds a throughput of ω delivers at bitrate r;
* **buffer** — ``β * b(x)``: an asymmetric quadratic that steers the buffer
  level toward a target x̄, with a gentler slope (ε < 1) above the target;
* **switching** — ``γ * (v(r) − v(r_prev))²``: penalises quality changes in
  distortion space, so a one-rung hop at the top of the ladder costs less
  than a one-rung hop at the bottom, matching perceptual impact.

Distortion functions are normalised to [0, 1] over the ladder so that the
weights β and γ carry the same meaning across encodings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

__all__ = ["DistortionFunction", "reciprocal_distortion", "log_distortion", "SodaConfig"]


class DistortionFunction:
    """A positive, strictly decreasing, convex distortion curve v(r).

    Attributes:
        name: identifier used in configs and tables.
        fn: maps ``(r, r_min, r_max)`` to a distortion value.
    """

    def __init__(self, name: str, fn: Callable[[float, float, float], float]):
        self.name = name
        self._fn = fn

    def __call__(self, bitrate: float, r_min: float, r_max: float) -> float:
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        return self._fn(bitrate, r_min, r_max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DistortionFunction {self.name}>"


def _reciprocal(r: float, r_min: float, r_max: float) -> float:
    # v(r) = 1/r, normalised so v(r_min) = 1.
    return r_min / r


def _log(r: float, r_min: float, r_max: float) -> float:
    # v(r) = log(r_max/r), normalised to [δ, 1]; the small floor δ keeps the
    # function strictly positive as the paper requires.
    if r_max <= r_min:
        return 1.0
    floor = 0.02
    raw = math.log(r_max / r) / math.log(r_max / r_min)
    return floor + (1.0 - floor) * raw


#: v(r) = 1/r (normalised) — the form used in the paper's theory (§4).
reciprocal_distortion = DistortionFunction("reciprocal", _reciprocal)
#: v(r) = log(r_max/r) (normalised) — the alternative discussed in App. B.
log_distortion = DistortionFunction("log", _log)

_DISTORTIONS = {
    "reciprocal": reciprocal_distortion,
    "log": log_distortion,
}


@dataclass(frozen=True)
class SodaConfig:
    """All tunables of the SODA controller.

    Attributes:
        horizon: prediction horizon K in intervals (the paper caps the
            horizon at ~10 s of wall time; with 2 s segments K = 5).
        beta: weight β of the buffer-stability cost.
        gamma: weight γ of the switching cost.
        target_buffer: target buffer level x̄ in seconds; when None, the
            controller uses 60% of the player's max buffer.
        epsilon: roll-off factor ε < 1 applied above the target.
        distortion: "reciprocal" or "log".
        switch_event_cost: κ — additional per-event term of the switching
            cost, ``c(r, r') = (v(r) − v(r'))² + κ·1[r ≠ r']`` (still
            weighted by γ).  The paper's §3.1 notes the switching cost
            choice is flexible; a pure squared cost prefers many small
            steps over one jump, while the QoE metric of §6 counts switch
            *events*, so a small κ aligns the controller with the metric.
            Set to 0 for the pure squared cost used in the theory.
        cap_one_rung_above: the §5.1 schema heuristic — never pick a
            bitrate above min{r ∈ R : r ≥ ω̂}.  Applied only below the
            target buffer level, where long commitments are risky.  Off by
            default: in our simulations the EMA predictor's volatility
            makes the cap itself a source of forced switches on cellular
            networks (see the ablation bench), while the buffer-feasibility
            terms of the objective already provide the protection.
        download_safety: second §5.1 schema guard — when the buffer is low,
            cap the rung so one segment's predicted download time
            ``L·r/ω̂`` stays below ``download_safety × buffer``.  The
            time-based model assumes each commitment lasts Δt; this guard
            covers the gap between that model and whole-segment downloads.
            Set to 0 to disable.
        use_brute_force: replace Algorithm 1 by exhaustive search (used for
            Figure 8 and ablations; exponential in K).
        solver_backend: "fast" (default) runs the NumPy-vectorized batch
            solver of :mod:`repro.core.fastpath`, which scores the same
            candidate set as the recursive reference with identical
            tie-breaking (objectives agree up to floating-point
            association); "reference" keeps the recursive solvers of
            :mod:`repro.core.solver` (and disables the plan cache) for
            differential testing and debugging.
        plan_cache: let the controller reuse plans across decisions whose
            quantized (buffer, previous rung, prediction) state matches
            (fast backend only).  See :class:`repro.core.fastpath.PlanCache`
            for the correctness envelope.
        cache_buffer_quantum: buffer quantization step (seconds) of the
            plan-cache key; 0 requires exact-state matches.
        cache_tput_quantum: per-entry prediction quantization step (Mb/s)
            of the plan-cache key; 0 requires exact-state matches.
        plan_cache_size: maximum cached plans per session (LRU beyond it).
    """

    horizon: int = 5
    beta: float = 0.05
    gamma: float = 150.0
    target_buffer: float = None  # type: ignore[assignment]
    epsilon: float = 0.05
    distortion: str = "log"
    switch_event_cost: float = 0.08
    cap_one_rung_above: bool = False
    download_safety: float = 0.5
    use_brute_force: bool = False
    solver_backend: str = "fast"
    plan_cache: bool = True
    cache_buffer_quantum: float = 0.05
    cache_tput_quantum: float = 0.05
    plan_cache_size: int = 4096

    def __post_init__(self) -> None:
        if self.horizon < 1:
            raise ValueError("horizon must be at least 1")
        if self.beta < 0 or self.gamma < 0:
            raise ValueError("weights must be non-negative")
        if not 0 < self.epsilon <= 1:
            raise ValueError("epsilon must be in (0, 1]")
        if self.distortion not in _DISTORTIONS:
            raise ValueError(
                f"unknown distortion {self.distortion!r}; "
                f"choose from {sorted(_DISTORTIONS)}"
            )
        if self.target_buffer is not None and self.target_buffer <= 0:
            raise ValueError("target buffer must be positive")
        if self.download_safety < 0:
            raise ValueError("download_safety must be non-negative")
        if self.switch_event_cost < 0:
            raise ValueError("switch_event_cost must be non-negative")
        if self.solver_backend not in ("reference", "fast"):
            raise ValueError(
                f"unknown solver backend {self.solver_backend!r}; "
                "choose 'reference' or 'fast'"
            )
        if self.cache_buffer_quantum < 0 or self.cache_tput_quantum < 0:
            raise ValueError("plan-cache quanta must be non-negative")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be at least 1")

    # ------------------------------------------------------------------
    def with_(self, **changes) -> "SodaConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def distortion_fn(self) -> DistortionFunction:
        return _DISTORTIONS[self.distortion]

    def resolve_target(self, max_buffer: float) -> float:
        """Target buffer x̄: explicit value or 80% of the buffer cap."""
        if self.target_buffer is not None:
            return min(self.target_buffer, max_buffer)
        return 0.8 * max_buffer

    # ------------------------------------------------------------------
    def buffer_cost(self, x: float, target: float) -> float:
        """b(x): asymmetric quadratic around the target level (§3.1)."""
        dev = target - x
        if x <= target:
            return dev * dev
        return self.epsilon * dev * dev

    def switching_cost(self, v_now: float, v_prev: float) -> float:
        """c(r, r_prev) = (v(r) − v(r_prev))² (+ κ per event) in v-space."""
        d = v_now - v_prev
        cost = d * d
        if self.switch_event_cost > 0 and abs(d) > 1e-12:
            cost += self.switch_event_cost
        return cost
