"""The SODA controller (paper §3.3 and §5).

``SodaController`` is the deployable, segment-based realisation of the
time-based design: Δt is set to the segment length (§5.1), predictions come
from a pluggable (by default simple) throughput predictor (§5.2), and each
decision runs Algorithm 1's monotonic search (§5.3), committing only the
first rung of the K-step plan.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..abr.base import AbrController, PlayerObservation
from ..prediction.base import ThroughputPredictor
from ..prediction.moving_average import SlidingWindowPredictor
from .fastpath import (
    PlanCache,
    SessionSolveRequest,
    _pred,
    solve_brute_force_fast,
    solve_monotonic_fast,
    solve_sessions_batch,
)
from .objective import SodaConfig
from .solver import PlanResult, solve_brute_force, solve_monotonic

__all__ = ["SodaController", "select_quality_batch"]

#: (backend, brute-force?) → solver entry point
_SOLVERS = {
    ("reference", False): solve_monotonic,
    ("reference", True): solve_brute_force,
    ("fast", False): solve_monotonic_fast,
    ("fast", True): solve_brute_force_fast,
}


class SodaController(AbrController):
    """Smoothness-optimized dynamic adaptive controller.

    Args:
        predictor: throughput predictor; defaults to the 10-second sliding
            window used in the production deployment (§6.3).  SODA is robust
            to prediction errors by design, so simple predictors suffice.
        config: weights, horizon, and solver options.

    The controller returns ``None`` (defer) when any download would overflow
    the buffer — the blank region of Figure 5 — and falls back to the lowest
    rung when the network is too slow for any feasible plan.
    """

    name = "soda"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        config: Optional[SodaConfig] = None,
    ) -> None:
        super().__init__(predictor or SlidingWindowPredictor(window_seconds=10.0))
        self.config = config or SodaConfig()
        #: last plan produced, for diagnostics and the decision-diagram bench
        self.last_plan: Optional[PlanResult] = None
        # The plan cache only serves the fast backend: "reference" exists to
        # reproduce the recursive solver's behaviour exactly, which a
        # quantized-state cache would perturb.
        self._plan_cache: Optional[PlanCache] = None
        if self.config.plan_cache and self.config.solver_backend == "fast":
            self._plan_cache = PlanCache(
                buffer_quantum=self.config.cache_buffer_quantum,
                tput_quantum=self.config.cache_tput_quantum,
                max_entries=self.config.plan_cache_size,
            )

    # ------------------------------------------------------------------
    @property
    def plan_cache_hits(self) -> int:
        """Decisions answered by the per-session plan cache."""
        return 0 if self._plan_cache is None else self._plan_cache.hits

    @property
    def plan_cache_misses(self) -> int:
        """Decisions that required a fresh horizon solve."""
        return 0 if self._plan_cache is None else self._plan_cache.misses

    def reset(self) -> None:
        """Reset predictor state and start a fresh per-session plan cache."""
        super().reset()
        if self._plan_cache is not None:
            self._plan_cache.clear()

    # ------------------------------------------------------------------
    def select_quality(self, obs: PlayerObservation) -> Optional[int]:
        omega = self._predict_vector(obs, self.config.horizon)
        # The schema caps react on the freshest signal available: EMA-style
        # predictors recover slowly after an outage, which would pin the cap
        # below the ladder for many segments; the last measured sample lifts
        # it as soon as the network actually recovers.
        cap_tput = float(omega[0])
        if obs.last_throughput is not None:
            cap_tput = max(cap_tput, obs.last_throughput)
        return self._select(
            omega,
            obs.buffer_level,
            obs.previous_quality,
            obs.ladder,
            obs.max_buffer,
            cap_tput,
        )

    def decide(
        self,
        throughput: float,
        buffer_level: float,
        prev_quality: Optional[int],
        ladder,
        max_buffer: float,
    ) -> Optional[int]:
        """Stateless single decision for a given situation.

        Used by the Figure 5 decision diagram and the Figure 8 solver-parity
        experiment, which sample (throughput, buffer, previous-rate)
        situations directly rather than running sessions.  Applies exactly
        the same fallback rules as :meth:`select_quality`.
        """
        omega = np.full(self.config.horizon, max(float(throughput), 0.0))
        return self._select(
            omega, buffer_level, prev_quality, ladder, max_buffer, omega[0]
        )

    # ------------------------------------------------------------------
    def _select(
        self,
        omega: np.ndarray,
        buffer_level: float,
        prev_quality: Optional[int],
        ladder,
        max_buffer: float,
        cap_tput: float,
    ) -> Optional[int]:
        cfg = self.config
        dt = ladder.segment_duration
        first_cap = self._first_step_cap(
            cap_tput, buffer_level, max_buffer, ladder, cfg
        )
        plan = self._solve(
            omega, buffer_level, prev_quality, ladder, max_buffer, cfg, dt,
            first_cap,
        )
        return self._finalize(
            plan, omega, buffer_level, prev_quality, ladder, max_buffer,
            first_cap,
        )

    def _finalize(
        self,
        plan: PlanResult,
        omega: np.ndarray,
        buffer_level: float,
        prev_quality: Optional[int],
        ladder,
        max_buffer: float,
        first_cap: Optional[int],
    ) -> Optional[int]:
        """Fallback rules turning a solved plan into a committed rung.

        Split out of :meth:`_select` so batch consumers (the FastMPC-style
        :class:`~repro.core.lookup.DecisionTable` build) can solve many
        situations in one kernel call and still apply byte-identical
        post-processing per cell.
        """
        cfg = self.config
        dt = ladder.segment_duration
        if plan.quality is None and cfg.horizon > 1:
            # The model sees no feasible K-step plan (e.g. a deep throughput
            # drop makes future underflow unavoidable); degrade gracefully to
            # a one-step look-ahead before applying the hard fallbacks.
            plan = self._solve(
                omega[:1], buffer_level, prev_quality, ladder, max_buffer,
                cfg.with_(horizon=1), dt, first_cap,
            )
        self.last_plan = plan
        target = cfg.resolve_target(max_buffer)

        if plan.quality is not None:
            if (
                prev_quality is not None
                and plan.quality > prev_quality
                and buffer_level > target
            ):
                # The plan switches up while the buffer is already above
                # target.  If holding the previous rung is only ruled out
                # because its model landing point overflows the buffer,
                # prefer *not downloading* (Figure 5's blank region): wait a
                # beat, let the buffer drain, and keep the bitrate smooth.
                x1_hold = (
                    buffer_level
                    + omega[0] * dt / ladder.bitrate(prev_quality)
                    - dt
                )
                if x1_hold > max_buffer:
                    return None
            return plan.quality

        # Still infeasible.  Two cases:
        # * every rung overflows the model buffer (throughput far above the
        #   ladder).  Defer while the buffer sits above target — Figure 5's
        #   blank region — but never below it, because the Δt model's
        #   overflow is an artifact there: the real player downloads exactly
        #   one segment and enforces buffer room itself.
        # * the network is too slow for any plan: take the lowest rung and
        #   accept the buffer drain.
        x1_fastest = buffer_level + omega[0] * dt / ladder.max_bitrate - dt
        if x1_fastest > max_buffer:
            if buffer_level > target:
                return None
            if first_cap is not None:
                return first_cap
            return ladder.levels - 1
        return 0

    # ------------------------------------------------------------------
    def _first_step_cap(
        self,
        omega0: float,
        buffer_level: float,
        max_buffer: float,
        ladder,
        cfg: SodaConfig,
    ):
        """Combined §5.1 schema caps on the committed rung.

        The one-rung-above-throughput cap plus the low-buffer download-time
        guard; returns ``None`` when neither is enabled.
        """
        caps = []
        if cfg.cap_one_rung_above:
            caps.append(ladder.ceil_quality_for_bitrate(omega0))
        if cfg.download_safety > 0:
            seg_len = ladder.segment_duration
            budget = max(cfg.download_safety * buffer_level, seg_len)
            caps.append(
                ladder.quality_for_bitrate(omega0 * budget / seg_len)
            )
        if not caps:
            return None
        return min(caps)

    def _solve(
        self,
        omega: np.ndarray,
        buffer_level: float,
        prev_quality: Optional[int],
        ladder,
        max_buffer: float,
        cfg: SodaConfig,
        dt: float,
        first_cap: Optional[int],
    ) -> PlanResult:
        cache = self._plan_cache
        key = None
        if cache is not None:
            key = cache.key(
                omega, buffer_level, prev_quality, ladder, max_buffer, dt,
                first_cap,
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
        solver = _SOLVERS[(cfg.solver_backend, cfg.use_brute_force)]
        plan = solver(
            omega,
            buffer_level,
            prev_quality,
            ladder,
            cfg,
            max_buffer,
            dt=dt,
            first_cap=first_cap,
        )
        if cache is not None:
            cache.put(key, plan)
        return plan

    def _predict_vector(self, obs: PlayerObservation, horizon: int) -> np.ndarray:
        """Per-interval predictions with safe cold-start fallbacks."""
        omega = None
        if self.predictor is not None:
            omega = self.predictor.predict(
                obs.wall_time, horizon, obs.ladder.segment_duration
            )
        if omega is None or float(np.max(omega)) <= 0.0:
            fallback = obs.last_throughput
            if fallback is None or fallback <= 0:
                fallback = obs.ladder.min_bitrate
            omega = np.full(horizon, fallback)
        return np.asarray(omega, dtype=float)


# ----------------------------------------------------------------------
# Cross-session batched decisions
# ----------------------------------------------------------------------
def select_quality_batch(
    pairs: Sequence[Tuple[SodaController, PlayerObservation]],
) -> List[Union[Optional[int], BaseException]]:
    """Decide for many (controller, observation) pairs in one solver pass.

    Behaves exactly like calling ``ctrl.select_quality(obs)`` for each pair
    in order — same committed rungs and defers, same plan-cache hit/miss
    accounting, same ``last_plan`` side effects — but the main horizon
    solves of all cache-missing sessions run through
    :func:`repro.core.fastpath.solve_sessions_batch` in a few vectorized
    passes grouped by bundle key.  Only the fast backend batches;
    reference-backend controllers fall back to the sequential path inline.
    The rare horizon-1 infeasibility retry inside ``_finalize`` stays
    sequential (it reuses the untouched single-session code, so parity is
    by construction).

    Faults are isolated per session: an exception raised while deciding for
    one pair (invalid prediction, corrupt observation, a raising solver) is
    returned *as that pair's result* instead of propagating, so one corrupt
    session cannot take down the whole batch.  Callers must therefore check
    ``isinstance(result, BaseException)`` before treating a result as a
    rung.
    """
    n = len(pairs)
    results: List[Union[Optional[int], BaseException]] = [None] * n
    done = [False] * n
    prepped: List[Optional[tuple]] = [None] * n
    pending: List[int] = []
    pending_reqs: List[SessionSolveRequest] = []
    # Within one batch, two sessions can share a plan-cache *and* a key
    # (same quantized state).  Sequentially the second request would hit
    # the entry the first one just stored; mark it a duplicate and resolve
    # it after the batch solve so the counters stay faithful.
    pending_key_owner: dict = {}
    dup = [False] * n

    for i, (ctrl, obs) in enumerate(pairs):
        try:
            cfg = ctrl.config
            omega = ctrl._predict_vector(obs, cfg.horizon)
            cap_tput = float(omega[0])
            if obs.last_throughput is not None:
                cap_tput = max(cap_tput, obs.last_throughput)
            if cfg.solver_backend != "fast":
                results[i] = ctrl._select(
                    omega, obs.buffer_level, obs.previous_quality,
                    obs.ladder, obs.max_buffer, cap_tput,
                )
                done[i] = True
                continue
            ladder = obs.ladder
            dt = ladder.segment_duration
            first_cap = ctrl._first_step_cap(
                cap_tput, obs.buffer_level, obs.max_buffer, ladder, cfg
            )
            cache = ctrl._plan_cache
            key = None
            plan = None
            if cache is not None:
                key = cache.key(
                    omega, obs.buffer_level, obs.previous_quality, ladder,
                    obs.max_buffer, dt, first_cap,
                )
                if (id(cache), key) in pending_key_owner:
                    dup[i] = True
                    prepped[i] = (ctrl, obs, omega, first_cap, cache, key, None)
                    continue
                plan = cache.get(key)
            if plan is None:
                # Validate before enqueueing so one bad prediction fails
                # alone rather than poisoning the shared batch call.
                _pred(omega, cfg.horizon)
                if cache is not None:
                    pending_key_owner[(id(cache), key)] = i
                pending.append(i)
                pending_reqs.append(
                    SessionSolveRequest(
                        omega, float(obs.buffer_level), obs.previous_quality,
                        ladder, cfg, obs.max_buffer, dt=dt,
                        first_cap=first_cap,
                    )
                )
            prepped[i] = (ctrl, obs, omega, first_cap, cache, key, plan)
        except Exception as exc:  # per-session isolation
            results[i] = exc
            done[i] = True

    solved: dict = {}
    if pending_reqs:
        solved = dict(zip(pending, solve_sessions_batch(pending_reqs)))

    for i, pair in enumerate(pairs):
        if done[i]:
            continue
        ctrl, obs, omega, first_cap, cache, key, plan = prepped[i]
        try:
            if i in solved:
                plan = solved[i]
                if cache is not None:
                    cache.put(key, plan)
            elif dup[i]:
                plan = cache.get(key)
                if plan is None:
                    # The owning request failed before storing: replicate
                    # the sequential get-miss → solve → put path verbatim.
                    cfg = ctrl.config
                    solver = _SOLVERS[(cfg.solver_backend, cfg.use_brute_force)]
                    plan = solver(
                        omega, obs.buffer_level, obs.previous_quality,
                        obs.ladder, cfg, obs.max_buffer,
                        dt=obs.ladder.segment_duration, first_cap=first_cap,
                    )
                    cache.put(key, plan)
            results[i] = ctrl._finalize(
                plan, omega, obs.buffer_level, obs.previous_quality,
                obs.ladder, obs.max_buffer, first_cap,
            )
        except Exception as exc:  # per-session isolation
            results[i] = exc
    return results
