"""Horizon solvers: Algorithm 1 (monotonic search) and brute force.

Both solvers optimise the paper's Equation 2 over the discrete ladder R for
the next K intervals:

    min Σ_m  v(r_m)·ω̂_m Δt / r_m + β·b(x_m) + γ·c(r_m, r_{m-1})
    s.t. x_m = x_{m-1} + ω̂_m Δt / r_m − Δt ∈ [0, x_max]

The approximate solver (Theorem 4.3 / §5.3) restricts the search to
*monotonic* rate sequences — non-decreasing (SearchUp) or non-increasing
(SearchDown) from the previous bitrate — cutting the candidate count from
|R|^K to C(|R|+K, K).  The brute-force solver enumerates every sequence and
exists to validate the approximation (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..sim.video import BitrateLadder
from .objective import SodaConfig

__all__ = ["PlanResult", "solve_monotonic", "solve_brute_force", "plan_cost"]

_TOL = 1e-9


@dataclass(frozen=True)
class PlanResult:
    """Outcome of one horizon optimisation.

    Attributes:
        quality: rung committed for the next interval, or ``None`` when no
            feasible plan exists (e.g. any download would overflow the
            buffer — the blank region of Figure 5).
        objective: total cost of the best plan (``inf`` when infeasible).
        sequence: the full planned rung sequence (empty when infeasible).
        evaluations: number of candidate sequences scored, for the
            complexity claims of §5.3.
    """

    quality: Optional[int]
    objective: float
    sequence: Tuple[int, ...]
    evaluations: int

    @property
    def feasible(self) -> bool:
        return self.quality is not None


class _Problem:
    """Shared per-call state for the recursive searches."""

    __slots__ = (
        "omega", "dt", "ladder", "cfg", "max_buffer", "target",
        "v", "rates", "levels", "evaluations", "terminal_weight",
    )

    def __init__(
        self,
        omega: np.ndarray,
        dt: float,
        ladder: BitrateLadder,
        cfg: SodaConfig,
        max_buffer: float,
        terminal_weight: float = 0.0,
    ) -> None:
        self.terminal_weight = terminal_weight
        self.omega = omega
        self.dt = dt
        self.ladder = ladder
        self.cfg = cfg
        self.max_buffer = max_buffer
        self.target = cfg.resolve_target(max_buffer)
        distortion = cfg.distortion_fn()
        self.rates = ladder.bitrates
        self.v = [
            distortion(r, ladder.min_bitrate, ladder.max_bitrate)
            for r in self.rates
        ]
        self.levels = ladder.levels
        self.evaluations = 0

    def step_cost(self, k: int, quality: int, prev_v: Optional[float], x1: float) -> float:
        """Cost of choosing ``quality`` during interval ``k`` ending at buffer x1."""
        r = self.rates[quality]
        video_seconds = self.omega[k] * self.dt / r
        cost = self.v[quality] * video_seconds
        cost += self.cfg.beta * self.cfg.buffer_cost(x1, self.target)
        if prev_v is not None:
            cost += self.cfg.gamma * self.cfg.switching_cost(self.v[quality], prev_v)
        return cost

    def next_buffer(self, k: int, x: float, quality: int) -> float:
        return x + self.omega[k] * self.dt / self.rates[quality] - self.dt

    def terminal_cost(self, x: float) -> float:
        """Soft version of Algorithm 2's terminal constraint x_K = x̄."""
        if self.terminal_weight <= 0:
            return 0.0
        dev = x - self.target
        return self.terminal_weight * dev * dev


def _prepare(
    omega: Sequence[float] | float,
    horizon: int,
) -> np.ndarray:
    """Broadcast a scalar prediction across the horizon, validate arrays."""
    arr = np.atleast_1d(np.asarray(omega, dtype=float))
    if arr.size == 1:
        arr = np.full(horizon, float(arr[0]))
    if arr.size != horizon:
        raise ValueError(
            f"prediction length {arr.size} does not match horizon {horizon}"
        )
    if np.any(arr < 0):
        raise ValueError("throughput predictions must be non-negative")
    return arr


def solve_monotonic(
    omega: Sequence[float] | float,
    buffer_level: float,
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_cap: Optional[int] = None,
    terminal_weight: float = 0.0,
) -> PlanResult:
    """Algorithm 1: best monotonic plan (SearchUp ∪ SearchDown).

    Args:
        omega: throughput prediction, scalar or per-interval array (Mb/s).
        buffer_level: current buffer x₀ in seconds.
        prev_quality: rung of the previous segment (None at session start,
            which removes the switching anchor and lets the plan start
            anywhere).
        ladder: the encoding ladder.
        cfg: SODA weights and horizon.
        max_buffer: buffer capacity x_max in seconds.
        dt: interval length Δt; defaults to the ladder's segment duration.
        first_cap: optional upper bound on the first rung (the §5.1
            one-rung-above-throughput heuristic).

    Returns:
        The best plan found over monotonic sequences.
    """
    dt = ladder.segment_duration if dt is None else dt
    pred = _prepare(omega, cfg.horizon)
    prob = _Problem(pred, dt, ladder, cfg, max_buffer, terminal_weight)

    if prev_quality is None:
        # No anchor: non-decreasing plans starting from the bottom plus
        # non-increasing plans starting from the top jointly cover every
        # monotonic sequence with a free first rung.
        up = _search(prob, buffer_level, 0, None, +1, first_cap)
        down = _search(prob, buffer_level, prob.levels - 1, None, -1, first_cap)
    else:
        v_prev = prob.v[prev_quality]
        up = _search(prob, buffer_level, prev_quality, v_prev, +1, first_cap)
        down = _search(prob, buffer_level, prev_quality, v_prev, -1, first_cap)

    best = up if up[1] <= down[1] else down
    quality, objective, seq = best
    return PlanResult(
        quality=quality,
        objective=objective,
        sequence=tuple(seq),
        evaluations=prob.evaluations,
    )


def _search(
    prob: _Problem,
    x0: float,
    anchor: int,
    anchor_v: Optional[float],
    direction: int,
    first_cap: Optional[int],
) -> Tuple[Optional[int], float, List[int]]:
    """One direction of Algorithm 1 (non-strict monotone recursion)."""

    def rec(k: int, x: float, q_prev: int, v_prev: Optional[float]) -> Tuple[float, List[int]]:
        if k == prob.cfg.horizon:
            return prob.terminal_cost(x), []
        best_obj = math.inf
        best_seq: List[int] = []
        if direction > 0:
            candidates = range(q_prev, prob.levels)
        else:
            candidates = range(q_prev, -1, -1)
        for q in candidates:
            if k == 0 and first_cap is not None and q > first_cap:
                continue
            x1 = prob.next_buffer(k, x, q)
            if x1 < -_TOL or x1 > prob.max_buffer + _TOL:
                continue
            prob.evaluations += 1
            step = prob.step_cost(k, q, v_prev, x1)
            if step >= best_obj:
                continue
            sub, seq = rec(k + 1, x1, q, prob.v[q])
            total = step + sub
            if total < best_obj:
                best_obj = total
                best_seq = [q] + seq
        return best_obj, best_seq

    obj, seq = rec(0, x0, anchor, anchor_v)
    if not seq:
        return None, math.inf, []
    return seq[0], obj, seq


def solve_brute_force(
    omega: Sequence[float] | float,
    buffer_level: float,
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_cap: Optional[int] = None,
    terminal_weight: float = 0.0,
) -> PlanResult:
    """Exhaustive search over all |R|^K rate sequences (Figure 8 baseline)."""
    dt = ladder.segment_duration if dt is None else dt
    pred = _prepare(omega, cfg.horizon)
    prob = _Problem(pred, dt, ladder, cfg, max_buffer, terminal_weight)
    v_prev = None if prev_quality is None else prob.v[prev_quality]

    def rec(k: int, x: float, v_before: Optional[float]) -> Tuple[float, List[int]]:
        if k == prob.cfg.horizon:
            return prob.terminal_cost(x), []
        best_obj = math.inf
        best_seq: List[int] = []
        for q in range(prob.levels):
            if k == 0 and first_cap is not None and q > first_cap:
                continue
            x1 = prob.next_buffer(k, x, q)
            if x1 < -_TOL or x1 > prob.max_buffer + _TOL:
                continue
            prob.evaluations += 1
            step = prob.step_cost(k, q, v_before, x1)
            sub, seq = rec(k + 1, x1, prob.v[q])
            total = step + sub
            if total < best_obj:
                best_obj = total
                best_seq = [q] + seq
        return best_obj, best_seq

    obj, seq = rec(0, buffer_level, v_prev)
    if not seq:
        return PlanResult(None, math.inf, (), prob.evaluations)
    return PlanResult(seq[0], obj, tuple(seq), prob.evaluations)


def plan_cost(
    sequence: Sequence[int],
    omega: Sequence[float] | float,
    buffer_level: float,
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
) -> float:
    """Cost of an explicit plan under Equation 2 (``inf`` if infeasible).

    Useful in tests and ablations to cross-check solver outputs.
    """
    dt = ladder.segment_duration if dt is None else dt
    if len(sequence) != cfg.horizon:
        raise ValueError("plan length must equal the horizon")
    pred = _prepare(omega, cfg.horizon)
    prob = _Problem(pred, dt, ladder, cfg, max_buffer)
    x = buffer_level
    v_prev = None if prev_quality is None else prob.v[prev_quality]
    total = 0.0
    for k, q in enumerate(sequence):
        x1 = prob.next_buffer(k, x, q)
        if x1 < -_TOL or x1 > max_buffer + _TOL:
            return math.inf
        total += prob.step_cost(k, q, v_prev, x1)
        v_prev = prob.v[q]
        x = x1
    return total
