"""NumPy-vectorized fast path for the horizon solvers (drop-in).

The reference solvers in :mod:`repro.core.solver` walk the candidate tree
with a Python recursion — clear, but the per-decision cost dominates
large-scale sweeps.  This module replaces the recursion with three pieces:

* **candidate enumeration caches** — all monotonic rung sequences for a
  given (available levels, horizon, direction) are enumerated once, in the
  exact lexicographic order the reference DFS visits them, and memoised as
  index matrices (:func:`monotone_candidates` / :func:`product_candidates`);
* **a batch scorer** — everything that does not depend on the live
  (prediction, buffer) state — candidate matrices, per-candidate distortion
  values, and the full switching-cost term — is precomputed per
  (ladder, config, previous rung) into a :class:`_Bundle`, so a decision
  reduces to ~a dozen vectorized operations over the whole candidate set:
  one buffer recursion via ``cumsum``, feasibility bounds, and the
  Equation 2 cost of every candidate at once;
* **a per-session plan cache** (:class:`PlanCache`) keyed by quantized
  (buffer, previous rung, prediction vector) state, consulted by
  :class:`~repro.core.controller.SodaController` before solving.

``solve_monotonic_fast`` / ``solve_brute_force_fast`` mirror the reference
signatures.  Objectives agree with the reference up to floating-point
association (the vectorized kernel sums the same terms in a different
order), which the differential suite bounds at the solver tolerance; the
candidate sets and the first-found-minimum tie-breaking are identical, so
committed decisions match the reference except at exact cost ties between
distinct sequences.

On the fast path :attr:`PlanResult.evaluations` reports the number of
candidate *sequences* scored (the §5.3 C(|R|+K, K) quantity, see
:func:`monotone_candidate_count`), whereas the reference recursion counts
feasible node expansions; per-backend the number is meaningful, across
backends it is not comparable.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.video import BitrateLadder
from .objective import _DISTORTIONS, SodaConfig
from .solver import _TOL, PlanResult

__all__ = [
    "monotone_candidates",
    "product_candidates",
    "monotone_candidate_count",
    "solve_monotonic_fast",
    "solve_brute_force_fast",
    "solve_monotonic_batch",
    "solve_brute_force_batch",
    "solve_sessions_batch",
    "SessionSolveRequest",
    "PlanCache",
]


# ----------------------------------------------------------------------
# Candidate enumeration (cached per (levels, horizon) shape)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def monotone_candidates(levels: int, horizon: int) -> np.ndarray:
    """All non-decreasing sequences of ``horizon`` values in [0, levels).

    Rows are in lexicographic order — the order the reference SearchUp DFS
    reaches its leaves — so first-occurrence ``argmin`` reproduces the
    reference tie-breaking.  Shape ``(C(levels+horizon-1, horizon), horizon)``.
    """
    if levels < 1 or horizon < 1:
        raise ValueError("need at least one level and one interval")
    rows = list(itertools.combinations_with_replacement(range(levels), horizon))
    out = np.asarray(rows, dtype=np.int64)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=None)
def product_candidates(levels: int, horizon: int) -> np.ndarray:
    """All ``levels**horizon`` sequences, in the brute-force DFS order."""
    if levels < 1 or horizon < 1:
        raise ValueError("need at least one level and one interval")
    if levels ** horizon > 4_000_000:
        raise ValueError(
            f"brute-force candidate set {levels}^{horizon} is too large"
        )
    rows = list(itertools.product(range(levels), repeat=horizon))
    out = np.asarray(rows, dtype=np.int64)
    out.setflags(write=False)
    return out


def monotone_candidate_count(
    levels: int, horizon: int, prev_quality: Optional[int]
) -> int:
    """Sequences the fast monotonic solver scores for one situation.

    From anchor ``a`` that is ``C(|R|-a+K-1, K)`` non-decreasing plus
    ``C(a+K, K)`` non-increasing sequences (the constant plan appears in
    both, exactly as the reference searches it twice); with no anchor both
    directions span the full ladder.  With an anchor the total is bounded
    by the paper's C(|R|+K, K).
    """
    if prev_quality is None:
        return 2 * math.comb(levels + horizon - 1, horizon)
    up = math.comb(levels - prev_quality + horizon - 1, horizon)
    down = math.comb(prev_quality + horizon, horizon)
    return up + down


@lru_cache(maxsize=256)
def _ladder_arrays(
    bitrates: Tuple[float, ...], distortion: str
) -> Tuple[np.ndarray, np.ndarray]:
    """(rates, v) arrays for a ladder signature, memoised across calls."""
    fn = _DISTORTIONS[distortion]
    rates = np.asarray(bitrates, dtype=float)
    v = np.asarray(
        [fn(r, bitrates[0], bitrates[-1]) for r in bitrates], dtype=float
    )
    rates.setflags(write=False)
    v.setflags(write=False)
    return rates, v


# ----------------------------------------------------------------------
# Per-(ladder, config, anchor) candidate bundles
# ----------------------------------------------------------------------
class _Bundle:
    """Everything about a candidate set that the live state cannot change.

    Holds the concatenated candidate matrix (SearchUp rows before
    SearchDown rows, each block in reference DFS order), per-candidate
    per-interval ``dt/r`` factors and distortion values, the fully
    precomputed switching-cost row sums ``Σ_k γ·c(r_k, r_{k-1})``, and the
    candidate sequences as Python tuples ready to return.
    """

    __slots__ = (
        "candidates", "first_rungs", "max_first_rung", "gain_base",
        "cum_gain_base", "vq", "dist_row_base", "switch_row", "dt_ramp",
        "count", "sequences",
    )

    def __init__(
        self,
        candidates: np.ndarray,
        cfg: SodaConfig,
        rates: np.ndarray,
        v: np.ndarray,
        dt: float,
        anchor_v: Optional[float],
    ) -> None:
        horizon = candidates.shape[1]
        self.candidates = candidates
        self.first_rungs = np.ascontiguousarray(candidates[:, 0])
        self.max_first_rung = int(self.first_rungs.max())
        self.gain_base = dt / rates[candidates]
        # Prefix sums and distortion row sums let a *constant* prediction —
        # the common case online — skip the per-call cumsum and one einsum:
        # with ω_k ≡ ω the trajectory is ω·cumsum(Δt/r) - k·Δt and the
        # distortion term is ω·Σ_k v_k·Δt/r_k.
        self.cum_gain_base = np.cumsum(self.gain_base, axis=1)
        self.vq = v[candidates]
        self.dist_row_base = np.einsum("nk,nk->n", self.vq, self.gain_base)
        d = np.empty_like(self.vq)
        d[:, 1:] = self.vq[:, 1:] - self.vq[:, :-1]
        d[:, 0] = 0.0 if anchor_v is None else self.vq[:, 0] - anchor_v
        switch = d * d
        if cfg.switch_event_cost > 0:
            switch += cfg.switch_event_cost * (np.abs(d) > 1e-12)
        if anchor_v is None:
            switch[:, 0] = 0.0
        self.switch_row = cfg.gamma * switch.sum(axis=1)
        self.dt_ramp = dt * np.arange(1, horizon + 1)
        self.count = candidates.shape[0]
        self.sequences = [tuple(int(q) for q in row) for row in candidates]


@lru_cache(maxsize=4096)
def _monotone_bundle(
    bitrates: Tuple[float, ...],
    cfg: SodaConfig,
    prev_quality: Optional[int],
    dt: float,
) -> _Bundle:
    """SearchUp ∪ SearchDown candidates for one anchored situation."""
    rates, v = _ladder_arrays(bitrates, cfg.distortion)
    levels = len(bitrates)
    if prev_quality is None:
        up = monotone_candidates(levels, cfg.horizon)
        down = (levels - 1) - monotone_candidates(levels, cfg.horizon)
        anchor_v = None
    else:
        up = prev_quality + monotone_candidates(
            levels - prev_quality, cfg.horizon
        )
        down = prev_quality - monotone_candidates(
            prev_quality + 1, cfg.horizon
        )
        anchor_v = float(v[prev_quality])
    candidates = np.concatenate([up, down], axis=0)
    return _Bundle(candidates, cfg, rates, v, dt, anchor_v)


@lru_cache(maxsize=4096)
def _brute_bundle(
    bitrates: Tuple[float, ...],
    cfg: SodaConfig,
    prev_quality: Optional[int],
    dt: float,
) -> _Bundle:
    """All |R|^K candidates for one anchored situation."""
    rates, v = _ladder_arrays(bitrates, cfg.distortion)
    candidates = product_candidates(len(bitrates), cfg.horizon)
    anchor_v = None if prev_quality is None else float(v[prev_quality])
    return _Bundle(candidates, cfg, rates, v, dt, anchor_v)


# ----------------------------------------------------------------------
# The vectorized scoring kernel
# ----------------------------------------------------------------------
def _pred(omega, horizon: int):
    """Normalise a prediction to a scalar (constant ω) or a K-vector.

    Mirrors the validation of :func:`repro.core.solver._prepare`, but
    collapses constant vectors to a scalar so the kernel can use the
    bundle's precomputed prefix sums.
    """
    if type(omega) is float or type(omega) is int:
        # Hot path: plain scalars skip the np.ndim dispatch entirely.
        w = float(omega)
        if w < 0:
            raise ValueError("throughput predictions must be non-negative")
        return w
    if np.ndim(omega) == 0:
        w = float(omega)
        if w < 0:
            raise ValueError("throughput predictions must be non-negative")
        return w
    arr = np.atleast_1d(np.asarray(omega, dtype=float))
    if arr.size == 1:
        w = float(arr[0])
        if w < 0:
            raise ValueError("throughput predictions must be non-negative")
        return w
    if arr.size != horizon:
        raise ValueError(
            f"prediction length {arr.size} does not match horizon {horizon}"
        )
    if np.any(arr < 0):
        raise ValueError("throughput predictions must be non-negative")
    w = float(arr[0])
    if np.all(arr == w):
        return w
    return arr


def _solve_bundle(
    bundle: _Bundle,
    omega,
    buffer_level: float,
    cfg: SodaConfig,
    target: float,
    max_buffer: float,
    first_cap: Optional[int],
    terminal_weight: float,
) -> PlanResult:
    """Score every candidate of ``bundle`` for one live state, pick the best.

    ``omega`` is a scalar (constant prediction, precomputed prefix-sum
    path) or a per-interval vector.  ``argmin`` takes the first occurrence,
    and rows are ordered exactly as the reference DFS visits sequences
    (SearchUp block first), so exact ties resolve the same way the
    recursion resolves them.
    """
    if isinstance(omega, float):
        # Constant prediction: trajectory and distortion from prefix sums.
        x = omega * bundle.cum_gain_base
        x += buffer_level - bundle.dt_ramp                # buffer trajectory
        total = omega * bundle.dist_row_base              # distortion term
    else:
        gain = omega * bundle.gain_base                   # ω_k·Δt/r_k
        x = np.cumsum(gain, axis=1)
        x += buffer_level - bundle.dt_ramp
        total = np.einsum("nk,nk->n", bundle.vq, gain)
    feasible = (x.min(axis=1) >= -_TOL) & (x.max(axis=1) <= max_buffer + _TOL)

    dev = target - x
    dev *= dev                                            # (x̄ - x_k)²
    weight = np.where(x <= target, cfg.beta, cfg.beta * cfg.epsilon)
    total += np.einsum("nk,nk->n", dev, weight)           # β·b(x) term
    total += bundle.switch_row                            # γ·c(·,·) term
    if terminal_weight > 0:
        t_dev = x[:, -1] - target
        total += (terminal_weight * t_dev) * t_dev

    evaluations = bundle.count
    if first_cap is not None and first_cap < bundle.max_first_rung:
        allowed = bundle.first_rungs <= first_cap
        evaluations = int(np.count_nonzero(allowed))
        feasible &= allowed
    total = np.where(feasible, total, math.inf)

    best = int(np.argmin(total))
    objective = float(total[best])
    if not math.isfinite(objective):
        return PlanResult(None, math.inf, (), evaluations)
    seq = bundle.sequences[best]
    return PlanResult(seq[0], objective, seq, evaluations)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def solve_monotonic_fast(
    omega: Sequence[float] | float,
    buffer_level: float,
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_cap: Optional[int] = None,
    terminal_weight: float = 0.0,
) -> PlanResult:
    """Vectorized drop-in for :func:`repro.core.solver.solve_monotonic`."""
    dt = ladder.segment_duration if dt is None else dt
    pred = _pred(omega, cfg.horizon)
    bundle = _monotone_bundle(tuple(ladder.bitrates), cfg, prev_quality, dt)
    return _solve_bundle(
        bundle, pred, float(buffer_level), cfg, cfg.resolve_target(max_buffer),
        max_buffer, first_cap, terminal_weight,
    )


def solve_brute_force_fast(
    omega: Sequence[float] | float,
    buffer_level: float,
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_cap: Optional[int] = None,
    terminal_weight: float = 0.0,
) -> PlanResult:
    """Vectorized drop-in for :func:`repro.core.solver.solve_brute_force`."""
    dt = ladder.segment_duration if dt is None else dt
    pred = _pred(omega, cfg.horizon)
    bundle = _brute_bundle(tuple(ladder.bitrates), cfg, prev_quality, dt)
    return _solve_bundle(
        bundle, pred, float(buffer_level), cfg, cfg.resolve_target(max_buffer),
        max_buffer, first_cap, terminal_weight,
    )


def _solve_batch(
    bundle_fn,
    omega: Sequence[float] | float,
    buffer_levels: Sequence[float],
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float],
    first_caps,
    terminal_weight: float,
) -> List[PlanResult]:
    dt = ladder.segment_duration if dt is None else dt
    pred = _pred(omega, cfg.horizon)
    bundle = bundle_fn(tuple(ladder.bitrates), cfg, prev_quality, dt)
    target = cfg.resolve_target(max_buffer)
    x0s = np.atleast_1d(np.asarray(buffer_levels, dtype=float))
    if first_caps is None:
        caps = [None] * x0s.shape[0]
    else:
        caps = list(first_caps)
        if len(caps) != x0s.shape[0]:
            raise ValueError("first_caps length must match buffer_levels")
    return [
        _solve_bundle(
            bundle, pred, float(x0), cfg, target, max_buffer, cap,
            terminal_weight,
        )
        for x0, cap in zip(x0s, caps)
    ]


def solve_monotonic_batch(
    omega: Sequence[float] | float,
    buffer_levels: Sequence[float],
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_caps=None,
    terminal_weight: float = 0.0,
) -> List[PlanResult]:
    """Algorithm 1 for one (ω, previous rung) across many buffer levels.

    The candidate bundle (enumeration, distortion, switching costs) is
    built once and shared by every buffer level — this is the scorer the
    FastMPC-style :class:`~repro.core.lookup.DecisionTable` builds tables
    with.  ``first_caps`` may be ``None`` or a per-buffer sequence of
    optional first-rung caps.
    """
    return _solve_batch(
        _monotone_bundle, omega, buffer_levels, prev_quality, ladder, cfg,
        max_buffer, dt, first_caps, terminal_weight,
    )


def solve_brute_force_batch(
    omega: Sequence[float] | float,
    buffer_levels: Sequence[float],
    prev_quality: Optional[int],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    dt: Optional[float] = None,
    first_caps=None,
    terminal_weight: float = 0.0,
) -> List[PlanResult]:
    """Exhaustive |R|^K search, batched over buffer levels."""
    return _solve_batch(
        _brute_bundle, omega, buffer_levels, prev_quality, ladder, cfg,
        max_buffer, dt, first_caps, terminal_weight,
    )


# ----------------------------------------------------------------------
# Cross-session batched solving
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class SessionSolveRequest:
    """One session's live decision state for :func:`solve_sessions_batch`.

    Mirrors the argument list of :func:`solve_monotonic_fast` — ``omega``
    may be a scalar or a horizon-length vector; ``dt=None`` defaults to the
    ladder's segment duration, exactly as the single-session entry point
    does.
    """

    omega: Sequence[float] | float
    buffer_level: float
    prev_quality: Optional[int]
    ladder: BitrateLadder
    cfg: SodaConfig
    max_buffer: float
    dt: Optional[float] = None
    first_cap: Optional[int] = None
    terminal_weight: float = 0.0


# Cap on elements per (sessions × candidates × horizon) scoring block so a
# large fleet over a brute-force bundle cannot balloon transient arrays;
# sessions beyond the cap are solved in successive chunks.
_BATCH_ELEMENT_BUDGET = 2_000_000


def _solve_bundle_chunk(
    bundle: _Bundle,
    omegas: np.ndarray,
    scalar: bool,
    buffers: np.ndarray,
    cfg: SodaConfig,
    targets: np.ndarray,
    max_buffers: np.ndarray,
    caps: Sequence[Optional[int]],
    terminal_weights: np.ndarray,
) -> List[PlanResult]:
    """Score one bundle for S live states in a single vectorized pass.

    This is :func:`_solve_bundle` with a leading session axis.  Every
    operation is elementwise, a ``cumsum`` along the horizon axis, or an
    ``einsum`` contracting only the horizon axis — each session's floats
    flow through the same operations in the same order as the
    single-session kernel, so the scores (and therefore the argmin row,
    taken first-occurrence per session) are bit-identical.
    """
    n_sessions = buffers.shape[0]
    if scalar:
        # Constant predictions: prefix-sum path, ω broadcast per session.
        x = omegas[:, None, None] * bundle.cum_gain_base[None, :, :]
        x += (buffers[:, None] - bundle.dt_ramp[None, :])[:, None, :]
        total = omegas[:, None] * bundle.dist_row_base[None, :]
    else:
        gain = omegas[:, None, :] * bundle.gain_base[None, :, :]
        x = np.cumsum(gain, axis=2)
        x += (buffers[:, None] - bundle.dt_ramp[None, :])[:, None, :]
        total = np.einsum("nk,snk->sn", bundle.vq, gain)
    feasible = (x.min(axis=2) >= -_TOL) & (
        x.max(axis=2) <= max_buffers[:, None] + _TOL
    )

    dev = targets[:, None, None] - x
    dev *= dev
    weight = np.where(
        x <= targets[:, None, None], cfg.beta, cfg.beta * cfg.epsilon
    )
    total += np.einsum("snk,snk->sn", dev, weight)
    total += bundle.switch_row[None, :]
    # The single-session kernel skips the terminal term entirely when the
    # weight is zero (0·inf² would poison otherwise-feasible rows), so the
    # batched kernel must apply it only to the sessions that carry one.
    tw_rows = np.flatnonzero(terminal_weights > 0)
    if tw_rows.size:
        t_dev = x[tw_rows, :, -1] - targets[tw_rows, None]
        total[tw_rows] += (terminal_weights[tw_rows, None] * t_dev) * t_dev

    evaluations = np.full(n_sessions, bundle.count, dtype=np.int64)
    cap_rows = [
        j for j, c in enumerate(caps)
        if c is not None and c < bundle.max_first_rung
    ]
    if cap_rows:
        cap_vals = np.asarray([caps[j] for j in cap_rows], dtype=np.int64)
        allowed = bundle.first_rungs[None, :] <= cap_vals[:, None]
        evaluations[cap_rows] = np.count_nonzero(allowed, axis=1)
        feasible[cap_rows] &= allowed
    total = np.where(feasible, total, math.inf)

    best = np.argmin(total, axis=1)
    plans: List[PlanResult] = []
    for j in range(n_sessions):
        objective = float(total[j, best[j]])
        evals = int(evaluations[j])
        if not math.isfinite(objective):
            plans.append(PlanResult(None, math.inf, (), evals))
            continue
        seq = bundle.sequences[int(best[j])]
        plans.append(PlanResult(seq[0], objective, seq, evals))
    return plans


def _solve_bundle_many(
    bundle: _Bundle,
    omegas: np.ndarray,
    scalar: bool,
    buffers: np.ndarray,
    cfg: SodaConfig,
    targets: np.ndarray,
    max_buffers: np.ndarray,
    caps: Sequence[Optional[int]],
    terminal_weights: np.ndarray,
) -> List[PlanResult]:
    """Chunk the session axis so transient arrays stay bounded."""
    n_sessions = buffers.shape[0]
    per_session = bundle.count * bundle.candidates.shape[1]
    chunk = max(1, _BATCH_ELEMENT_BUDGET // max(1, per_session))
    if chunk >= n_sessions:
        return _solve_bundle_chunk(
            bundle, omegas, scalar, buffers, cfg, targets, max_buffers,
            caps, terminal_weights,
        )
    plans: List[PlanResult] = []
    for start in range(0, n_sessions, chunk):
        sl = slice(start, start + chunk)
        plans.extend(
            _solve_bundle_chunk(
                bundle, omegas[sl], scalar, buffers[sl], cfg, targets[sl],
                max_buffers[sl], caps[sl], terminal_weights[sl],
            )
        )
    return plans


def solve_sessions_batch(
    requests: Sequence[SessionSolveRequest],
) -> List[PlanResult]:
    """Solve many sessions' decisions in a few vectorized passes.

    Requests are grouped by bundle key — ``(ladder, config, previous
    rung, Δt)`` plus the config's backend choice — so a heterogeneous
    fleet still batches: each distinct bundle is scored once for all of
    its sessions.  Ladder and config are compared by identity (the
    service shares one of each across sessions); equal-but-distinct
    objects fall into separate, equally correct groups.  Within a group, sessions whose prediction
    normalises to a scalar (constant ω) and sessions with a genuine
    per-interval vector are scored separately, because the single-session
    kernel uses different (bit-inequivalent) arithmetic for the two cases.
    Per-session ``target``/``max_buffer``/``first_cap``/``terminal_weight``
    vary freely inside a group.

    Results come back in request order and each equals, bit for bit, what
    :func:`solve_monotonic_fast` (or the brute variant, per
    ``cfg.use_brute_force``) returns for that request alone.  Invalid
    predictions raise ``ValueError`` exactly as the single-session entry
    points do — callers wanting per-session fault isolation should
    pre-validate (see ``repro.core.controller.select_quality_batch``).
    """
    results: List[Optional[PlanResult]] = [None] * len(requests)
    # Group by *identity* of (ladder, config): hashing a SodaConfig and
    # rebuilding the bitrate tuple per request is measurable at serving
    # batch sizes, while id() is a dict probe on two ints.  The service
    # shares one ladder and one config object across every session, so
    # identity grouping loses no batching there; distinct-but-equal
    # objects merely split into smaller (still correct) groups.
    groups: Dict[tuple, tuple] = {}
    for i, req in enumerate(requests):
        dt = req.dt
        if dt is None:
            dt = req.ladder.segment_duration
        pred = _pred(req.omega, req.cfg.horizon)
        key = (id(req.ladder), id(req.cfg), req.prev_quality, dt)
        entry = groups.get(key)
        if entry is None:
            groups[key] = entry = (req, dt, [])
        entry[2].append((i, pred))
    for first_req, dt, members in groups.values():
        ladder, cfg = first_req.ladder, first_req.cfg
        prev_quality = first_req.prev_quality
        bundle_fn = _brute_bundle if cfg.use_brute_force else _monotone_bundle
        bundle = bundle_fn(tuple(ladder.bitrates), cfg, prev_quality, dt)
        scalars = [(i, p) for i, p in members if isinstance(p, float)]
        vectors = [(i, p) for i, p in members if not isinstance(p, float)]
        target_buffer = cfg.target_buffer
        for subset, is_scalar in ((scalars, True), (vectors, False)):
            if not subset:
                continue
            idx = [i for i, _ in subset]
            omegas = np.asarray([p for _, p in subset], dtype=float)
            buf_list, mb_list, tw_list, caps = [], [], [], []
            for i in idx:
                r = requests[i]
                buf_list.append(r.buffer_level)
                mb_list.append(r.max_buffer)
                tw_list.append(r.terminal_weight)
                caps.append(r.first_cap)
            buffers = np.asarray(buf_list, dtype=float)
            max_buffers = np.asarray(mb_list, dtype=float)
            terminal_weights = np.asarray(tw_list, dtype=float)
            if target_buffer is None:
                # cfg.resolve_target's 0.8·max_buffer branch, vectorized
                # (scalar × float64 array is the identical IEEE multiply)
                targets = 0.8 * max_buffers
            else:
                targets = np.asarray(
                    [cfg.resolve_target(m) for m in mb_list], dtype=float
                )
            plans = _solve_bundle_many(
                bundle, omegas, is_scalar, buffers, cfg, targets,
                max_buffers, caps, terminal_weights,
            )
            for i, plan in zip(idx, plans):
                results[i] = plan
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Per-session plan cache
# ----------------------------------------------------------------------
class PlanCache:
    """LRU cache of solved plans keyed by quantized decision state.

    The key quantizes the buffer level and each entry of the prediction
    vector to configurable quanta, so nearby states share one solve.  Two
    states mapping to the same key differ by at most half a quantum per
    component — the *correctness envelope*: the cached plan is the exact
    optimum of a state within that distance, not necessarily of the queried
    state.  A quantum of 0 disables rounding (exact-state hits only).  The
    key also carries the ladder signature, horizon (via the prediction
    length), Δt, buffer cap, previous rung, and first-rung cap, so a hit
    can never cross sessions with different geometry.

    Attributes:
        hits: lookups answered from the cache since the last :meth:`clear`.
        misses: lookups that fell through to the solver.
    """

    def __init__(
        self,
        buffer_quantum: float = 0.05,
        tput_quantum: float = 0.05,
        max_entries: int = 4096,
    ) -> None:
        if buffer_quantum < 0 or tput_quantum < 0:
            raise ValueError("cache quanta must be non-negative")
        if max_entries < 1:
            raise ValueError("cache needs room for at least one plan")
        self.buffer_quantum = float(buffer_quantum)
        self.tput_quantum = float(tput_quantum)
        self.max_entries = int(max_entries)
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and zero the counters (new session)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(
        self,
        omega: np.ndarray,
        buffer_level: float,
        prev_quality: Optional[int],
        ladder: BitrateLadder,
        max_buffer: float,
        dt: float,
        first_cap: Optional[int],
    ) -> tuple:
        qb = self.buffer_quantum
        qt = self.tput_quantum
        # Non-finite components (corrupted throughput samples under fault
        # injection) cannot be rounded; key them by repr so the lookup is a
        # guaranteed miss instead of a crash.
        if qb > 0 and math.isfinite(buffer_level):
            buf = round(buffer_level / qb)
        else:
            buf = buffer_level
        def _q(w: float):
            if qt > 0 and math.isfinite(w):
                return round(w / qt)
            return repr(w)
        if isinstance(omega, float):
            pred = (_q(omega),)
        else:
            pred = tuple(_q(float(w)) for w in omega)
        return (
            tuple(ladder.bitrates),
            dt,
            max_buffer,
            prev_quality,
            first_cap,
            buf,
            pred,
        )

    def get(self, key: tuple) -> Optional[PlanResult]:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self.hits += 1
        return plan

    def put(self, key: tuple, plan: PlanResult) -> None:
        if key in self._entries:
            self._entries[key] = plan
            return
        if len(self._entries) >= self.max_entries:
            # dicts iterate in insertion order: evict the oldest plan.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = plan
