"""Offline optimal (OPT) and time-based rollouts for regret experiments.

The paper's theory (§4, Appendix A) measures SODA against the *offline
optimal* — the cost a clairvoyant controller achieves with the whole
bandwidth sequence in hand.  This module provides:

* :func:`offline_optimal` — dynamic programming over a discretised
  (buffer, previous-rung) state space, computing cost(OPT) and the optimal
  trajectory for the time-based objective of §3.1;
* :func:`rollout_time_based` — SODA run in the pure time-based model
  (Equation 2 each step, commit the first action, advance with the *true*
  bandwidth), which is what the dynamic-regret and competitive-ratio
  benches compare against OPT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.video import BitrateLadder
from .objective import SodaConfig
from .solver import solve_brute_force, solve_monotonic

__all__ = ["OfflineSolution", "offline_optimal", "RolloutResult", "rollout_time_based"]


@dataclass(frozen=True)
class OfflineSolution:
    """The offline optimal trajectory and its cost.

    Attributes:
        cost: total objective value of the optimal plan.
        qualities: optimal rung per interval.
        buffers: buffer level after each interval (grid-snapped).
    """

    cost: float
    qualities: Tuple[int, ...]
    buffers: Tuple[float, ...]


def offline_optimal(
    omega: Sequence[float],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    x0: float,
    dt: Optional[float] = None,
    prev_quality: Optional[int] = None,
    buffer_grid: int = 201,
) -> OfflineSolution:
    """cost(OPT) for a bandwidth sequence via dynamic programming.

    The buffer level is discretised onto ``buffer_grid`` points; finer
    grids tighten the approximation (the DP cost converges to the true
    optimum from above as the grid refines).

    Args:
        omega: true bandwidth per interval, Mb/s.
        ladder: discrete bitrate set R.
        cfg: objective weights (horizon is ignored — OPT sees everything).
        max_buffer: buffer capacity x_max.
        x0: initial buffer level.
        dt: interval length Δt (defaults to the segment duration).
        prev_quality: rung before the first interval (None = no switching
            anchor for the first decision).
        buffer_grid: number of buffer discretisation points.

    Returns:
        The optimal plan; ``cost`` is ``inf`` when no feasible plan exists.
    """
    omega = np.asarray(omega, dtype=float)
    if omega.ndim != 1 or omega.size == 0:
        raise ValueError("omega must be a non-empty 1-D sequence")
    if buffer_grid < 2:
        raise ValueError("buffer grid needs at least two points")
    dt = ladder.segment_duration if dt is None else dt

    n_steps = omega.size
    levels = ladder.levels
    target = cfg.resolve_target(max_buffer)
    distortion = cfg.distortion_fn()
    v = np.array(
        [
            distortion(r, ladder.min_bitrate, ladder.max_bitrate)
            for r in ladder.bitrates
        ]
    )
    rates = np.array(ladder.bitrates)
    grid = np.linspace(0.0, max_buffer, buffer_grid)
    h = grid[1] - grid[0]

    # cost[b, q] = min cost to be at buffer grid[b] having just played rung q.
    # q index `levels` encodes "no previous rung" (only valid at step 0).
    big = math.inf
    cost = np.full((buffer_grid, levels + 1), big)
    start_idx = int(round(min(max(x0, 0.0), max_buffer) / h))
    cost[start_idx, levels] = 0.0

    parents: List[np.ndarray] = []

    buffer_cost = np.where(
        grid <= target,
        (target - grid) ** 2,
        cfg.epsilon * (grid - target) ** 2,
    )

    for n in range(n_steps):
        new_cost = np.full((buffer_grid, levels), big)
        parent = np.full((buffer_grid, levels, 2), -1, dtype=np.int32)
        for q in range(levels):
            delta = omega[n] * dt / rates[q] - dt
            shift = delta / h
            # Landing index for every grid start.
            land = np.rint(np.arange(buffer_grid) + shift).astype(np.int64)
            valid = (land >= 0) & (land < buffer_grid)
            video_seconds = omega[n] * dt / rates[q]
            base_step = v[q] * video_seconds
            for q_prev in range(levels + 1):
                src = cost[:, q_prev]
                if not np.any(np.isfinite(src)):
                    continue
                if q_prev == levels:
                    switch = 0.0
                else:
                    switch = cfg.gamma * cfg.switching_cost(v[q], v[q_prev])
                total = src + base_step + switch
                for b in np.nonzero(valid & np.isfinite(src))[0]:
                    lb = land[b]
                    c = total[b] + cfg.beta * buffer_cost[lb]
                    if c < new_cost[lb, q]:
                        new_cost[lb, q] = c
                        parent[lb, q, 0] = b
                        parent[lb, q, 1] = q_prev
        parents.append(parent)
        cost = np.concatenate([new_cost, np.full((buffer_grid, 1), big)], axis=1)

    final = cost[:, :levels]
    if not np.any(np.isfinite(final)):
        return OfflineSolution(cost=math.inf, qualities=(), buffers=())
    b_idx, q_idx = np.unravel_index(np.argmin(final), final.shape)
    best_cost = float(final[b_idx, q_idx])

    # Recover the trajectory.
    qualities: List[int] = []
    buffers: List[float] = []
    b, q = int(b_idx), int(q_idx)
    for n in range(n_steps - 1, -1, -1):
        qualities.append(q)
        buffers.append(float(grid[b]))
        pb, pq = parents[n][b, q]
        b, q = int(pb), int(pq)
    qualities.reverse()
    buffers.reverse()
    return OfflineSolution(
        cost=best_cost, qualities=tuple(qualities), buffers=tuple(buffers)
    )


@dataclass(frozen=True)
class RolloutResult:
    """A time-based SODA rollout against the true bandwidth sequence.

    Attributes:
        cost: realised objective value.
        qualities: committed rung per interval.
        buffers: realised buffer level after each interval.
        violations: count of intervals where the model buffer had to be
            clipped into [0, x_max] (prediction errors can cause this —
            §3.1's execution-phase caveat).
    """

    cost: float
    qualities: Tuple[int, ...]
    buffers: Tuple[float, ...]
    violations: int


def rollout_time_based(
    omega: Sequence[float],
    ladder: BitrateLadder,
    cfg: SodaConfig,
    max_buffer: float,
    x0: float,
    dt: Optional[float] = None,
    predictions: Optional[Callable[[int, int], np.ndarray]] = None,
    prev_quality: Optional[int] = None,
    terminal_weight: float = 1.0,
) -> RolloutResult:
    """Run SODA step-by-step in the time-based model (§3.3).

    Args:
        omega: true bandwidth per interval.
        ladder: discrete bitrate set.
        cfg: SODA weights and horizon K.
        max_buffer: buffer capacity.
        x0: initial buffer level.
        dt: interval length (defaults to segment duration).
        predictions: ``predictions(n, k)`` returns the ω̂ vector of length k
            available at step n; defaults to exact predictions (slices of
            the true sequence — Theorem 4.1's regime).
        prev_quality: rung before the first interval.
        terminal_weight: weight of the soft terminal cost steering the
            planned end-of-horizon buffer back to target — the practical
            stand-in for Algorithm 2's indicator terminal constraint.

    Returns:
        The realised trajectory and cost under the true bandwidths.
    """
    omega = np.asarray(omega, dtype=float)
    dt = ladder.segment_duration if dt is None else dt
    n_steps = omega.size
    target = cfg.resolve_target(max_buffer)
    distortion = cfg.distortion_fn()
    v = [
        distortion(r, ladder.min_bitrate, ladder.max_bitrate)
        for r in ladder.bitrates
    ]

    def exact(n: int, k: int) -> np.ndarray:
        idx = np.minimum(np.arange(n, n + k), n_steps - 1)
        return omega[idx]

    predict = predictions or exact

    solver = solve_brute_force if cfg.use_brute_force else solve_monotonic
    x = float(x0)
    q_prev = prev_quality
    total = 0.0
    violations = 0
    qualities: List[int] = []
    buffers: List[float] = []

    for n in range(n_steps):
        k = min(cfg.horizon, n_steps - n)
        step_cfg = cfg if k == cfg.horizon else cfg.with_(horizon=k)
        omega_hat = np.asarray(predict(n, k), dtype=float)
        plan = solver(
            omega_hat,
            x,
            q_prev,
            ladder,
            step_cfg,
            max_buffer,
            dt=dt,
            terminal_weight=terminal_weight,
        )
        if plan.quality is None:
            # No feasible plan under the prediction: take the rung whose
            # one-step landing point is least infeasible.
            landings = [
                x + omega_hat[0] * dt / r - dt for r in ladder.bitrates
            ]
            q = min(
                range(ladder.levels),
                key=lambda i: max(-landings[i], landings[i] - max_buffer, 0.0),
            )
        else:
            q = plan.quality

        r = ladder.bitrates[q]
        x_next = x + omega[n] * dt / r - dt
        if x_next < 0.0 or x_next > max_buffer:
            violations += 1
            x_next = min(max(x_next, 0.0), max_buffer)

        video_seconds = omega[n] * dt / r
        step_cost = v[q] * video_seconds
        step_cost += cfg.beta * cfg.buffer_cost(x_next, target)
        if q_prev is not None:
            step_cost += cfg.gamma * cfg.switching_cost(v[q], v[q_prev])
        total += step_cost

        qualities.append(q)
        buffers.append(x_next)
        x = x_next
        q_prev = q

    return RolloutResult(
        cost=total,
        qualities=tuple(qualities),
        buffers=tuple(buffers),
        violations=violations,
    )
