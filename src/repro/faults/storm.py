"""Correlated fault storms: cohort-level events over a session population.

:mod:`repro.faults.plan` injects *per-session* download faults — every
session draws its own independent stream.  Real incidents are correlated:
a regional backbone degradation collapses bandwidth for every session in
one region at once, a CDN outage takes out every session pinned to one
CDN, and a flash crowd multiplies the arrival rate fleet-wide.  This
module expresses those as a seeded :class:`StormSchedule` of
:class:`StormEvent` windows that the population simulator
(:mod:`repro.sim.population`) applies to *masked slices* of its session
arrays — the hot loop stays vectorized because an event resolves to one
boolean mask and one multiplier per tick.

Schedules are pure functions of ``(spec, horizon, seed)``: regenerating
one after a crash-resume yields the identical event list, so no storm
state needs checkpointing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["StormKind", "StormEvent", "StormSpec", "StormSchedule"]


class StormKind(enum.Enum):
    """The correlated incident classes a schedule can contain."""

    REGIONAL_COLLAPSE = "regional-collapse"  #: bandwidth multiplier on regions
    CDN_OUTAGE = "cdn-outage"                #: near-total loss on one CDN
    FLASH_CROWD = "flash-crowd"              #: fleet-wide arrival-rate surge


@dataclass(frozen=True)
class StormEvent:
    """One correlated incident window.

    Attributes:
        kind: which incident class this is.
        start: window start, seconds into the run.
        duration: window length, seconds.
        targets: region ids (:attr:`StormKind.REGIONAL_COLLAPSE`) or CDN
            ids (:attr:`StormKind.CDN_OUTAGE`) the event hits; empty
            means *every* cohort.  Ignored for flash crowds, which are
            fleet-wide by definition.
        magnitude: throughput multiplier in ``[0, 1]`` for collapse and
            outage events (0 = total loss), arrival-rate multiplier
            (``> 1``) for flash crowds.
    """

    kind: StormKind
    start: float
    duration: float
    targets: Tuple[int, ...] = ()
    magnitude: float = 0.5

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError("storm windows need start >= 0, duration > 0")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")
        if self.kind is StormKind.FLASH_CROWD and self.magnitude < 1.0:
            raise ValueError("flash-crowd magnitude must be >= 1")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


@dataclass(frozen=True)
class StormSpec:
    """Rates and magnitudes for seeded schedule generation.

    Rates are expected events per simulated hour at ``intensity == 1``;
    windows are exponential draws around the mean lengths, clamped so an
    event never outlives the run.
    """

    collapse_per_hour: float = 1.0
    collapse_minutes: float = 8.0
    collapse_magnitude: float = 0.15
    outage_per_hour: float = 0.5
    outage_minutes: float = 3.0
    outage_magnitude: float = 0.02
    crowd_per_hour: float = 0.5
    crowd_minutes: float = 6.0
    crowd_magnitude: float = 2.5

    def __post_init__(self) -> None:
        for name in ("collapse_per_hour", "outage_per_hour", "crowd_per_hour"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in ("collapse_minutes", "outage_minutes", "crowd_minutes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.collapse_magnitude <= 1.0:
            raise ValueError("collapse_magnitude must be in [0, 1]")
        if not 0.0 <= self.outage_magnitude <= 1.0:
            raise ValueError("outage_magnitude must be in [0, 1]")
        if self.crowd_magnitude < 1.0:
            raise ValueError("crowd_magnitude must be >= 1")


class StormSchedule:
    """An ordered list of correlated incidents over one run.

    Build one explicitly from events, or :meth:`generate` a seeded random
    schedule.  The two query methods are the vectorized hot-path API:

    * :meth:`throughput_factors` — per-session bandwidth multipliers for
      one instant, given each session's region and CDN assignment
      (``None`` when nothing is active, so the clean path costs one
      cursor check);
    * :meth:`arrival_factor` — the scalar arrival-rate multiplier.
    """

    def __init__(self, events: Sequence[StormEvent] = ()) -> None:
        self.events: List[StormEvent] = sorted(
            events, key=lambda e: (e.start, e.kind.value)
        )

    # ------------------------------------------------------------------
    @staticmethod
    def generate(
        horizon: float,
        regions: int,
        cdns: int,
        intensity: float = 1.0,
        seed: int = 0,
        spec: Optional[StormSpec] = None,
    ) -> "StormSchedule":
        """A seeded random schedule over ``[0, horizon)`` seconds.

        Event counts are Poisson in ``intensity × rate × horizon``;
        collapse events hit a random non-empty subset of regions, outages
        one CDN.  The same arguments always produce the identical
        schedule (the generator is local), which is what lets a resumed
        run rebuild its storms from config alone.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if regions < 1 or cdns < 1:
            raise ValueError("need at least one region and one CDN")
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        spec = spec or StormSpec()
        if intensity == 0:
            return StormSchedule()
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5708]))
        hours = horizon / 3600.0
        events: List[StormEvent] = []

        def windows(per_hour: float, mean_minutes: float):
            count = int(rng.poisson(intensity * per_hour * hours))
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon))
                duration = float(
                    min(rng.exponential(mean_minutes * 60.0) + 30.0,
                        horizon - start)
                )
                if duration > 0:
                    yield start, duration

        for start, duration in windows(
            spec.collapse_per_hour, spec.collapse_minutes
        ):
            hit = 1 + int(rng.integers(0, max(1, regions // 2)))
            targets = tuple(
                int(r)
                for r in rng.choice(regions, size=min(hit, regions),
                                    replace=False)
            )
            events.append(StormEvent(
                StormKind.REGIONAL_COLLAPSE, start, duration,
                targets=targets, magnitude=spec.collapse_magnitude,
            ))
        for start, duration in windows(
            spec.outage_per_hour, spec.outage_minutes
        ):
            events.append(StormEvent(
                StormKind.CDN_OUTAGE, start, duration,
                targets=(int(rng.integers(0, cdns)),),
                magnitude=spec.outage_magnitude,
            ))
        for start, duration in windows(spec.crowd_per_hour, spec.crowd_minutes):
            events.append(StormEvent(
                StormKind.FLASH_CROWD, start, duration,
                magnitude=spec.crowd_magnitude,
            ))
        return StormSchedule(events)

    # ------------------------------------------------------------------
    def active(self, t: float) -> List[StormEvent]:
        """Every event whose window covers instant ``t``."""
        return [e for e in self.events if e.active_at(t)]

    def arrival_factor(self, t: float) -> float:
        """Scalar arrival-rate multiplier at instant ``t``."""
        factor = 1.0
        for event in self.events:
            if event.kind is StormKind.FLASH_CROWD and event.active_at(t):
                factor *= event.magnitude
        return factor

    def throughput_factors(
        self,
        t: float,
        region_ids: np.ndarray,
        cdn_ids: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Per-session bandwidth multipliers at instant ``t``.

        Args:
            t: instant, seconds into the run.
            region_ids: per-session region assignment (int array).
            cdn_ids: per-session CDN assignment, aligned with
                ``region_ids``.

        Returns:
            ``None`` when no bandwidth-affecting event is active (the
            common case, so callers skip the multiply entirely);
            otherwise a float array aligned with the inputs.  Multiple
            overlapping events compound multiplicatively.
        """
        factors: Optional[np.ndarray] = None
        for event in self.events:
            if not event.active_at(t):
                continue
            if event.kind is StormKind.REGIONAL_COLLAPSE:
                ids, axis = event.targets, region_ids
            elif event.kind is StormKind.CDN_OUTAGE:
                ids, axis = event.targets, cdn_ids
            else:
                continue
            if factors is None:
                factors = np.ones(len(axis))
            if ids:
                mask = np.isin(axis, np.asarray(ids))
            else:
                mask = slice(None)
            factors[mask] *= event.magnitude
        return factors

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {}
        for e in self.events:
            kinds[e.kind.value] = kinds.get(e.kind.value, 0) + 1
        return f"<StormSchedule {len(self.events)} events {kinds}>"
