"""Operational fault injection for segment downloads (see DESIGN.md §7)."""

from .plan import (
    CLEAN,
    DownloadFaultHook,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultSpec,
    compose,
)
from .storm import StormEvent, StormKind, StormSchedule, StormSpec

__all__ = [
    "CLEAN",
    "DownloadFaultHook",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "compose",
    "StormEvent",
    "StormKind",
    "StormSchedule",
    "StormSpec",
]
