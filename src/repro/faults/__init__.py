"""Operational fault injection for segment downloads (see DESIGN.md §7)."""

from .plan import (
    CLEAN,
    DownloadFaultHook,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultSpec,
    compose,
)

__all__ = [
    "CLEAN",
    "DownloadFaultHook",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "compose",
]
