"""Operational fault model for segment downloads.

The paper's robustness analysis (Thm 4.2, §6.1.4) covers *prediction* error;
its production deployment (§6.3) additionally faced *operational* faults —
failed fetches, mid-download stalls, request timeouts, latency spikes,
transient CDN outages, and corrupted throughput measurements.  This module
expresses those as a seeded, composable :class:`FaultPlan` that the player
simulator consults once per download attempt through a small hook protocol:

    ``on_attempt(wall_time, segment_index, attempt, quality) -> FaultDecision``

Any object with that method works as a hook; :func:`compose` merges several
hooks into one (faults accumulate).  Plans are deterministic under a seed
and :meth:`FaultPlan.fork` derives independent per-session streams, so
whole-dataset sweeps are reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FaultKind",
    "FaultDecision",
    "FaultSpec",
    "FaultPlan",
    "DownloadFaultHook",
    "compose",
    "CLEAN",
]


class FaultKind(enum.Enum):
    """The operational fault classes the plan can inject."""

    FAILURE = "failure"          #: the download attempt errors out
    STALL = "stall"              #: dead time in the middle of the transfer
    LATENCY_SPIKE = "latency"    #: extra request latency before payload flows
    OUTAGE = "outage"            #: transient outage window; attempts fail fast
    CORRUPT_SAMPLE = "corrupt"   #: throughput measurement is garbage


@dataclass(frozen=True)
class FaultDecision:
    """What the fault layer does to one download attempt.

    Attributes:
        failed: the attempt errors out after ``wasted_time`` seconds and
            must be retried (or forced through once retries are exhausted).
        wasted_time: wall-clock seconds the failed attempt consumed.
        stall_extra: dead seconds inserted mid-transfer (no payload flows).
        latency_extra: extra request latency in seconds, on top of the
            player's configured RTT.
        corrupt_throughput: when set, the throughput value the *controller*
            observes for this download (NaN, zero, or negative); the real
            session dynamics are unaffected.
        kinds: which fault classes fired, for accounting.
    """

    failed: bool = False
    wasted_time: float = 0.0
    stall_extra: float = 0.0
    latency_extra: float = 0.0
    corrupt_throughput: Optional[float] = None
    kinds: Tuple[FaultKind, ...] = ()

    @property
    def is_clean(self) -> bool:
        """True when the attempt proceeds completely unmolested."""
        return not self.kinds


#: the no-fault decision, shared to avoid per-attempt allocation
CLEAN = FaultDecision()


class DownloadFaultHook:
    """Protocol for per-download-attempt fault injection.

    Anything with this method can be passed to the simulators; subclassing
    is optional.  ``reset()`` (optional) is called at session start.
    """

    def on_attempt(
        self,
        wall_time: float,
        segment_index: int,
        attempt: int,
        quality: int,
    ) -> FaultDecision:  # pragma: no cover - protocol stub
        raise NotImplementedError


@dataclass(frozen=True)
class FaultSpec:
    """Per-attempt fault probabilities and magnitudes.

    Rates are per download attempt in [0, 1]; magnitudes are means of
    exponential draws, so individual faults vary while the seeded stream
    stays reproducible.

    Attributes:
        failure_rate: chance an attempt errors out.
        failure_wasted_seconds: mean wall time a failed attempt burns.
        stall_rate: chance of a mid-download stall.
        stall_seconds: mean stall length.
        latency_rate: chance of a request-latency spike.
        latency_seconds: mean spike size.
        outage_rate: chance an attempt *opens* a transient outage window
            (attempts inside the window fail fast until it passes).
        outage_seconds: mean outage window length.
        corrupt_rate: chance the throughput sample the controller sees is
            replaced with NaN, zero, or a negative value.
        max_consecutive_failures: hard bound on failures injected for one
            segment, so a session always makes progress.
    """

    failure_rate: float = 0.0
    failure_wasted_seconds: float = 1.0
    stall_rate: float = 0.0
    stall_seconds: float = 2.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.5
    outage_rate: float = 0.0
    outage_seconds: float = 4.0
    corrupt_rate: float = 0.0
    max_consecutive_failures: int = 8

    def __post_init__(self) -> None:
        for name in (
            "failure_rate", "stall_rate", "latency_rate", "outage_rate",
            "corrupt_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        for name in (
            "failure_wasted_seconds", "stall_seconds", "latency_seconds",
            "outage_seconds",
        ):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and non-negative")
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be at least 1")

    def scaled(self, factor: float) -> "FaultSpec":
        """A copy with every rate multiplied by ``factor`` (capped at 1)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(
            self,
            failure_rate=min(self.failure_rate * factor, 1.0),
            stall_rate=min(self.stall_rate * factor, 1.0),
            latency_rate=min(self.latency_rate * factor, 1.0),
            outage_rate=min(self.outage_rate * factor, 1.0),
            corrupt_rate=min(self.corrupt_rate * factor, 1.0),
        )


#: the blend of fault classes used by intensity sweeps, at intensity 1.0
_INTENSITY_BLEND = FaultSpec(
    failure_rate=0.35,
    stall_rate=0.25,
    latency_rate=0.5,
    outage_rate=0.08,
    corrupt_rate=0.25,
)

#: corrupted-throughput values cycled through by the plan
_CORRUPT_VALUES = (float("nan"), 0.0, -1.0, float("inf"))


class FaultPlan(DownloadFaultHook):
    """A seeded stream of download faults.

    Args:
        spec: fault probabilities and magnitudes.
        seed: RNG seed; the same (spec, seed) pair always injects the same
            faults into the same attempt sequence.
    """

    def __init__(self, spec: Optional[FaultSpec] = None, seed: int = 0) -> None:
        self.spec = spec or FaultSpec()
        self.seed = seed
        self.injected = 0
        self.reset()

    # ------------------------------------------------------------------
    @staticmethod
    def of_intensity(intensity: float, seed: int = 0) -> "FaultPlan":
        """A plan blending every fault class, scaled by ``intensity``.

        ``intensity`` 0 injects nothing; 1.0 reaches a 35% per-attempt
        failure rate plus stalls, latency spikes, outages, and corrupted
        samples.  This is the knob the robustness sweeps turn.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return FaultPlan(_INTENSITY_BLEND.scaled(intensity), seed=seed)

    @staticmethod
    def failures_only(rate: float, seed: int = 0) -> "FaultPlan":
        """A plan injecting only download failures at ``rate``."""
        return FaultPlan(FaultSpec(failure_rate=rate), seed=seed)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind the fault stream to the start of a session."""
        self._rng = np.random.default_rng(self.seed)
        self._outage_until = -1.0
        self._segment_failures = 0
        self._last_segment = -1
        self._corrupt_cursor = 0
        self.injected = 0

    def fork(self, stream: int) -> "FaultPlan":
        """An independent plan for parallel session ``stream``."""
        return FaultPlan(self.spec, seed=self.seed * 1_000_003 + stream + 1)

    # ------------------------------------------------------------------
    def on_attempt(
        self,
        wall_time: float,
        segment_index: int,
        attempt: int,
        quality: int,
    ) -> FaultDecision:
        """Decide the faults afflicting one download attempt."""
        spec = self.spec
        rng = self._rng
        if segment_index != self._last_segment:
            self._last_segment = segment_index
            self._segment_failures = 0

        kinds: list = []
        failed = False
        wasted = 0.0
        stall = 0.0
        latency = 0.0
        corrupt: Optional[float] = None

        # Transient outages: attempts inside an open window fail fast.
        if wall_time < self._outage_until:
            if self._segment_failures < spec.max_consecutive_failures:
                failed = True
                wasted = min(self._outage_until - wall_time, 30.0)
                kinds.append(FaultKind.OUTAGE)
        elif spec.outage_rate > 0 and rng.random() < spec.outage_rate:
            window = rng.exponential(spec.outage_seconds)
            self._outage_until = wall_time + window
            if self._segment_failures < spec.max_consecutive_failures:
                failed = True
                wasted = min(window, 30.0)
                kinds.append(FaultKind.OUTAGE)

        if (
            not failed
            and spec.failure_rate > 0
            and self._segment_failures < spec.max_consecutive_failures
            and rng.random() < spec.failure_rate
        ):
            failed = True
            wasted = rng.exponential(spec.failure_wasted_seconds)
            kinds.append(FaultKind.FAILURE)

        if failed:
            self._segment_failures += 1
        else:
            if spec.stall_rate > 0 and rng.random() < spec.stall_rate:
                stall = rng.exponential(spec.stall_seconds)
                kinds.append(FaultKind.STALL)
            if spec.latency_rate > 0 and rng.random() < spec.latency_rate:
                latency = rng.exponential(spec.latency_seconds)
                kinds.append(FaultKind.LATENCY_SPIKE)
            if spec.corrupt_rate > 0 and rng.random() < spec.corrupt_rate:
                corrupt = _CORRUPT_VALUES[
                    self._corrupt_cursor % len(_CORRUPT_VALUES)
                ]
                self._corrupt_cursor += 1
                kinds.append(FaultKind.CORRUPT_SAMPLE)

        if not kinds:
            return CLEAN
        self.injected += 1
        return FaultDecision(
            failed=failed,
            wasted_time=wasted,
            stall_extra=stall,
            latency_extra=latency,
            corrupt_throughput=corrupt,
            kinds=tuple(kinds),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultPlan seed={self.seed} spec={self.spec}>"


@dataclass
class _ComposedHook(DownloadFaultHook):
    """Merge of several fault hooks; faults accumulate across them."""

    hooks: Sequence[DownloadFaultHook] = field(default_factory=tuple)

    def reset(self) -> None:
        for hook in self.hooks:
            reset = getattr(hook, "reset", None)
            if callable(reset):
                reset()

    def on_attempt(
        self,
        wall_time: float,
        segment_index: int,
        attempt: int,
        quality: int,
    ) -> FaultDecision:
        failed = False
        wasted = 0.0
        stall = 0.0
        latency = 0.0
        corrupt: Optional[float] = None
        kinds: list = []
        for hook in self.hooks:
            d = hook.on_attempt(wall_time, segment_index, attempt, quality)
            if d.is_clean:
                continue
            failed = failed or d.failed
            wasted = max(wasted, d.wasted_time)
            stall += d.stall_extra
            latency += d.latency_extra
            if corrupt is None:
                corrupt = d.corrupt_throughput
            kinds.extend(d.kinds)
        if not kinds:
            return CLEAN
        return FaultDecision(
            failed=failed,
            wasted_time=wasted,
            stall_extra=stall,
            latency_extra=latency,
            corrupt_throughput=corrupt,
            kinds=tuple(kinds),
        )


def compose(*hooks: DownloadFaultHook) -> DownloadFaultHook:
    """Combine fault hooks into one; each attempt consults all of them."""
    if not hooks:
        raise ValueError("compose needs at least one hook")
    if len(hooks) == 1:
        return hooks[0]
    return _ComposedHook(tuple(hooks))
