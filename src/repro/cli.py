"""Command-line interface: run experiments without writing code.

Subcommands:

* ``compare`` — controller suite over a synthetic dataset (a mini Fig. 10);
* ``session`` — one session of one controller on a trace/scenario, with an
  optional event timeline;
* ``trace`` — generate a synthetic trace to CSV or summarise a trace file;
* ``decide`` — a single SODA decision for a (throughput, buffer, prev) situation;
* ``tune`` — grid-search SODA weights for a dataset;
* ``robustness`` — QoE-degradation curves under injected download faults;
* ``serve`` — the multi-session decision service under a clean synthetic
  workload, with a health-snapshot report;
* ``soak`` — the chaos-soak harness: the same service under injected
  solver and observation faults, gated on its serving invariants; with
  ``--shards N`` the sharded fleet instead, where chaos SIGKILLs a
  worker mid-run and the gate adds re-homing and restart; with
  ``--rollout`` the double-fault rollout soak, where a poisoned table is
  canaried while a baseline worker is SIGKILLed and the gate adds
  automatic rollback, version convergence, and cell identity;
* ``population`` — the vectorized population simulator: 1M+ coarse
  fleet sessions with diurnal/flash-crowd arrivals, correlated fault
  storms, atomic checkpoints with ``--resume`` (bit-identical
  aggregates), and a ``--serve`` mode that drives every decision
  through the live sharded service;
* ``table`` — build a memory-mapped decision table file (versioned,
  checksummed) or inspect one;
* ``learn`` — the offline learning pipeline (``extract``, ``bc``,
  ``finetune``, ``distill``, ``eval``): demonstration datasets from
  journaled ``compare --log-decisions`` runs, behavior cloning,
  RL fine-tuning, distillation to a servable decision table, and a
  stability evaluation against SODA (with an optional 2-shard canary
  rollout check).

``compare`` and ``robustness`` accept the experiment-runner options
``--jobs N`` (supervised worker pool with crash containment),
``--journal out.jsonl`` (atomic JSONL run journal), ``--resume`` (skip
sessions already journaled under the same config), ``--session-timeout``
(per-session wall-clock budget), and ``--strict-audit`` (exit 2 when any
completed session is flagged by the invariant auditor).

Run ``python -m repro.cli <subcommand> --help`` for options.  Operational
errors (missing files, bad values) exit with code 2 and a one-line message.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .abr import (
    BbaController,
    BolaController,
    DynamicController,
    FuguController,
    HybController,
    PidController,
    RateController,
    RobustMpcController,
)
from .analysis import (
    qoe_table,
    run_suite,
    standard_controllers,
    sweep_fault_intensity,
)
from .core.controller import SodaController
from .core.objective import SodaConfig
from .core.tuning import tune_soda
from .qoe import qoe_from_session
from .runner import JournalError
from .sim.events import TimelineRecorder
from .sim.profiles import live_profile
from .sim.session import run_session
from .traces import DATASET_FACTORIES, load_bandwidth_csv
from .traces import scenarios as scenario_lib

__all__ = ["main", "build_parser"]

_CONTROLLERS = {
    "soda": SodaController,
    "hyb": HybController,
    "bola": BolaController,
    "dynamic": DynamicController,
    "mpc": RobustMpcController,
    "fugu": FuguController,
    "bba": BbaController,
    "pid": PidController,
    "rate": RateController,
}

# Scenario factories, re-parameterised so events scale with the duration.
_SCENARIOS = {
    "step-down": lambda duration: scenario_lib.step_down(
        at=0.4 * duration, duration=duration
    ),
    "step-up": lambda duration: scenario_lib.step_up(
        at=0.4 * duration, duration=duration
    ),
    "spike": lambda duration: scenario_lib.spike(
        at=0.4 * duration, width=0.05 * duration, duration=duration
    ),
    "outage": lambda duration: scenario_lib.outage(
        at=0.4 * duration, width=0.05 * duration, duration=duration
    ),
    "ramp": lambda duration: scenario_lib.ramp(duration=duration),
    "oscillation": lambda duration: scenario_lib.oscillation(
        period=duration / 8.0, duration=duration
    ),
    "sawtooth": lambda duration: scenario_lib.sawtooth(
        period=duration / 5.0, duration=duration
    ),
}


def _add_runner_args(p: argparse.ArgumentParser) -> None:
    """Experiment-runner options shared by compare/robustness."""
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; >1 fans sessions out to a "
                        "supervised pool with crash containment")
    p.add_argument("--journal",
                   help="JSONL run journal; every completed session is "
                        "flushed atomically (with --dataset all, the "
                        "dataset name is appended to the path)")
    p.add_argument("--resume", action="store_true",
                   help="replay the journal and skip completed sessions "
                        "(refuses a config-hash mismatch)")
    p.add_argument("--session-timeout", type=float, default=None,
                   help="per-session wall-clock budget in seconds, "
                        "enforced by killing the worker (--jobs > 1)")
    p.add_argument("--strict-audit", action="store_true",
                   help="exit 2 when any completed session is flagged "
                        "by the invariant auditor")


def _print_failures(result) -> None:
    """One-line per-controller failure summary, on stderr."""
    for line in result.failure_lines():
        print(f"repro: warning: {line}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SODA (SIGCOMM 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="controller suite over a dataset")
    p.add_argument("--dataset", choices=[*DATASET_FACTORIES, "all"],
                   default="puffer")
    p.add_argument("--sessions", type=int, default=6)
    p.add_argument("--duration", type=float, default=480.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--solver-backend", choices=["reference", "fast"],
                   default="fast",
                   help="SODA horizon solver: the vectorized fast path "
                        "(default) or the recursive reference")
    p.add_argument("--log-decisions", action="store_true",
                   help="record every controller answer on each session "
                        "record (demonstration data for 'repro learn'; "
                        "changes the journal config hash)")
    _add_runner_args(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("session", help="run one controller on one trace")
    p.add_argument("controller", choices=sorted(_CONTROLLERS))
    p.add_argument("--scenario", choices=sorted(_SCENARIOS), default="outage")
    p.add_argument("--trace-csv", help="time,bandwidth CSV instead of a scenario")
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--timeline", action="store_true",
                   help="print the event timeline")
    p.set_defaults(func=_cmd_session)

    p = sub.add_parser("trace", help="generate or summarise a trace")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES),
                   default="puffer")
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="write time,bandwidth CSV here")
    p.add_argument("--summarize", help="summarise an existing CSV instead")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "robustness",
        help="QoE degradation of the controller suite under injected faults",
    )
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES),
                   default="puffer")
    p.add_argument("--sessions", type=int, default=4)
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--intensities", default="0,0.1,0.2,0.4",
                   help="comma-separated fault intensities, ascending")
    p.add_argument("--resilient", action="store_true",
                   help="wrap every controller in ResilientController")
    _add_runner_args(p)
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser("decide", help="one SODA decision for a situation")
    p.add_argument("--throughput", type=float, required=True,
                   help="predicted throughput, Mb/s")
    p.add_argument("--buffer", type=float, required=True,
                   help="buffer level, seconds")
    p.add_argument("--solver-backend", choices=["reference", "fast"],
                   default="fast",
                   help="horizon solver backend for this decision")
    p.add_argument("--prev", type=int, default=None,
                   help="previous rung index (omit at session start)")
    p.add_argument("--max-buffer", type=float, default=20.0)
    p.set_defaults(func=_cmd_decide)

    p = sub.add_parser("tune", help="grid-search SODA weights on a dataset")
    p.add_argument("--dataset", choices=sorted(DATASET_FACTORIES),
                   default="puffer")
    p.add_argument("--sessions", type=int, default=4)
    p.add_argument("--duration", type=float, default=300.0)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser(
        "serve",
        help="drive the decision service with a clean synthetic workload",
    )
    _add_service_args(p)
    p.set_defaults(func=_cmd_serve, chaos=False)

    p = sub.add_parser(
        "soak",
        help="chaos-soak the decision service and check its invariants",
    )
    _add_service_args(p)
    p.add_argument("--intensity", type=float, default=0.3,
                   help="observation fault-plan intensity, 0..1")
    p.add_argument("--crash-rate", type=float, default=0.02,
                   help="random tier-0 crash probability")
    p.add_argument("--slow-rate", type=float, default=0.02,
                   help="random over-deadline tier-0 sleep probability")
    p.add_argument("--burst-at", type=int, default=200,
                   help="tier-0 call count at which the crash burst "
                        "starts (trips the breaker once)")
    p.add_argument("--kill-at", type=int, default=None,
                   help="with --shards: decision count at which a live "
                        "worker is SIGKILLed (default: half the run)")
    p.add_argument("--rollout", action="store_true",
                   help="with --shards >= 2: roll out a poisoned table "
                        "mid-run (plus a baseline worker SIGKILL) and "
                        "gate on automatic canary rollback")
    p.add_argument("--rollout-at", type=int, default=None,
                   help="decision count at which the rollout starts "
                        "(default: a third of the run)")
    p.add_argument("--rollout-report",
                   help="write the rollout/rollback report JSON here")
    p.set_defaults(func=_cmd_serve, chaos=True)

    p = sub.add_parser(
        "population",
        help="vectorized population simulation: 1M+ coarse fleet sessions",
    )
    p.add_argument("--sessions", type=int, default=100_000,
                   help="expected arrivals over the run")
    p.add_argument("--duration-hours", type=float, default=2.0,
                   help="simulated span, hours")
    p.add_argument("--tick", type=float, default=2.0,
                   help="event-core step, seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--capacity", type=int, default=0,
                   help="concurrent-session slab size (0 = auto from the "
                        "peak arrival rate; overflow arrivals are shed)")
    p.add_argument("--regions", type=int, default=8)
    p.add_argument("--cdns", type=int, default=3)
    p.add_argument("--flash-crowds", type=int, default=2,
                   help="flash-crowd bursts built into the arrival plan")
    p.add_argument("--storm-intensity", type=float, default=0.0,
                   help="correlated fault-storm intensity (0 = none)")
    p.add_argument("--content-minutes", type=float, default=40.0)
    p.add_argument("--max-buffer", type=float, default=20.0)
    p.add_argument("--table-points", type=int, default=32,
                   help="decision-table grid points per axis")
    p.add_argument("--backend", choices=["table", "solver"],
                   default="table",
                   help="decision backend: shared lookup table (default) "
                        "or exact cross-session batched tier-0 solves")
    p.add_argument("--checkpoint",
                   help="checkpoint file (.npz); the full population "
                        "state is written atomically every "
                        "--checkpoint-every ticks")
    p.add_argument("--checkpoint-every", type=int, default=50,
                   help="checkpoint cadence in ticks")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists (refuses "
                        "a config-hash mismatch); final aggregates are "
                        "bit-identical to an uninterrupted run")
    p.add_argument("--serve", action="store_true",
                   help="drive decisions through a live sharded decision "
                        "service (fleet-scale soak; excludes checkpoints)")
    p.add_argument("--shards", type=int, default=2,
                   help="with --serve: shard worker count")
    p.add_argument("--deadline", type=float, default=0.05,
                   help="with --serve: per-decision budget, seconds")
    p.add_argument("--kill-at", type=int, default=None,
                   help="with --serve: tick at which one live shard "
                        "worker is SIGKILLed (chaos)")
    p.add_argument("--report",
                   help="write the fleet report JSON (SLO curve, "
                        "per-cohort QoE distributions) here")
    p.add_argument("--out",
                   help="append a perf entry to this JSON trajectory file")
    p.add_argument("--quiet", action="store_true",
                   help="suppress progress lines")
    p.set_defaults(func=_cmd_population)

    p = sub.add_parser(
        "table",
        help="build or inspect a memory-mapped decision table file",
    )
    tsub = p.add_subparsers(dest="table_command", required=True)
    tp = tsub.add_parser("build", help="precompute a table and publish it")
    tp.add_argument("out", help="destination .sodatbl file")
    tp.add_argument("--table-points", type=int, default=32,
                    help="grid points per axis")
    tp.add_argument("--max-buffer", type=float, default=20.0,
                    help="client buffer capacity, seconds")
    tp.add_argument("--solver-backend", choices=["reference", "fast"],
                    default="fast")
    tp.add_argument("--table-version", type=int, default=None,
                    help="monotonic table version to stamp into the header "
                         "(default: 1)")
    tp.set_defaults(func=_cmd_table_build)
    tp = tsub.add_parser("inspect", help="validate and summarise a table file")
    tp.add_argument("path", help=".sodatbl file to inspect")
    tp.set_defaults(func=_cmd_table_inspect)

    p = sub.add_parser(
        "learn",
        help="offline learning pipeline: journals -> BC -> fine-tune "
             "-> distill -> serve",
    )
    lsub = p.add_subparsers(dest="learn_command", required=True)

    lp = lsub.add_parser(
        "extract", help="demonstration JSONL from a --log-decisions journal"
    )
    lp.add_argument("--journal", required=True,
                    help="source run journal (plain or gzip JSONL)")
    lp.add_argument("--out", required=True,
                    help="demonstration file to write (.gz compresses)")
    lp.add_argument("--controller", default="soda",
                    help="teacher whose decisions to keep")
    lp.set_defaults(func=_cmd_learn_extract)

    lp = lsub.add_parser(
        "bc", help="behavior-clone a greedy policy from demonstrations"
    )
    lp.add_argument("--demos", required=True, help="demonstration file")
    lp.add_argument("--out", required=True, help="policy JSON to write")
    lp.add_argument("--smoothing", type=float, default=0.5,
                    help="Laplace pseudo-count per action")
    lp.add_argument("--buffer-buckets", type=int, default=8)
    lp.add_argument("--throughput-buckets", type=int, default=8)
    lp.add_argument("--coverage-json",
                    help="write the state-coverage report JSON here")
    lp.set_defaults(func=_cmd_learn_bc)

    lp = lsub.add_parser(
        "finetune",
        help="RL fine-tuning: warm-start the Q-learner from a cloned "
             "policy, anchored to the teacher",
    )
    lp.add_argument("--policy", required=True, help="cloned policy JSON")
    lp.add_argument("--out", required=True,
                    help="fine-tuned policy JSON to write")
    lp.add_argument("--dataset", choices=sorted(DATASET_FACTORIES),
                    default="puffer")
    lp.add_argument("--sessions", type=int, default=4,
                    help="fine-tuning traces")
    lp.add_argument("--duration", type=float, default=240.0)
    lp.add_argument("--episodes", type=int, default=40)
    lp.add_argument("--anchor-epsilon", type=float, default=0.3,
                    help="per-decision probability of taking the "
                         "teacher's action (0 disables the anchor)")
    lp.add_argument("--epsilon-start", type=float, default=0.15)
    lp.add_argument("--epsilon-end", type=float, default=0.02)
    lp.add_argument("--seed", type=int, default=0)
    lp.set_defaults(func=_cmd_learn_finetune)

    lp = lsub.add_parser(
        "distill",
        help="render a policy onto a dense servable decision-table file",
    )
    lp.add_argument("--policy", required=True, help="policy JSON to distill")
    lp.add_argument("--out", required=True, help=".sodatbl file to write")
    lp.add_argument("--table-points", type=int, default=32,
                    help="grid points per axis")
    lp.add_argument("--table-version", type=int, default=1,
                    help="monotonic table version stamped into the header")
    lp.set_defaults(func=_cmd_learn_distill)

    lp = lsub.add_parser(
        "eval",
        help="stability evaluation of learned policies vs SODA on the "
             "robustness sweep",
    )
    lp.add_argument("--policy", required=True,
                    help="cloned policy JSON to evaluate")
    lp.add_argument("--finetuned",
                    help="fine-tuned policy JSON to evaluate alongside")
    lp.add_argument("--distilled",
                    help="distilled .sodatbl to evaluate at tier-1 lookup "
                         "semantics (adds a solver-table head-to-head)")
    lp.add_argument("--dataset", choices=sorted(DATASET_FACTORIES),
                    default="puffer")
    lp.add_argument("--sessions", type=int, default=4)
    lp.add_argument("--duration", type=float, default=240.0)
    lp.add_argument("--seed", type=int, default=1)
    lp.add_argument("--intensities", default="0,0.2",
                    help="comma-separated fault intensities, ascending")
    lp.add_argument("--jobs", type=int, default=1)
    lp.add_argument("--serve-check", action="store_true",
                    help="with --distilled: canary-roll the table onto a "
                         "live 2-shard service and require a commit")
    lp.add_argument("--out",
                    help="append the evaluation summary to this JSON "
                         "perf-trajectory file")
    lp.set_defaults(func=_cmd_learn_eval)

    return parser


def _add_service_args(p: argparse.ArgumentParser) -> None:
    """Workload/service options shared by serve/soak."""
    p.add_argument("--sessions", type=int, default=200,
                   help="synthetic streaming sessions to drive")
    p.add_argument("--segments", type=int, default=30,
                   help="decisions per session")
    p.add_argument("--threads", type=int, default=8,
                   help="concurrent client worker threads")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--deadline", type=float, default=0.05,
                   help="per-decision budget, seconds")
    p.add_argument("--table-points", type=int, default=12,
                   help="tier-1 decision-table grid points per axis "
                        "(0 disables the table)")
    p.add_argument("--max-sessions", type=int, default=64,
                   help="resident-session cap (LRU eviction beyond it)")
    p.add_argument("--max-in-flight", type=int, default=4,
                   help="concurrent decision slots before load shedding")
    p.add_argument("--shards", type=int, default=0,
                   help="serve from a sharded fleet of this many worker "
                        "processes (0: one in-process service)")
    p.add_argument("--tier0-chunk", type=int, default=16,
                   help="sessions per batched tier-0 solver call in the "
                        "service's batch paths (1 disables cross-session "
                        "batching)")
    p.add_argument("--batch-window", type=float, default=0.0,
                   help="micro-batch collection window in seconds for the "
                        "clean serve workload (0 disables the "
                        "micro-batcher; requires --shards 0)")
    p.add_argument("--health-json",
                   help="write the final health snapshot JSON here "
                        "(the fleet health with --shards)")
    p.add_argument("--out",
                   help="append a perf summary entry (decisions/sec, "
                        "latency percentiles) to this JSON file")


# ----------------------------------------------------------------------
def _cmd_compare(args: argparse.Namespace) -> int:
    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal")
    names = list(DATASET_FACTORIES) if args.dataset == "all" else [args.dataset]
    failed = 0
    flagged = 0
    for name in names:
        traces = DATASET_FACTORIES[name]().dataset(
            args.sessions, args.duration, seed=args.seed
        )
        profile = live_profile(
            session_seconds=args.duration, cellular=name in ("5g", "4g")
        )
        journal = args.journal
        if journal and len(names) > 1:
            journal = f"{journal}.{name}"
        suite = run_suite(
            standard_controllers(
                soda_config=SodaConfig(solver_backend=args.solver_backend)
            ),
            traces,
            profile,
            name,
            jobs=args.jobs,
            journal=journal,
            resume=args.resume,
            session_timeout=args.session_timeout,
            log_decisions=args.log_decisions,
        )
        print(f"\n=== {name} ({args.sessions} × {args.duration:.0f}s) ===")
        summaries = suite.summaries()
        if summaries:
            print(qoe_table(summaries))
        else:
            print("(every session failed — see the failure summary)")
        _print_failures(suite)
        failed += suite.failure_count
        flagged += suite.flagged_count
    if args.strict_audit and flagged:
        raise ValueError(
            f"--strict-audit: {flagged} session(s) flagged by the "
            f"invariant auditor"
        )
    return 1 if failed else 0


def _cmd_session(args: argparse.Namespace) -> int:
    if args.trace_csv:
        trace = load_bandwidth_csv(args.trace_csv)
    else:
        trace = _SCENARIOS[args.scenario](args.duration)
    profile = live_profile(session_seconds=min(args.duration, trace.duration))
    controller = _CONTROLLERS[args.controller]()
    recorder = TimelineRecorder(controller)
    result = run_session(recorder, trace, profile.ladder, profile.player)
    metrics = qoe_from_session(result)
    print(f"controller={controller.name} trace={trace.name or 'csv'}")
    print(f"qoe={metrics.qoe:.3f} utility={metrics.utility:.3f} "
          f"rebuf={metrics.rebuffer_ratio:.4f} "
          f"switch={metrics.switching_rate:.3f} "
          f"abandonments={result.abandonments}")
    if args.timeline:
        print(recorder.timeline(result).render(limit=80))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.summarize:
        trace = load_bandwidth_csv(args.summarize)
        stats = trace.stats()
        print(f"{args.summarize}: duration={stats.duration:.0f}s "
              f"mean={stats.mean:.2f} Mb/s rsd={stats.rsd:.1%} "
              f"min={stats.minimum:.2f} max={stats.maximum:.2f}")
        return 0
    trace = DATASET_FACTORIES[args.dataset]().generate(
        args.duration, seed=args.seed
    )
    stats = trace.stats()
    print(f"generated {args.dataset} trace: mean={stats.mean:.2f} Mb/s "
          f"rsd={stats.rsd:.1%}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write("time,bandwidth\n")
            t = 0.0
            for duration, bandwidth in zip(trace.durations, trace.bandwidths):
                f.write(f"{t:.3f},{bandwidth:.6f}\n")
                t += duration
            f.write(f"{t:.3f},{trace.bandwidths[-1]:.6f}\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    try:
        intensities = [float(x) for x in args.intensities.split(",") if x]
    except ValueError:
        raise ValueError(
            f"--intensities must be comma-separated numbers, "
            f"got {args.intensities!r}"
        )
    if not intensities:
        raise ValueError("--intensities must name at least one level")
    if args.resume and not args.journal:
        raise ValueError("--resume requires --journal")
    traces = DATASET_FACTORIES[args.dataset]().dataset(
        args.sessions, args.duration, seed=args.seed
    )
    profile = live_profile(
        session_seconds=args.duration, cellular=args.dataset in ("5g", "4g")
    )
    report = sweep_fault_intensity(
        traces,
        profile,
        intensities=sorted(intensities),
        seed=args.seed,
        resilient=args.resilient,
        dataset_name=args.dataset,
        jobs=args.jobs,
        journal=args.journal,
        resume=args.resume,
        session_timeout=args.session_timeout,
    )
    mode = " (resilient wrappers)" if args.resilient else ""
    print(f"=== robustness: {args.dataset} "
          f"({args.sessions} × {args.duration:.0f}s){mode} ===")
    print(report.render())
    _print_failures(report)
    if args.strict_audit and report.flagged_count:
        raise ValueError(
            f"--strict-audit: {report.flagged_count} session(s) flagged "
            f"by the invariant auditor"
        )
    return 1 if report.failure_count else 0


def _cmd_decide(args: argparse.Namespace) -> int:
    profile = live_profile()
    controller = SodaController(
        config=SodaConfig(solver_backend=args.solver_backend)
    )
    decision = controller.decide(
        args.throughput, args.buffer, args.prev, profile.ladder,
        args.max_buffer,
    )
    if decision is None:
        print("decision: defer (no download — overflow region)")
    else:
        print(f"decision: rung {decision} "
              f"({profile.ladder.bitrate(decision):.2f} Mb/s)")
    plan = controller.last_plan
    if plan is not None and plan.feasible:
        print(f"planned sequence: {list(plan.sequence)} "
              f"(objective {plan.objective:.4f}, "
              f"{plan.evaluations} candidates scored)")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    traces = DATASET_FACTORIES[args.dataset]().dataset(
        args.sessions, args.duration, seed=args.seed
    )
    profile = live_profile(
        session_seconds=args.duration, cellular=args.dataset in ("5g", "4g")
    )
    result = tune_soda(traces, profile)
    print(result.render(n=8))
    best = result.best.config
    print(f"\nbest: beta={best.beta} gamma={best.gamma} "
          f"kappa={best.switch_event_cost} target={best.target_buffer}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Shared implementation of ``serve`` (clean) and ``soak`` (chaos)."""
    from .service import SoakConfig, run_soak

    if not 0 <= getattr(args, "intensity", 0.0) <= 1.0:
        raise ValueError("--intensity must be in [0, 1]")
    if args.shards < 0:
        raise ValueError("--shards must be non-negative")
    if getattr(args, "rollout", False) and args.shards < 2:
        raise ValueError("--rollout needs --shards >= 2 (canary + baseline)")
    if args.tier0_chunk < 1:
        raise ValueError("--tier0-chunk must be at least 1")
    if args.batch_window < 0:
        raise ValueError("--batch-window must be non-negative")
    if args.batch_window > 0 and (args.chaos or args.shards > 0):
        raise ValueError(
            "--batch-window needs the clean single-process serve mode "
            "(no chaos, --shards 0)"
        )
    cfg = SoakConfig(
        sessions=args.sessions,
        segments_per_session=args.segments,
        threads=args.threads,
        seed=args.seed,
        chaos=args.chaos,
        deadline=args.deadline,
        max_in_flight=args.max_in_flight,
        max_sessions=args.max_sessions,
        table_points=args.table_points,
        fault_intensity=getattr(args, "intensity", 0.0),
        crash_rate=getattr(args, "crash_rate", 0.0),
        slow_rate=getattr(args, "slow_rate", 0.0),
        burst_at=getattr(args, "burst_at", 200),
        shards=args.shards,
        kill_at=getattr(args, "kill_at", None),
        rollout=getattr(args, "rollout", False),
        rollout_at=getattr(args, "rollout_at", None),
        tier0_chunk=args.tier0_chunk,
        batch_window=args.batch_window,
    )
    report = run_soak(cfg, progress=lambda line: print(f"  {line}"))
    mode = "soak" if args.chaos else "serve"
    print(f"\n=== {mode}: {report.decisions} decisions in "
          f"{report.elapsed:.2f}s "
          f"({report.decisions_per_second():.0f}/s) ===")
    if report.fleet is not None:
        fleet = report.fleet
        print(f"fleet: shards={fleet.shards} "
              f"deaths={fleet.worker_deaths} "
              f"restarts={fleet.worker_restarts} "
              f"rehomed={fleet.sessions_rehomed} "
              f"failovers={fleet.failovers}")
        print(f"fleet: table_versions={fleet.table_versions} "
              f"per-shard restarts="
              f"{[s.get('restarts', 0) for s in fleet.per_shard]} "
              f"retries granted={fleet.retries_granted} "
              f"denied={fleet.retries_denied}")
        if report.rollout_report is not None:
            roll = report.rollout_report
            outcome = "committed" if roll.committed else (
                "rolled back" if roll.rolled_back else "aborted"
            )
            print(f"rollout: v{roll.previous_version} -> "
                  f"v{roll.target_version} {outcome} ({roll.reason})")
        rollup = fleet.rollup
        print(f"rollup: tiers solver={rollup.get('tier0_decisions', 0):.0f} "
              f"table={rollup.get('tier1_decisions', 0):.0f} "
              f"rule={rollup.get('tier2_decisions', 0):.0f} "
              f"(evictions={rollup.get('evictions', 0):.0f}, "
              f"sheds={rollup.get('sheds', 0):.0f})")
        if rollup.get("batching_batches"):
            print(f"batching: batches="
                  f"{rollup['batching_batches']:.0f} "
                  f"occupancy="
                  f"{rollup.get('batching_mean_occupancy', 0.0):.1f} "
                  f"amortized="
                  f"{rollup.get('batching_amortized_ms', 0.0):.3f}ms")
        lat = fleet.latency
        latency_max = fleet.latency_max
        health_json = fleet.to_json()
    else:
        snapshot = report.snapshot
        stats = snapshot.stats
        print(f"tiers: solver={stats.tier0_decisions} "
              f"table={stats.tier1_decisions} rule={stats.tier2_decisions} "
              f"(shed={stats.shed}, {stats.shed_rate():.1%})")
        print(f"armor: solver_errors={stats.solver_errors} "
              f"overruns={stats.deadline_overruns} "
              f"sanitized={stats.sanitized_observations} "
              f"deferrals={stats.deferrals_resolved}")
        print(f"sessions: created={stats.sessions_created} "
              f"evicted={stats.sessions_evicted} "
              f"high-water={stats.max_sessions_seen}")
        print(f"breaker: state={snapshot.breaker_state} "
              f"opened={snapshot.breaker_times_opened} "
              f"full_cycles={snapshot.breaker_full_cycles}")
        batching = snapshot.batching
        if batching.get("batches"):
            print(f"batching: batches={batching['batches']:.0f} "
                  f"decisions={batching['batched_decisions']:.0f} "
                  f"occupancy={batching['mean_occupancy']:.1f} "
                  f"max={batching['max_batch']:.0f} "
                  f"amortized={batching['amortized_ms']:.3f}ms")
        lat = snapshot.latency
        latency_max = snapshot.latency_max
        health_json = snapshot.to_json()
    print(f"latency: p50={lat['p50'] * 1e3:.2f}ms "
          f"p95={lat['p95'] * 1e3:.2f}ms p99={lat['p99'] * 1e3:.2f}ms "
          f"max={latency_max * 1e3:.1f}ms "
          f"(deadline {args.deadline * 1e3:.0f}ms)")
    if args.health_json:
        with open(args.health_json, "w", encoding="utf-8") as f:
            f.write(health_json)
            f.write("\n")
        print(f"wrote {args.health_json}")
    rollout_report_path = getattr(args, "rollout_report", None)
    if rollout_report_path:
        if report.rollout_report is None:
            print(f"repro: warning: no rollout ran; skipping "
                  f"{rollout_report_path}", file=sys.stderr)
        else:
            with open(rollout_report_path, "w", encoding="utf-8") as f:
                f.write(report.rollout_report.to_json())
                f.write("\n")
            print(f"wrote {rollout_report_path}")
    if args.out:
        _append_perf_entry(args.out, {
            "mode": mode,
            "shards": args.shards,
            "decisions": report.decisions,
            "elapsed": report.elapsed,
            "decisions_per_second": report.decisions_per_second(),
            "latency": dict(lat),
            "latency_max": latency_max,
            "deadline": args.deadline,
            "violations": len(report.violations),
            "batching": (
                {k: v for k, v in report.fleet.rollup.items()
                 if k.startswith("batching_")}
                if report.fleet is not None
                else dict(report.snapshot.batching)
            ),
        })
        print(f"appended perf entry to {args.out}")
    if report.violations:
        print(f"\n{len(report.violations)} invariant violation(s):",
              file=sys.stderr)
        for line in report.violations[:20]:
            print(f"repro: violation: {line}", file=sys.stderr)
        return 1
    print("\nall serving invariants held")
    return 0


def _append_perf_entry(path: str, entry: dict) -> None:
    """Append one run entry to a ``{"runs": [...]}`` perf-trajectory file.

    The journal is long-lived and hand-edited in practice, so a
    malformed prior file (or malformed entries inside it) must not cost
    the run that just finished: bad content is skipped with a stderr
    warning and the fresh entry is still appended.
    """
    import json
    import time as _time

    entry = dict(entry)
    entry["timestamp"] = _time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", _time.gmtime()
    )
    runs = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            existing = json.load(f)
    except FileNotFoundError:
        existing = {"runs": []}
    except (OSError, ValueError) as exc:
        print(f"repro: warning: --out file {path} is not a perf journal "
              f"({exc}); starting a fresh one", file=sys.stderr)
        existing = {"runs": []}
    prior = existing.get("runs", []) if isinstance(existing, dict) else None
    if prior is None:
        print(f"repro: warning: --out file {path} has no 'runs' list; "
              f"starting a fresh one", file=sys.stderr)
        prior = []
    elif not isinstance(prior, list):
        print(f"repro: warning: --out file {path} 'runs' is not a list; "
              f"starting a fresh one", file=sys.stderr)
        prior = []
    for i, run in enumerate(prior):
        if isinstance(run, dict):
            runs.append(run)
        else:
            print(f"repro: warning: skipping malformed entry {i} in "
                  f"{path} ({type(run).__name__})", file=sys.stderr)
    runs.append(entry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"runs": runs}, f, indent=2, sort_keys=True)
        f.write("\n")


def _cmd_population(args: argparse.Namespace) -> int:
    import os

    from .sim.population import (
        PopulationConfig,
        PopulationSim,
        ServiceBackend,
        SolverBackend,
    )

    if args.serve and (args.checkpoint or args.resume):
        raise ValueError(
            "--serve answers are not bit-deterministic (timeouts, "
            "failovers); checkpoints/--resume require the table or "
            "solver backend"
        )
    if args.resume and not args.checkpoint:
        raise ValueError("--resume requires --checkpoint")

    config = PopulationConfig(
        sessions=args.sessions,
        duration_hours=args.duration_hours,
        tick_seconds=args.tick,
        seed=args.seed,
        capacity=args.capacity,
        regions=args.regions,
        cdns=args.cdns,
        flash_crowds=args.flash_crowds,
        content_minutes=args.content_minutes,
        max_buffer=args.max_buffer,
        storm_intensity=args.storm_intensity,
        table_points=args.table_points,
    )

    ladder = live_profile().ladder
    backend = None
    service = None
    kill_state = {"done": False}
    if args.serve:
        from .service import ShardedDecisionService

        service = ShardedDecisionService(
            ladder,
            config.max_buffer,
            shards=max(args.shards, 1),
            deadline=args.deadline,
            table_points=args.table_points,
            max_sessions=1 << 20,
        )
        backend = ServiceBackend(service, ladder, config.max_buffer)
    elif args.backend == "solver":
        backend = SolverBackend(ladder, config.max_buffer)

    def on_tick(tick: int) -> None:
        if (
            args.serve
            and args.kill_at is not None
            and tick >= args.kill_at
            and not kill_state["done"]
        ):
            import signal as _signal

            live = service.live_shards()
            if live:
                pid = service.worker_pids()[live[0]]
                os.kill(pid, _signal.SIGKILL)
                kill_state["done"] = True
                if not args.quiet:
                    print(f"chaos: SIGKILLed shard {live[0]} worker "
                          f"(pid {pid}) at tick {tick}")

    resumed = bool(
        args.resume and args.checkpoint and os.path.exists(args.checkpoint)
    )
    cadence = args.checkpoint_every if args.checkpoint else 0
    if resumed:
        sim = PopulationSim.resume(
            args.checkpoint, config, ladder=ladder, backend=backend,
            checkpoint_every=cadence,
        )
        if not args.quiet:
            print(f"resumed from {args.checkpoint} at tick {sim.tick}")
    else:
        sim = PopulationSim(
            config, ladder=ladder, backend=backend,
            checkpoint_path=args.checkpoint, checkpoint_every=cadence,
        )

    progress = None if args.quiet else (lambda line: print(line))
    try:
        report = sim.run(progress=progress, on_tick=on_tick)
    finally:
        if backend is not None and hasattr(backend, "close"):
            backend.close()

    fleet = report.fleet["fleet"]
    print(f"\npopulation: {fleet['arrivals']} arrivals over "
          f"{report.ticks} ticks ({config.duration_hours:g}h sim) "
          f"in {report.elapsed:.1f}s wall "
          f"[{report.backend} backend, {report.decisions} decisions]")
    print(f"  finished {fleet['finished']} "
          f"(completed {fleet['completed']}, abandoned {fleet['abandoned']}) "
          f"shed {fleet['shed']} censored {fleet['censored']}")
    print(f"  rebuffer-SLO (<= {config.rebuffer_slo:g}) attainment: "
          f"{fleet['slo_attainment']:.4f}")
    for name, cohort in report.fleet["cohorts"].items():
        print(f"  {name}: {cohort['arrivals']} arrivals, "
              f"slo {cohort['slo_attainment']:.4f}, "
              f"abandon {cohort['abandon_rate']:.4f}, "
              f"shed {cohort['shed_rate']:.4f}, "
              f"mean bitrate {cohort['mean_bitrate']:.2f} Mb/s")
    if report.service is not None:
        health = report.service.get("fleet_health") or {}
        print(f"  service: failovers={report.service['failovers']} "
              f"worker_deaths={health.get('worker_deaths', 0)} "
              f"restarts={health.get('worker_restarts', 0)} "
              f"rehomed={health.get('sessions_rehomed', 0)}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report.to_json())
            f.write("\n")
        print(f"wrote {args.report}")
    if args.out:
        _append_perf_entry(args.out, {
            "mode": "population",
            "backend": report.backend,
            "sessions": args.sessions,
            "finished": fleet["finished"],
            "ticks": report.ticks,
            "decisions": report.decisions,
            "elapsed": report.elapsed,
            "sessions_per_second": report.sessions_per_second(),
            "slo_attainment": fleet["slo_attainment"],
            "storm_intensity": args.storm_intensity,
            "resumed_from_tick": report.resumed_from_tick,
        })
        print(f"appended perf entry to {args.out}")
    return 0


def _cmd_table_build(args: argparse.Namespace) -> int:
    from .core.lookup import DecisionTable
    from .sim.profiles import live_profile as _profile

    if args.table_points < 2:
        raise ValueError("--table-points must be at least 2")
    ladder = _profile().ladder
    table = DecisionTable(
        ladder,
        args.max_buffer,
        config=SodaConfig(solver_backend=args.solver_backend),
        throughput_points=args.table_points,
        buffer_points=args.table_points,
    )
    table.save_mmap(args.out, version=args.table_version)
    shape = table.shape
    print(f"wrote {args.out}: v{table.version}, {shape[0]}x{shape[1]} grid, "
          f"{shape[2]} prev slots, built in {table.stats.build_seconds:.2f}s")
    return 0


def _cmd_table_inspect(args: argparse.Namespace) -> int:
    from .core.lookup import DecisionTable

    table = DecisionTable.load_mmap(args.path)
    header, _, _ = DecisionTable._read_header(args.path)
    shape = table.shape
    print(f"{args.path}: valid decision table")
    print(f"  table version: {table.version}, "
          f"crc32: {header.get('crc32', 0):#010x} (verified)")
    print(f"  grid: {shape[0]} throughput x {shape[1]} buffer points, "
          f"{shape[2]} prev slots, {table.ladder.levels} rungs")
    print(f"  throughput range: {table.tput_grid[0]:.2f}"
          f"-{table.tput_grid[-1]:.2f} Mb/s; "
          f"buffer 0-{table.buffer_grid[-1]:.1f}s")
    print(f"  originally built in {table.stats.build_seconds:.2f}s")
    return 0


# ----------------------------------------------------------------------
def _cmd_learn_extract(args: argparse.Namespace) -> int:
    from .learn import extract_demonstrations

    report = extract_demonstrations(
        args.journal, args.out, controller=args.controller
    )
    skipped = f" ({report.skipped} session(s) skipped)" if report.skipped else ""
    print(f"extracted {report.decisions} decisions from {report.sessions} "
          f"'{report.controller}' session(s) -> {report.path}{skipped}")
    return 0


def _cmd_learn_bc(args: argparse.Namespace) -> int:
    import json

    from .learn import fit_bc, load_demonstrations

    dataset = load_demonstrations(
        args.demos,
        buffer_buckets=args.buffer_buckets,
        throughput_buckets=args.throughput_buckets,
    )
    policy, coverage = fit_bc(dataset, smoothing=args.smoothing)
    policy.save(args.out)
    print(f"cloned '{dataset.controller}' from {dataset.decisions} decisions "
          f"into {args.out} ({len(policy.values)} states)")
    print(coverage.render())
    if args.coverage_json:
        with open(args.coverage_json, "w", encoding="utf-8") as f:
            json.dump(coverage.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.coverage_json}")
    return 0


def _cmd_learn_finetune(args: argparse.Namespace) -> int:
    from .learn import PolicyTable, finetune, policy_from_q

    policy = PolicyTable.load(args.policy)
    traces = DATASET_FACTORIES[args.dataset]().dataset(
        args.sessions, args.duration, seed=args.seed
    )
    profile = live_profile(
        session_seconds=args.duration, cellular=args.dataset in ("5g", "4g")
    )
    agent = finetune(
        policy,
        traces,
        player_config=profile.player,
        episodes=args.episodes,
        epsilon_start=args.epsilon_start,
        epsilon_end=args.epsilon_end,
        anchor_epsilon=args.anchor_epsilon,
        seed=args.seed,
    )
    tuned = policy_from_q(agent, policy.ladder, policy.max_buffer, name="ft")
    tuned.save(args.out)
    print(f"fine-tuned '{policy.name}' over {args.episodes} episodes on "
          f"{len(traces)} {args.dataset} trace(s) "
          f"(anchor ε={args.anchor_epsilon:g}): "
          f"{len(tuned.values)} states -> {args.out}")
    return 0


def _cmd_learn_distill(args: argparse.Namespace) -> int:
    import numpy as np

    from .learn import PolicyTable, distill_policy

    if args.table_points < 2:
        raise ValueError("--table-points must be at least 2")
    policy = PolicyTable.load(args.policy)
    table = distill_policy(
        policy,
        throughput_points=args.table_points,
        buffer_points=args.table_points,
        version=args.table_version,
    )
    table.save_mmap(args.out)
    shape = table.shape
    defer_fraction = float(np.mean(table._table < 0))
    print(f"distilled '{policy.name}' -> {args.out}: v{table.version}, "
          f"{shape[0]}x{shape[1]} grid, {shape[2]} prev slots, "
          f"defer fraction {defer_fraction:.1%}, "
          f"built in {table.stats.build_seconds:.2f}s")
    return 0


def _cmd_learn_eval(args: argparse.Namespace) -> int:
    from .core.lookup import DecisionTable
    from .learn import (
        PolicyController,
        PolicyTable,
        TableController,
        evaluate_stability,
    )

    try:
        intensities = sorted(float(x) for x in args.intensities.split(",") if x)
    except ValueError:
        raise ValueError(
            f"--intensities must be comma-separated numbers, "
            f"got {args.intensities!r}"
        )
    if not intensities:
        raise ValueError("--intensities must name at least one level")
    if args.serve_check and not args.distilled:
        raise ValueError("--serve-check requires --distilled")

    traces = DATASET_FACTORIES[args.dataset]().dataset(
        args.sessions, args.duration, seed=args.seed
    )
    profile = live_profile(
        session_seconds=args.duration, cellular=args.dataset in ("5g", "4g")
    )

    policies = {}
    cloned = PolicyTable.load(args.policy)
    policies[cloned.name or "bc"] = lambda p=cloned: PolicyController(p)
    if args.finetuned:
        tuned = PolicyTable.load(args.finetuned)
        name = tuned.name if tuned.name not in policies else "ft"
        policies[name] = lambda p=tuned: PolicyController(p)
    distilled = None
    if args.distilled:
        distilled = DecisionTable.load_mmap(args.distilled)
        policies["distilled"] = (
            lambda t=distilled: TableController(t, name="distilled")
        )
        solver_table = DecisionTable(
            profile.ladder,
            distilled.max_buffer,
            throughput_points=distilled.shape[0],
            buffer_points=distilled.shape[1],
        )
        policies["solver-table"] = (
            lambda t=solver_table: TableController(t, name="solver-table")
        )

    report, summary = evaluate_stability(
        policies,
        traces,
        profile,
        intensities=intensities,
        seed=args.seed,
        dataset_name=args.dataset,
        jobs=args.jobs,
    )
    print(f"=== learn eval: {args.dataset} "
          f"({args.sessions} × {args.duration:.0f}s) ===")
    print(report.render())
    for name, row in summary.items():
        delta = "" if name == "soda" else (
            f"  [vs soda: qoe {row['qoe_delta']:+.3f} "
            f"switch {row['switch_delta']:+.3f} "
            f"rebuf {row['rebuffer_delta']:+.4f}]"
        )
        print(f"{name}: qoe={row['qoe_faulted']:.3f} "
              f"switch={row['switching_rate']:.3f} "
              f"rebuf={row['rebuffer_ratio']:.4f}{delta}")
    _print_failures(report)

    committed = None
    if args.serve_check:
        from .service import ShardedDecisionService

        service = ShardedDecisionService(
            profile.ladder,
            distilled.max_buffer,
            shards=2,
            deadline=0.25,
            table_points=10,
        )
        try:
            roll = service.rollout(distilled, probation=0.2)
        finally:
            service.close()
        committed = roll.committed
        outcome = "committed" if roll.committed else (
            f"rolled back ({roll.reason})" if roll.rolled_back
            else f"aborted ({roll.reason})"
        )
        print(f"serve-check: rollout v{roll.previous_version} -> "
              f"v{roll.target_version} {outcome} on 2 shards")

    if args.out:
        _append_perf_entry(args.out, {
            "mode": "learn-eval",
            "dataset": args.dataset,
            "sessions": args.sessions,
            "intensities": intensities,
            "summary": summary,
            "serve_check_committed": committed,
        })
        print(f"appended perf entry to {args.out}")
    if report.failure_count:
        return 1
    if committed is False:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError, JournalError) as exc:
        # Operational errors (missing trace file, malformed CSV, bad
        # argument values, unusable/mismatched journals) get a one-line
        # message, not a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
