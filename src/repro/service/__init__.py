"""The long-lived multi-session ABR decision service.

``repro.service`` turns the package's controllers into an operable
serving layer: :class:`DecisionService` answers
``decide(session_id, observation)`` for many concurrent sessions under a
hard per-decision deadline, degrading gracefully (full solve → table
lookup → buffer rule) instead of ever erroring, with a circuit breaker
around the solver, admission control with load shedding, LRU-bounded
session state, and a pollable health surface.  :class:`ShardedDecisionService`
scales that out: N supervised worker processes (heartbeats, bounded-backoff
restarts) behind a session-hashing front end sharing one memory-mapped
decision table, with session re-homing off dead shards, a columnar
``decide_many`` batch path, and fleet-level health rollups.  The chaos-soak
harness (:func:`run_soak`, ``repro soak``, ``--shards N`` for the fleet
variant with a mid-run worker SIGKILL) proves those properties under
injected faults.
"""

from .admission import (
    AdaptiveGate,
    AdmissionGate,
    RetryBudget,
    SessionEntry,
    SessionTable,
)
from .batcher import MicroBatcher, PendingDecision
from .breaker import BreakerOpenError, BreakerState, CircuitBreaker
from .degrade import (
    TIER_RULE,
    TIER_SOLVER,
    TIER_TABLE,
    DegradationLadder,
    ServiceStats,
    StatsCounters,
    TierDecision,
)
from .health import BatchCounters, HealthSnapshot, LatencyRing, build_snapshot
from .service import Decision, DecisionService, SessionState
from .shard import (
    FleetHealth,
    RolloutReport,
    ShardDecision,
    ShardedDecisionService,
)
from .soak import ChaosSolver, SoakConfig, SoakReport, run_soak
from .supervisor import RestartPolicy, Supervisor

__all__ = [
    "AdaptiveGate",
    "AdmissionGate",
    "RetryBudget",
    "SessionEntry",
    "SessionTable",
    "MicroBatcher",
    "PendingDecision",
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "BatchCounters",
    "TIER_SOLVER",
    "TIER_TABLE",
    "TIER_RULE",
    "DegradationLadder",
    "ServiceStats",
    "StatsCounters",
    "TierDecision",
    "HealthSnapshot",
    "LatencyRing",
    "build_snapshot",
    "Decision",
    "DecisionService",
    "SessionState",
    "FleetHealth",
    "RolloutReport",
    "ShardDecision",
    "ShardedDecisionService",
    "RestartPolicy",
    "Supervisor",
    "ChaosSolver",
    "SoakConfig",
    "SoakReport",
    "run_soak",
]
