"""The long-lived multi-session ABR decision service.

``repro.service`` turns the package's controllers into an operable
serving layer: :class:`DecisionService` answers
``decide(session_id, observation)`` for many concurrent sessions under a
hard per-decision deadline, degrading gracefully (full solve → table
lookup → buffer rule) instead of ever erroring, with a circuit breaker
around the solver, admission control with load shedding, LRU-bounded
session state, and a pollable health surface.  The chaos-soak harness
(:func:`run_soak`, ``repro soak``) proves those properties under injected
faults.
"""

from .admission import AdmissionGate, SessionEntry, SessionTable
from .breaker import BreakerOpenError, BreakerState, CircuitBreaker
from .degrade import (
    TIER_RULE,
    TIER_SOLVER,
    TIER_TABLE,
    DegradationLadder,
    ServiceStats,
    StatsCounters,
    TierDecision,
)
from .health import HealthSnapshot, LatencyRing, build_snapshot
from .service import Decision, DecisionService, SessionState
from .soak import ChaosSolver, SoakConfig, SoakReport, run_soak

__all__ = [
    "AdmissionGate",
    "SessionEntry",
    "SessionTable",
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "TIER_SOLVER",
    "TIER_TABLE",
    "TIER_RULE",
    "DegradationLadder",
    "ServiceStats",
    "StatsCounters",
    "TierDecision",
    "HealthSnapshot",
    "LatencyRing",
    "build_snapshot",
    "Decision",
    "DecisionService",
    "SessionState",
    "ChaosSolver",
    "SoakConfig",
    "SoakReport",
    "run_soak",
]
