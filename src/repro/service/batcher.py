"""Micro-batching front end for the decision service.

Cross-session batching (:func:`repro.core.fastpath.solve_sessions_batch`)
only pays off when requests actually arrive together.  A real ingest
stream delivers them one at a time, so :class:`MicroBatcher` holds each
arrival for at most a few milliseconds, hoping more arrive, then solves
the collected batch through :meth:`DecisionService.decide_many` — which
runs the whole tier-0 prefix through the batched kernel — and fans the
answers back out to the per-request handles.

The timing contract, driven entirely by an injectable monotonic clock so
tests can pin every edge:

* **window expiry** — a batch is never held longer than ``window``
  seconds after its first request arrived;
* **deadline pressure** — a batch is flushed the moment *any* collected
  request's remaining budget shrinks to its tier-0 reserve, so waiting
  for batch-mates can never push a request below the budget the full
  solver needs (``reserve`` defaults to the service ladder's
  ``tier0_budget``);
* **size cap** — a batch reaching ``max_batch`` requests flushes
  immediately (bigger batches stop amortizing and start adding latency);
* **drain on close** — :meth:`close` flushes whatever is pending; no
  request is ever dropped.

Every flush is counted by trigger on the service's
:class:`~repro.service.health.BatchCounters`, so occupancy and flush
causes show up in the health snapshot.

The batcher is synchronous by design: callers :meth:`offer` requests and
:meth:`poll` the clock edge (an ingest loop naturally does both per
arrival), or use :meth:`submit` to force an answer for the final request
of a quiet stream.  There is no background thread to supervise — the
sharded service already owns process lifecycle, and a thread would make
the fake-clock timing tests racy.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from ..abr.base import PlayerObservation
from .service import Decision, DecisionService

__all__ = ["MicroBatcher", "PendingDecision"]


class PendingDecision:
    """A handle for one offered request; resolved when its batch flushes.

    Attributes:
        session_id: the session the request belongs to.
        deadline_at: absolute clock() value the answer is due by.
        decision: the service's answer, ``None`` until the flush.
    """

    __slots__ = ("session_id", "obs", "deadline_at", "decision")

    def __init__(
        self,
        session_id: str,
        obs: PlayerObservation,
        deadline_at: float,
    ) -> None:
        self.session_id = session_id
        self.obs = obs
        self.deadline_at = deadline_at
        self.decision: Optional[Decision] = None

    @property
    def done(self) -> bool:
        return self.decision is not None


class MicroBatcher:
    """Collect decision requests for a few ms, solve them as one batch.

    Args:
        service: the decision service answering flushed batches.
        window: maximum seconds a batch is held after its first request.
        max_batch: requests per batch before an immediate size flush.
        reserve: minimum remaining per-request budget below which the
            batch flushes instead of waiting (defaults to the service's
            tier-0 budget, so batching never costs a request its full
            solve).
        clock: injectable monotonic time source (defaults to the
            service's clock, so fake-clock tests drive both in lockstep).

    Raises:
        ValueError: on a non-positive window or batch size, or a
            negative reserve.
    """

    def __init__(
        self,
        service: DecisionService,
        window: float = 0.002,
        max_batch: int = 32,
        reserve: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.service = service
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.reserve = (
            service.degradation.tier0_budget if reserve is None else reserve
        )
        if self.reserve < 0:
            raise ValueError("reserve must be non-negative")
        self.clock = clock or service.clock
        self._lock = threading.Lock()
        self._queue: List[PendingDecision] = []
        self._opened_at: Optional[float] = None
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def offer(
        self,
        session_id: str,
        obs: PlayerObservation,
        deadline_at: Optional[float] = None,
    ) -> PendingDecision:
        """Enqueue one request; returns its handle without blocking.

        The request's deadline clock starts now (unless an absolute
        ``deadline_at`` is supplied), so time spent waiting for
        batch-mates counts against its budget.  Reaching ``max_batch``
        flushes synchronously before returning, so the handle may already
        be resolved.

        Raises:
            RuntimeError: after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("offer after close")
            now = self.clock()
            if deadline_at is None:
                deadline_at = now + self.service.deadline
            pending = PendingDecision(session_id, obs, deadline_at)
            self._queue.append(pending)
            if self._opened_at is None:
                self._opened_at = now
            flush_now = len(self._queue) >= self.max_batch
        if flush_now:
            self.flush("size")
        return pending

    def due(self, now: Optional[float] = None) -> Optional[str]:
        """Why the pending batch should flush now, or ``None`` to wait.

        Checked in priority order: ``"size"`` (cap reached),
        ``"deadline"`` (some request's remaining budget is down to the
        reserve), ``"window"`` (the batch has been open a full window).
        """
        with self._lock:
            if not self._queue:
                return None
            if len(self._queue) >= self.max_batch:
                return "size"
            if now is None:
                now = self.clock()
            earliest = min(p.deadline_at for p in self._queue)
            if earliest - now <= self.reserve:
                return "deadline"
            if self._opened_at is not None and (
                now - self._opened_at >= self.window
            ):
                return "window"
            return None

    def poll(self, now: Optional[float] = None) -> List[Decision]:
        """Flush if a trigger has fired; returns the flushed decisions."""
        reason = self.due(now)
        if reason is None:
            return []
        return self.flush(reason)

    def flush(self, reason: str = "manual") -> List[Decision]:
        """Solve the pending batch now and fan the answers out."""
        with self._lock:
            batch = self._queue
            self._queue = []
            self._opened_at = None
        if not batch:
            return []
        self.service.batches.record_flush(reason)
        # The batch shares the *earliest* collected deadline, so no
        # request is served on a looser budget than it was promised.
        deadline_at = min(p.deadline_at for p in batch)
        decisions = self.service.decide_many(
            [(p.session_id, p.obs) for p in batch],
            deadline_at=deadline_at,
        )
        for pending, decision in zip(batch, decisions):
            pending.decision = decision
        return decisions

    def submit(
        self,
        session_id: str,
        obs: PlayerObservation,
        deadline_at: Optional[float] = None,
    ) -> Decision:
        """Offer one request and force an answer before returning.

        For the tail of a stream (no batch-mates coming): the request
        still joins whatever is already pending, so the flush it forces
        amortizes over the queue.
        """
        pending = self.offer(session_id, obs, deadline_at)
        if pending.decision is None:
            self.flush("manual")
        assert pending.decision is not None
        return pending.decision

    def close(self) -> List[Decision]:
        """Drain the pending batch and refuse further offers."""
        with self._lock:
            if self._closed:
                return []
            self._closed = True
        return self.flush("drain")
